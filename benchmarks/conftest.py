"""Shared infrastructure for the table-regeneration benchmarks.

Environment knobs:

* ``REPRO_BENCH_SCALE``   — suite scale factor (default 0.01: adaptec1 ≈
  2.1k cells).  Raise toward 1.0 to approach contest sizes (slow!).
* ``REPRO_BENCH_DESIGNS`` — comma-separated subset of design names.
* ``REPRO_BENCH_DP_PASSES`` — detailed-placement passes (default 1).

Each table module accumulates its rows in a :class:`TableCollector`; the
assembled tables are printed at session end, mirroring the paper's
layout so they can be compared side by side with the published numbers.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))
DP_PASSES = int(os.environ.get("REPRO_BENCH_DP_PASSES", "1"))
_DESIGN_FILTER = {
    d.strip()
    for d in os.environ.get("REPRO_BENCH_DESIGNS", "").split(",")
    if d.strip()
}


def design_subset(names):
    """Apply the REPRO_BENCH_DESIGNS filter to a suite's design list."""
    if not _DESIGN_FILTER:
        return list(names)
    return [n for n in names if n in _DESIGN_FILTER]


class TableCollector:
    """Accumulates formatted rows and prints one table at session end."""

    _registry: List["TableCollector"] = []

    def __init__(self, title: str, header: str) -> None:
        self.title = title
        self.header = header
        self.rows: List[str] = []
        self.footer: List[str] = []
        TableCollector._registry.append(self)

    def add(self, row: str) -> None:
        self.rows.append(row)

    def add_footer(self, row: str) -> None:
        self.footer.append(row)

    def render(self) -> str:
        width = max(
            [len(self.header)]
            + [len(r) for r in self.rows + self.footer]
            + [len(self.title)]
        )
        lines = ["", "=" * width, self.title, "-" * width, self.header]
        lines += self.rows
        if self.footer:
            lines.append("-" * width)
            lines += self.footer
        lines.append("=" * width)
        return "\n".join(lines)

    @classmethod
    def flush_all(cls, printer) -> None:
        for collector in cls._registry:
            if collector.rows:
                printer(collector.render())
        cls._registry.clear()


def pytest_sessionfinish(session, exitstatus):
    import sys

    TableCollector.flush_all(lambda text: print(text, file=sys.stderr))


@pytest.fixture(scope="session")
def guidance_model():
    """The cached FNO guidance model (trains once per machine)."""
    from repro.nn import get_pretrained_model

    return get_pretrained_model(verbose=True)
