"""Design-choice ablations called out in DESIGN.md.

* legalizer: Abacus (cluster-optimal) vs Tetris (greedy) — displacement
  and post-LG HPWL;
* optimizer: ePlace Nesterov vs Adam — iterations to convergence and
  final quality;
* detailed placement operators: contribution of each DP pass operator.
"""

import numpy as np
import pytest

from conftest import SCALE, TableCollector
from repro.benchgen import make_design
from repro.core import PlacementParams, XPlacer
from repro.detail import DetailedPlacer
from repro.legalize import AbacusLegalizer, TetrisLegalizer, check_legal
from repro.wirelength import hpwl

_lg_table = TableCollector(
    "Ablation: legalizer choice (Abacus vs Tetris)",
    f"{'legalizer':<10} {'avg disp':>10} {'post-LG HPWL':>14} {'legal':>6}",
)
_opt_table = TableCollector(
    "Ablation: GP optimizer (Nesterov vs Adam)",
    f"{'optimizer':<10} {'HPWL':>12} {'overflow':>9} {'iters':>6} {'GP/s':>7}",
)
_dp_table = TableCollector(
    "Ablation: detailed-placement operator contributions",
    f"{'operators':<24} {'HPWL gain':>10} {'moves':>7}",
)


@pytest.fixture(scope="module")
def gp_solution():
    netlist = make_design("adaptec2", scale=SCALE)
    result = XPlacer(netlist, PlacementParams()).run()
    return netlist, result


def test_legalizer_ablation(benchmark, gp_solution):
    netlist, gp = gp_solution
    mov = netlist.movable_index
    rows = {}
    lx, ly = benchmark.pedantic(
        lambda: AbacusLegalizer(netlist).legalize(gp.x, gp.y),
        rounds=1,
        iterations=1,
    )
    rows["abacus"] = (lx, ly)
    rows["tetris"] = TetrisLegalizer(netlist).legalize(gp.x, gp.y)
    stats = {}
    for name, (x, y) in rows.items():
        report = check_legal(netlist, x, y)
        assert report.legal
        disp = float(
            np.mean(np.abs(x[mov] - gp.x[mov]) + np.abs(y[mov] - gp.y[mov]))
        )
        stats[name] = disp
        _lg_table.add(
            f"{name:<10} {disp:>10.2f} {hpwl(netlist, x, y):>14.4g} "
            f"{str(report.legal):>6}"
        )
    # Abacus's cluster optimality must show up as lower displacement.
    assert stats["abacus"] <= stats["tetris"] * 1.05


def test_optimizer_ablation(benchmark, gp_solution):
    netlist, nesterov = gp_solution
    benchmark.pedantic(
        lambda: XPlacer(
            netlist, PlacementParams(optimizer="adam", max_iterations=600)
        ).run(),
        rounds=1,
        iterations=1,
    )
    adam = XPlacer(
        netlist, PlacementParams(optimizer="adam", max_iterations=600)
    ).run()
    for name, res in (("nesterov", nesterov), ("adam", adam)):
        _opt_table.add(
            f"{name:<10} {res.hpwl:>12.4g} {res.overflow:>9.3f} "
            f"{res.iterations:>6} {res.gp_seconds:>7.2f}"
        )
    # Nesterov is the production choice: it must spread at least as well.
    assert nesterov.overflow <= adam.overflow + 0.05


def test_dp_operator_ablation(benchmark, gp_solution):
    netlist, gp = gp_solution
    lx, ly = AbacusLegalizer(netlist).legalize(gp.x, gp.y)
    base_hpwl = hpwl(netlist, lx, ly)

    def run_dp(**kw):
        return DetailedPlacer(netlist, max_passes=1, **kw).place(lx, ly)

    full = benchmark.pedantic(run_dp, rounds=1, iterations=1)
    reorder_only = run_dp(swap_candidates=0, ism_batch=2)
    for name, res in (
        ("reorder only", reorder_only),
        ("reorder+swap+ism (full)", full),
    ):
        gain = (base_hpwl - res.hpwl_after) / base_hpwl
        _dp_table.add(f"{name:<24} {gain:>10.3%} {res.moves_applied:>7}")
        assert res.hpwl_after <= base_hpwl + 1e-6
    assert full.hpwl_after <= reorder_only.hpwl_after + 1e-6
