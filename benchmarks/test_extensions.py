"""Benches for the future-work extensions (Section 5 of the paper):
fence-region constrained placement and routability-driven placement."""

import numpy as np
import pytest

from conftest import SCALE, TableCollector
from repro.benchgen import CircuitSpec, generate_circuit, make_design
from repro.core import PlacementParams
from repro.flow import run_flow
from repro.legalize import check_legal
from repro.route import GlobalRouter, RoutabilityDrivenPlacer

_fence_table = TableCollector(
    "Extension: fence-region constrained flow (future work of the paper)",
    f"{'design':<14} {'#fences':>8} {'fenced':>7} {'HPWL':>12} "
    f"{'HPWL free':>12} {'cost':>7} {'legal':>6}",
)
_rd_table = TableCollector(
    "Extension: routability-driven placement (future work of the paper)",
    f"{'design':<14} {'top5 rd':>8} {'top5 plain':>11} {'HPWL rd':>12} "
    f"{'HPWL plain':>12}",
)


@pytest.mark.parametrize("cells", [600, 1200])
def test_fence_flow(benchmark, cells):
    fenced = generate_circuit(
        CircuitSpec(
            f"fence{cells}",
            num_cells=cells,
            num_macros=2,
            num_fences=2,
            utilization=0.5,
        )
    )
    free = generate_circuit(
        CircuitSpec(
            f"fence{cells}",
            num_cells=cells,
            num_macros=2,
            num_fences=0,
            utilization=0.5,
        )
    )
    result = benchmark.pedantic(
        lambda: run_flow(fenced, placer="xplace", dp_passes=1),
        rounds=1,
        iterations=1,
    )
    unconstrained = run_flow(free, placer="xplace", dp_passes=1)
    report = check_legal(fenced, result.x, result.y)
    assert report.legal, report.summary()
    # Constraints cost wirelength, but only moderately.
    cost = result.final_hpwl / unconstrained.final_hpwl
    assert cost < 1.5
    members = int(np.sum(fenced.cell_fence >= 0))
    _fence_table.add(
        f"{fenced.name:<14} {len(fenced.fences):>8} {members:>7} "
        f"{result.final_hpwl:>12.4g} {unconstrained.final_hpwl:>12.4g} "
        f"{cost:>7.3f} {str(report.legal):>6}"
    )


@pytest.mark.parametrize("design", ["fft_2", "matrix_mult_b"])
def test_routability_driven(benchmark, design):
    netlist = make_design(design, scale=SCALE)
    params = PlacementParams()
    driven = benchmark.pedantic(
        lambda: RoutabilityDrivenPlacer(netlist, params, rounds=3).run(),
        rounds=1,
        iterations=1,
    )
    from repro.core import XPlacer

    plain = XPlacer(netlist, params).run()
    plain_routing = GlobalRouter(netlist, grid_m=32).route(plain.x, plain.y)
    assert driven.top5_overflow <= plain_routing.top5_overflow + 1e-9
    _rd_table.add(
        f"{design:<14} {driven.top5_overflow:>8.2f} "
        f"{plain_routing.top5_overflow:>11.2f} {driven.hpwl:>12.4g} "
        f"{plain.hpwl:>12.4g}"
    )
