"""Section 3.1.4 premise: r = λ‖∇D‖/‖∇WL‖ is ultra-small early.

The operator-skipping technique is justified by the observation that the
density gradient is negligible in the early placement stage.  This bench
runs a GP segment, records the r trace and verifies the premise; the
trace summary is printed as a table.
"""

import numpy as np
import pytest

from conftest import SCALE, TableCollector, design_subset
from repro.benchgen import ISPD2005_LIKE, make_design
from repro.core import PlacementParams, XPlacer

_table = TableCollector(
    "Gradient-ratio trace: r = lambda*|dD| / |dWL| (skipping premise, "
    "Section 3.1.4)",
    f"{'design':<10} {'r@iter5':>12} {'r@iter50':>12} {'r final':>12} "
    f"{'skips':>6} {'iters':>6}",
)

_DESIGNS = design_subset(ISPD2005_LIKE)[:4]


@pytest.mark.parametrize("design", _DESIGNS)
def test_ratio_trace(benchmark, design):
    netlist = make_design(design, scale=SCALE)
    result = benchmark.pedantic(
        lambda: XPlacer(netlist, PlacementParams()).run(), rounds=1, iterations=1
    )
    ratios = result.recorder.trace("grad_ratio")
    finite = ratios[np.isfinite(ratios)]
    # The premise: r < 0.01 through the early stage (λ0 is balanced so
    # r starts at 1e-3; the geometric λ ramp crosses 0.01 after ~8
    # iterations at this problem scale).
    early = np.nanmedian(ratios[:8])
    assert early < 0.01
    # And it grows by orders of magnitude by convergence.
    assert finite[-1] > 50 * max(early, 1e-12)
    skips = result.recorder.density_skip_count()
    assert skips > 0
    _table.add(
        f"{design:<10} {ratios[5]:>12.2e} "
        f"{ratios[min(50, len(ratios) - 1)]:>12.2e} {finite[-1]:>12.2e} "
        f"{skips:>6} {result.iterations:>6}"
    )
