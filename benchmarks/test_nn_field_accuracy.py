"""Section 4.3 support: guidance-model accuracy and inference cost.

Checks the trained FNO against the numerical solver on held-out random
maps, on a *real placement* density map (the paper's test protocol), and
at a resolution it was never trained on (the resolution-independence
claim).  The benchmarked quantity is one field inference.
"""

import numpy as np
import pytest

from conftest import SCALE, TableCollector
from repro.benchgen import make_design
from repro.core import PlacementParams, XPlacer
from repro.nn import predict_fields, random_density_dataset

_table = TableCollector(
    "FNO field accuracy (relative L2; 0 = exact, 1 = zero-field baseline)",
    f"{'test set':<28} {'rel. error':>10}",
)


def _relative_error(model, density, field_x):
    fx, __ = predict_fields(model, density)
    return float(np.linalg.norm(fx - field_x) / np.linalg.norm(field_x))


def test_heldout_accuracy(benchmark, guidance_model):
    test = random_density_dataset(8, m=32, rng=np.random.default_rng(321))
    benchmark.pedantic(
        lambda: predict_fields(guidance_model, test[0].density),
        rounds=3,
        iterations=1,
    )
    errors = [_relative_error(guidance_model, s.density, s.field_x) for s in test]
    error = float(np.mean(errors))
    assert error < 0.5
    _table.add(f"{'held-out 32x32 maps':<28} {error:>10.3f}")


def test_resolution_transfer(benchmark, guidance_model):
    """Trained at 32x32; must generalize to 64x64 (paper Section 3.3.1)."""
    test = random_density_dataset(4, m=64, rng=np.random.default_rng(654))
    benchmark.pedantic(
        lambda: predict_fields(guidance_model, test[0].density),
        rounds=1,
        iterations=1,
    )
    errors = [_relative_error(guidance_model, s.density, s.field_x) for s in test]
    error = float(np.mean(errors))
    assert error < 0.6
    _table.add(f"{'resolution transfer 64x64':<28} {error:>10.3f}")


def test_real_placement_map(benchmark, guidance_model):
    """Accuracy on a genuine mid-placement density map."""
    netlist = make_design("adaptec1", scale=SCALE)
    placer = XPlacer(
        netlist,
        PlacementParams(max_iterations=60, min_iterations=60, stop_overflow=1e-12),
    )
    placer.run()
    density_map = placer.engine._cache.density_map
    benchmark.pedantic(
        lambda: predict_fields(guidance_model, density_map), rounds=1, iterations=1
    )
    solution = placer.density.solver.solve(density_map)
    fx, __ = predict_fields(guidance_model, density_map)
    fx = fx * netlist.region.width
    error = float(
        np.linalg.norm(fx - solution.field_x) / np.linalg.norm(solution.field_x)
    )
    cosine = float(
        np.sum(fx * solution.field_x)
        / (np.linalg.norm(fx) * np.linalg.norm(solution.field_x))
    )
    assert cosine > 0.8
    _table.add(f"{'real GP map (adaptec1)':<28} {error:>10.3f}")
    _table.add(f"{'  (direction cosine)':<28} {cosine:>10.3f}")
