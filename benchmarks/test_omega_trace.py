"""Section 3.2: the stage indicator ω traverses its three regimes.

Verifies, on real runs, the behaviour the stage-aware schedule is built
on: ω starts < 0.05 (wirelength-dominated), crosses into the spreading
band, and overflow falls fastest while ω is rising.  Also compares
final HPWL with and without the stage-aware slowdown (Algorithm 1).
"""

import numpy as np
import pytest

from conftest import SCALE, TableCollector, design_subset
from repro.benchgen import ISPD2005_LIKE, make_design
from repro.core import PlacementParams, XPlacer

_table = TableCollector(
    "Stage indicator omega and Algorithm-1 effect",
    f"{'design':<10} {'omega@0':>9} {'omega@end':>10} {'HPWL aware':>12} "
    f"{'HPWL naive':>12} {'delta':>8}",
)

_DESIGNS = design_subset(ISPD2005_LIKE)[:4]


@pytest.mark.parametrize("design", _DESIGNS)
def test_omega_stages(benchmark, design):
    netlist = make_design(design, scale=SCALE)
    aware = benchmark.pedantic(
        lambda: XPlacer(netlist, PlacementParams()).run(), rounds=1, iterations=1
    )
    naive = XPlacer(
        netlist, PlacementParams(stage_aware_schedule=False)
    ).run()

    omega = aware.recorder.trace("omega")
    assert omega[0] < 0.05          # wirelength-dominated start
    assert omega[-1] > 0.3          # well into / past the spreading stage
    assert np.all(np.diff(omega) > -1e-9)  # monotone non-decreasing

    delta = (aware.hpwl - naive.hpwl) / naive.hpwl
    # Algorithm 1 is a quality technique: it must not cost more than a
    # few percent and typically helps.
    assert delta < 0.03
    _table.add(
        f"{design:<10} {omega[0]:>9.4f} {omega[-1]:>10.4f} "
        f"{aware.hpwl:>12.4g} {naive.hpwl:>12.4g} {delta:>+8.3%}"
    )
