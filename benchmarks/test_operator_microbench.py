"""Operator micro-benchmarks: the techniques of Section 3.1 in isolation.

Times the fused vs split wirelength operator, the extracted vs fused
density evaluation, and the autograd-vs-closed-form gradient — the
per-operator view that Table 3 aggregates per iteration.
"""

import numpy as np
import pytest

from conftest import SCALE, TableCollector
from repro.benchgen import make_design
from repro.density import DensitySystem
from repro.ops import use_profiler
from repro.wirelength import WirelengthOp
from repro.wirelength.wa_autograd import AutogradWirelengthOp

_table = TableCollector(
    "Operator microbenchmarks (one evaluation each)",
    f"{'operator':<36} {'launches':>9}",
)


@pytest.fixture(scope="module")
def workload():
    netlist = make_design("adaptec3", scale=SCALE)
    rng = np.random.default_rng(0)
    region = netlist.region
    x = rng.uniform(region.xl, region.xh, netlist.num_cells)
    y = rng.uniform(region.yl, region.yh, netlist.num_cells)
    return netlist, x, y


def test_wirelength_combined(benchmark, workload):
    netlist, x, y = workload
    op = WirelengthOp(netlist, combined=True)
    benchmark(lambda: op(x, y, 2.0))
    with use_profiler() as profiler:
        op(x, y, 2.0)
    _table.add(f"{'WA combined (OC on)':<36} {profiler.total:>9}")


def test_wirelength_split(benchmark, workload):
    netlist, x, y = workload
    op = WirelengthOp(netlist, combined=False)
    benchmark(lambda: op(x, y, 2.0))
    with use_profiler() as profiler:
        op(x, y, 2.0)
    _table.add(f"{'WA split (OC off)':<36} {profiler.total:>9}")


def test_wirelength_autograd(benchmark, workload):
    netlist, x, y = workload
    op = AutogradWirelengthOp(netlist)
    benchmark(lambda: op(x, y, 2.0))
    with use_profiler() as profiler:
        op(x, y, 2.0)
    _table.add(f"{'WA autograd (OR off)':<36} {profiler.total:>9}")

    # Parity: the tape computes the same objective and gradient.
    fused = WirelengthOp(netlist)(x, y, 2.0)
    taped = op(x, y, 2.0)
    assert taped.wa == pytest.approx(fused.wa, rel=1e-9)
    np.testing.assert_allclose(taped.grad_x, fused.grad_x, atol=1e-9)


def test_density_extracted(benchmark, workload):
    netlist, x, y = workload
    system = DensitySystem(netlist, 0.9, extraction=True,
                           rng=np.random.default_rng(1))
    benchmark(lambda: system.evaluate(x, y))
    with use_profiler() as profiler:
        system.evaluate(x, y)
    _table.add(f"{'density extracted (OE on)':<36} {profiler.total:>9}")


def test_density_fused(benchmark, workload):
    netlist, x, y = workload
    system = DensitySystem(netlist, 0.9, extraction=False,
                           rng=np.random.default_rng(1))
    benchmark(lambda: system.evaluate(x, y))
    with use_profiler() as profiler:
        system.evaluate(x, y)
    _table.add(f"{'density fused (OE off)':<36} {profiler.total:>9}")
