"""Intro-claim bench: quadratic vs non-linear global placement.

Section 1 of the paper: "Although quadratic placers show fast run time
to converge, their solution qualities are limited by the low modeling
order of the wirelength.  [...] non-linear placers produce higher
solution quality while the running time overhead is huge."  This bench
reproduces that trade-off with the B2B quadratic placer vs Xplace,
through the identical LG+DP back end.
"""

import pytest

from conftest import SCALE, TableCollector, design_subset
from repro.benchgen import ISPD2005_LIKE, make_design
from repro.core import PlacementParams, XPlacer
from repro.detail import DetailedPlacer
from repro.legalize import AbacusLegalizer, check_legal
from repro.quadratic import QuadraticPlacer
from repro.wirelength import hpwl

_table = TableCollector(
    "Intro claim: quadratic (B2B) vs non-linear (Xplace) placement",
    f"{'design':<10} | {'quad HPWL':>11} {'GP/s':>6} | {'Xp HPWL':>11} "
    f"{'GP/s':>6} | {'quality gap':>11}",
)

_DESIGNS = design_subset(ISPD2005_LIKE)[:4]


def _finish(netlist, gp_x, gp_y):
    lx, ly = AbacusLegalizer(netlist).legalize(gp_x, gp_y)
    dp = DetailedPlacer(netlist, max_passes=1).place(lx, ly)
    assert check_legal(netlist, dp.x, dp.y).legal
    return dp.hpwl_after


@pytest.mark.parametrize("design", _DESIGNS)
def test_quadratic_vs_nonlinear(benchmark, design):
    netlist = make_design(design, scale=SCALE)

    quad = benchmark.pedantic(
        lambda: QuadraticPlacer(netlist).run(), rounds=1, iterations=1
    )
    quad_hpwl = _finish(netlist, quad.x, quad.y)

    nonlinear = XPlacer(netlist, PlacementParams()).run()
    nonlinear_hpwl = _finish(netlist, nonlinear.x, nonlinear.y)

    gap = quad_hpwl / nonlinear_hpwl
    # The claim: the non-linear placer wins on quality.
    assert gap > 1.0
    _table.add(
        f"{design:<10} | {quad_hpwl:>11.4g} {quad.gp_seconds:>6.2f} | "
        f"{nonlinear_hpwl:>11.4g} {nonlinear.gp_seconds:>6.2f} | "
        f"{gap:>10.2f}x"
    )
