"""Table 1: benchmark statistics (#cells, #nets) of both suites.

Regenerates the statistics table for the synthetic ISPD-2005-like and
ISPD-2015-like suites at the configured scale.  The benchmarked quantity
is circuit generation itself (netlist construction throughput).
"""

import pytest

from conftest import SCALE, TableCollector, design_subset
from repro.benchgen import (
    ISPD2005_LIKE,
    ISPD2015_LIKE,
    generate_circuit,
    ispd2005_like_suite,
    ispd2015_like_suite,
)
from repro.netlist import compute_stats

_SUITES = {"ISPD 2005": ispd2005_like_suite(SCALE), "ISPD 2015": ispd2015_like_suite(SCALE)}

_table = TableCollector(
    f"Table 1: Benchmarks Statistics (scale={SCALE})",
    f"{'suite':<10} {'design':<16} {'#cells':>8} {'#nets':>8} {'#pins':>9} "
    f"{'util':>6} {'avg deg':>8}",
)

_CASES = [
    ("ISPD 2005", name) for name in design_subset(ISPD2005_LIKE)
] + [("ISPD 2015", name) for name in design_subset(ISPD2015_LIKE)]


@pytest.mark.parametrize("suite,design", _CASES, ids=[c[1] for c in _CASES])
def test_table1_design_stats(benchmark, suite, design):
    spec = _SUITES[suite][design]
    netlist = benchmark.pedantic(generate_circuit, args=(spec,), rounds=1,
                                 iterations=1)
    stats = compute_stats(netlist)
    # Invariants the suites guarantee (what makes them contest-like).
    assert stats.num_movable == spec.num_cells
    assert 2.0 < stats.avg_net_degree < 6.0
    assert 0.05 < stats.utilization < 1.0
    _table.add(
        f"{suite:<10} {design:<16} {stats.num_cells:>8} {stats.num_nets:>8} "
        f"{stats.num_pins:>9} {stats.utilization:>6.2f} "
        f"{stats.avg_net_degree:>8.2f}"
    )
