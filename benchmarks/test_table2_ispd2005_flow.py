"""Table 2: HPWL and runtime on the ISPD-2005-like suite.

For every design, runs the full GP→LG→DP flow for DREAMPlace-style
baseline, Xplace, and Xplace-NN (the same LG/DP back end for all three,
per the paper's protocol) and reports post-DP HPWL, GP seconds and DP
seconds.  The benchmarked callable is the Xplace GP run.

Expected shape vs the paper: Xplace reaches the same-or-slightly-better
HPWL than the baseline at a 1.3–3x GP-time speedup; Xplace-NN nudges
HPWL down another fraction of a percent at extra GP cost.
"""

import numpy as np
import pytest

from conftest import DP_PASSES, SCALE, TableCollector, design_subset
from repro.benchgen import ISPD2005_LIKE, make_design
from repro.core import PlacementParams, XPlacer
from repro.flow import run_flow
from repro.nn import make_field_predictor

_table = TableCollector(
    f"Table 2: ISPD-2005-like HPWL(x1e3) and runtime seconds (scale={SCALE})",
    f"{'design':<10} | {'base HPWL':>10} {'GP/s':>6} {'DP/s':>6} | "
    f"{'Xp HPWL':>10} {'GP/s':>6} {'DP/s':>6} | "
    f"{'XpNN HPWL':>10} {'GP/s':>6} {'DP/s':>6}",
)
_sums = {
    "base": [0.0, 0.0, 0.0],
    "xp": [0.0, 0.0, 0.0],
    "nn": [0.0, 0.0, 0.0],
}
_designs = design_subset(ISPD2005_LIKE)


@pytest.mark.parametrize("design", _designs)
def test_table2_design(benchmark, design, guidance_model):
    netlist = make_design(design, scale=SCALE)
    params = PlacementParams()

    base = run_flow(netlist, placer="baseline", params=params, dp_passes=DP_PASSES)
    assert base.legal

    # Benchmark the headline quantity: Xplace global placement.
    gp = benchmark.pedantic(
        lambda: XPlacer(netlist, params).run(), rounds=1, iterations=1
    )
    xplace = run_flow(netlist, placer="xplace", params=params, dp_passes=DP_PASSES)
    assert xplace.legal
    # The benchmarked GP and the flow GP are the same configuration.
    assert gp.hpwl == pytest.approx(xplace.gp_hpwl, rel=1e-9)

    predictor = make_field_predictor(guidance_model, netlist.region)
    nn = run_flow(
        netlist,
        placer="xplace-nn",
        params=params,
        field_predictor=predictor,
        dp_passes=DP_PASSES,
    )
    assert nn.legal

    # Shape assertions (see module docstring).
    assert xplace.final_hpwl < 1.03 * base.final_hpwl
    assert nn.final_hpwl < 1.03 * base.final_hpwl

    for key, res in (("base", base), ("xp", xplace), ("nn", nn)):
        _sums[key][0] += res.final_hpwl
        _sums[key][1] += res.gp_seconds
        _sums[key][2] += res.dp_seconds
    _table.add(
        f"{design:<10} | {base.final_hpwl/1e3:>10.1f} {base.gp_seconds:>6.2f} "
        f"{base.dp_seconds:>6.1f} | {xplace.final_hpwl/1e3:>10.1f} "
        f"{xplace.gp_seconds:>6.2f} {xplace.dp_seconds:>6.1f} | "
        f"{nn.final_hpwl/1e3:>10.1f} {nn.gp_seconds:>6.2f} {nn.dp_seconds:>6.1f}"
    )
    if design == _designs[-1]:
        b, x, n = _sums["base"], _sums["xp"], _sums["nn"]
        _table.add_footer(
            f"{'Sum':<10} | {b[0]/1e3:>10.1f} {b[1]:>6.2f} {b[2]:>6.1f} | "
            f"{x[0]/1e3:>10.1f} {x[1]:>6.2f} {x[2]:>6.1f} | "
            f"{n[0]/1e3:>10.1f} {n[1]:>6.2f} {n[2]:>6.1f}"
        )
        if x[0] > 0:
            _table.add_footer(
                f"{'Ratio':<10} | {b[0]/x[0]:>10.3f} {b[1]/x[1]:>6.2f} "
                f"{b[2]/x[2]:>6.2f} | {1.0:>10.3f} {1.0:>6.2f} {1.0:>6.2f} | "
                f"{n[0]/x[0]:>10.3f} {n[1]/x[1]:>6.2f} {n[2]/x[2]:>6.2f}"
            )
