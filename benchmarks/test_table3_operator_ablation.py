"""Table 3: ablation of the operator-level optimization techniques.

Measures per-GP-iteration time for the cumulative configurations
{none} → {OR} → {OR,OC} → {OR,OC,OE} → {OR,OC,OE,OS} (= Xplace) and for
the DREAMPlace-style baseline, on every ISPD-2005-like design.  Reported
as percentages of the Xplace per-iteration time, like the paper.

Expected shape: each added technique is monotonically non-hurting, the
"none" row sits well above 100 %, and the baseline sits above "none".
All configurations run the same mathematics — the techniques only change
operator dispatch — so their HPWL trajectories coincide (asserted for
the OC/OE rows, which are bit-identical by construction).
"""

import time

import pytest

from conftest import SCALE, TableCollector, design_subset
from repro.baseline import DreamPlaceStyleBaseline
from repro.benchgen import ISPD2005_LIKE, make_design
from repro.core import PlacementParams, XPlacer

_ITERATIONS = 80

_CONFIGS = [
    ("none", dict(operator_reduction=False, combined_wirelength=False,
                  density_extraction=False, operator_skipping=False)),
    ("OR", dict(combined_wirelength=False, density_extraction=False,
                operator_skipping=False)),
    ("OR+OC", dict(density_extraction=False, operator_skipping=False)),
    ("OR+OC+OE", dict(operator_skipping=False)),
    ("Xplace", dict()),
]

_table = TableCollector(
    f"Table 3: per-GP-iteration time, % of Xplace (scale={SCALE}, "
    f"{_ITERATIONS} iterations)",
    f"{'design':<10} " + " ".join(f"{name:>10}" for name, __ in _CONFIGS)
    + f" {'DREAMPlace':>11} {'Xplace ms':>10}",
)


def _per_iteration_seconds(factory) -> float:
    placer = factory()
    start = time.perf_counter()
    result = placer.run()
    return (time.perf_counter() - start) / result.iterations, result


@pytest.mark.parametrize("design", design_subset(ISPD2005_LIKE))
def test_table3_ablation(benchmark, design):
    netlist = make_design(design, scale=SCALE)

    def fixed_params(**kw):
        return PlacementParams(
            max_iterations=_ITERATIONS,
            min_iterations=_ITERATIONS,
            stop_overflow=1e-12,
            **kw,
        )

    times = {}
    hpwls = {}
    for name, flags in _CONFIGS:
        if name == "Xplace":
            # The benchmarked callable: one full Xplace GP segment.
            result = benchmark.pedantic(
                lambda: XPlacer(netlist, fixed_params()).run(),
                rounds=1,
                iterations=1,
            )
            seconds = benchmark.stats.stats.mean
        else:
            seconds, result = _per_iteration_seconds(
                lambda flags=flags: XPlacer(netlist, fixed_params(**flags))
            )
            seconds *= result.iterations
        times[name] = seconds / result.iterations
        hpwls[name] = result.hpwl

    base_seconds, base_result = _per_iteration_seconds(
        lambda: DreamPlaceStyleBaseline(netlist, fixed_params())
    )
    times["DREAMPlace"] = base_seconds

    # OC and OE are pure dispatch changes: identical HPWL trajectories.
    assert hpwls["OR"] == pytest.approx(hpwls["OR+OC"], rel=1e-9)
    assert hpwls["OR+OC"] == pytest.approx(hpwls["OR+OC+OE"], rel=1e-9)
    # The full stack must not be slower than the bare configuration.
    assert times["Xplace"] <= times["none"] * 1.05
    assert times["DREAMPlace"] >= times["Xplace"]

    xplace_time = times["Xplace"]
    row = f"{design:<10} "
    row += " ".join(
        f"{100 * times[name] / xplace_time:>9.0f}%" for name, __ in _CONFIGS
    )
    row += f" {100 * times['DREAMPlace'] / xplace_time:>10.0f}%"
    row += f" {1000 * xplace_time:>10.3f}"
    _table.add(row)
