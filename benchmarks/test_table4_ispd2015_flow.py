"""Table 4: HPWL, top5 overflow and runtime on the ISPD-2015-like suite.

Runs baseline and Xplace through GP→LG→DP→GR on all twenty designs
(fence regions removed by construction, like the † rows of the paper)
and reports post-DP HPWL, the router's top-5 %-g-cell overflow, and GP /
DP seconds.

Expected shape: Xplace HPWL ≤ ~baseline with clearly faster GP and
comparable OVFL-5 (routability is dominated by the shared density
target, not by which placer reached it).
"""

import pytest

from conftest import DP_PASSES, SCALE, TableCollector, design_subset
from repro.benchgen import ISPD2015_LIKE, make_design
from repro.core import PlacementParams, XPlacer
from repro.flow import run_flow

_table = TableCollector(
    f"Table 4: ISPD-2015-like HPWL(x1e3), OVFL-5 and runtime (scale={SCALE})",
    f"{'design':<16} | {'base HPWL':>10} {'OVFL5':>6} {'GP/s':>6} {'DP/s':>6} | "
    f"{'Xp HPWL':>10} {'OVFL5':>6} {'GP/s':>6} {'DP/s':>6}",
)
_sums = {"base": [0.0] * 4, "xp": [0.0] * 4}
_designs = design_subset(ISPD2015_LIKE)


@pytest.mark.parametrize("design", _designs)
def test_table4_design(benchmark, design):
    netlist = make_design(design, scale=SCALE)
    params = PlacementParams()

    base = run_flow(
        netlist, placer="baseline", params=params, dp_passes=DP_PASSES, route=True
    )
    assert base.legal

    benchmark.pedantic(
        lambda: XPlacer(netlist, params).run(), rounds=1, iterations=1
    )
    xplace = run_flow(
        netlist, placer="xplace", params=params, dp_passes=DP_PASSES, route=True
    )
    assert xplace.legal

    # Shape: comparable quality, comparable routability.
    assert xplace.final_hpwl < 1.05 * base.final_hpwl
    assert xplace.top5_overflow < 1.5 * base.top5_overflow + 1.0

    for key, res in (("base", base), ("xp", xplace)):
        _sums[key][0] += res.final_hpwl
        _sums[key][1] += res.top5_overflow
        _sums[key][2] += res.gp_seconds
        _sums[key][3] += res.dp_seconds
    _table.add(
        f"{design:<16} | {base.final_hpwl/1e3:>10.1f} {base.top5_overflow:>6.2f} "
        f"{base.gp_seconds:>6.2f} {base.dp_seconds:>6.1f} | "
        f"{xplace.final_hpwl/1e3:>10.1f} {xplace.top5_overflow:>6.2f} "
        f"{xplace.gp_seconds:>6.2f} {xplace.dp_seconds:>6.1f}"
    )
    if design == _designs[-1]:
        b, x = _sums["base"], _sums["xp"]
        _table.add_footer(
            f"{'Sum':<16} | {b[0]/1e3:>10.1f} {b[1]:>6.1f} {b[2]:>6.2f} "
            f"{b[3]:>6.1f} | {x[0]/1e3:>10.1f} {x[1]:>6.1f} {x[2]:>6.2f} "
            f"{x[3]:>6.1f}"
        )
        if x[0] > 0:
            _table.add_footer(
                f"{'Ratio (base/Xp)':<16} | {b[0]/x[0]:>10.3f} "
                f"{b[1]/max(x[1],1e-9):>6.2f} {b[2]/x[2]:>6.2f} "
                f"{b[3]/x[3]:>6.2f} |"
            )
