#!/usr/bin/env python
"""Batch runtime tour: manifest → pool → cache → seed racing.

Builds a 4-job manifest (two designs × two seeds), runs it through the
parallel worker pool with an on-disk result cache and a JSONL event
log, reruns it to show every job short-circuiting through the cache,
then races 4 seeds of one design and prints the winner.

    python examples/batch_runtime.py [num_cells] [workers]
"""

import json
import os
import sys
import tempfile

from repro.runtime import (
    EventLog,
    PlacementJob,
    load_manifest,
    race_seeds,
    run_batch,
    summary_table,
)


def main() -> None:
    num_cells = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    params = {"max_iterations": 300, "min_iterations": 20}

    with tempfile.TemporaryDirectory() as workdir:
        manifest_path = os.path.join(workdir, "manifest.json")
        with open(manifest_path, "w") as fh:
            json.dump(
                [
                    {"design": design, "cells": num_cells, "seed": seed,
                     "params": params, "timeout": 600, "retries": 1}
                    for design in ("fft_1", "pci_bridge32_a")
                    for seed in (1, 2)
                ],
                fh, indent=2,
            )
        jobs = load_manifest(manifest_path)
        cache_dir = os.path.join(workdir, "cache")
        events_path = os.path.join(workdir, "events.jsonl")

        print(f"-- batch: {len(jobs)} jobs, {workers} workers --")
        with EventLog(path=events_path) as events:
            results, _ = run_batch(jobs, max_workers=workers,
                                   cache_dir=cache_dir, events=events)
        print(summary_table(jobs, results))
        with open(events_path) as fh:
            kinds = [json.loads(line)["kind"] for line in fh]
        print(f"event stream: {len(kinds)} events "
              f"({kinds.count('heartbeat')} heartbeats)\n")

        print("-- rerun: every job served from the cache --")
        results, _ = run_batch(jobs, max_workers=workers,
                               cache_dir=cache_dir)
        print(summary_table(jobs, results))
        assert all(r.cached for r in results)

        print("\n-- racing 4 seeds of fft_1 (best final HPWL wins) --")
        job = PlacementJob(design="fft_1", cells=num_cells, params=params,
                           timeout=600)
        race = race_seeds(job, n=4, max_workers=workers)
        print(race.summary())
        contenders = race.winner.report.stage("race").metrics["contenders"]
        spread = (max(c["hpwl"] for c in contenders)
                  - min(c["hpwl"] for c in contenders))
        print(f"seed spread: {spread:.4g} HPWL "
              f"({spread / race.winner.hpwl:.2%} of the winner)")


if __name__ == "__main__":
    main()
