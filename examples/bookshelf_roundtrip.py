#!/usr/bin/env python
"""Bookshelf interchange: write, re-read and place a benchmark directory.

Demonstrates the ISPD-2005 interchange path: a synthetic design is
persisted as a full bookshelf benchmark (.aux/.nodes/.nets/.pl/.scl/.wts),
read back, placed, and the placement is written to a .pl file — the same
artifact the contest flows exchange with legalizers like NTUPlace3.

    python examples/bookshelf_roundtrip.py [directory]
"""

import os
import sys
import tempfile

from repro import PlacementParams, XPlacer, make_design
from repro.bookshelf import read_bookshelf, write_bookshelf, write_pl


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="bookshelf_"
    )
    original = make_design("bigblue1", num_cells=800)

    aux = write_bookshelf(original, directory)
    print(f"wrote benchmark: {aux}")
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        print(f"  {name:<20} {os.path.getsize(path):>8} bytes")

    netlist = read_bookshelf(aux)
    print(
        f"\nre-read {netlist.name}: {netlist.num_cells} cells, "
        f"{netlist.num_nets} nets, {netlist.num_pins} pins"
    )
    assert netlist.num_cells == original.num_cells

    result = XPlacer(netlist, PlacementParams()).run()
    print(f"placed: HPWL {result.hpwl:.4g} in {result.gp_seconds:.2f}s")

    pl_path = os.path.join(directory, f"{netlist.name}.gp.pl")
    write_pl(netlist, pl_path, x=result.x, y=result.y)
    print(f"wrote placement: {pl_path}")


if __name__ == "__main__":
    main()
