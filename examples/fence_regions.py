#!/usr/bin/env python
"""Fence-region constrained placement (the paper's stated future work).

Generates an ISPD-2015-style design *with* fence regions, runs the full
constrained flow — projection-constrained global placement, two-phase
fence-aware legalization, fence-respecting detailed placement — and
verifies every constraint.  Writes an SVG so the fences are visible.

    python examples/fence_regions.py [num_cells] [out.svg]
"""

import sys

import numpy as np

from repro import run_flow
from repro.benchgen import CircuitSpec, generate_circuit
from repro.legalize import check_legal
from repro.viz import placement_svg


def main() -> None:
    num_cells = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    svg_path = sys.argv[2] if len(sys.argv) > 2 else None

    spec = CircuitSpec(
        "fenced_demo",
        num_cells=num_cells,
        num_macros=2,
        num_fences=3,
        utilization=0.45,
        fence_cell_fraction=0.2,
    )
    netlist = generate_circuit(spec)
    members = int(np.sum(netlist.cell_fence >= 0))
    print(f"{netlist.name}: {netlist.num_movable} movable cells, "
          f"{len(netlist.fences)} fences, {members} fenced cells")
    for fence in netlist.fences:
        print(f"  {fence.name}: area {fence.area:.0f}, boxes {len(fence.boxes)}")

    result = run_flow(netlist, placer="xplace", dp_passes=1)
    report = check_legal(netlist, result.x, result.y)
    print(f"\nfinal HPWL {result.final_hpwl:.4g} "
          f"(GP {result.gp_seconds:.2f}s, LG+DP {result.dp_seconds:.2f}s)")
    print(report.summary())
    assert report.legal, "constrained flow must end legal"

    # Per-fence containment accounting.
    mov = netlist.movable_index
    hw = netlist.cell_w[mov] / 2
    hh = netlist.cell_h[mov] / 2
    for g, fence in enumerate(netlist.fences):
        inside = fence.contains_box(
            result.x[mov], result.y[mov], hw, hh
        )
        assigned = netlist.cell_fence[mov] == g
        print(f"  {fence.name}: {int(np.sum(inside & assigned))}/"
              f"{int(np.sum(assigned))} members inside, "
              f"{int(np.sum(inside & ~assigned))} intruders")

    if svg_path:
        placement_svg(netlist, result.x, result.y, path=svg_path)
        print(f"wrote {svg_path}")


if __name__ == "__main__":
    main()
