#!/usr/bin/env python
"""Table-2-style comparison on one ISPD-2005-like design.

Runs the DREAMPlace-style baseline and Xplace through the identical
LG+DP back end (the paper's fair-comparison protocol) and prints the
HPWL / GP time / DP time row for each.

    python examples/ispd2005_flow.py [design] [scale]
"""

import sys

from repro import make_design, run_flow
from repro.netlist import compute_stats


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "adaptec1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    netlist = make_design(design, scale=scale)
    stats = compute_stats(netlist)
    print(f"{stats.design}: {stats.num_cells} cells, {stats.num_nets} nets\n")

    print(f"{'placer':<10} {'HPWL':>12} {'GP/s':>8} {'DP/s':>8} {'legal':>6}")
    results = {}
    for placer in ("baseline", "xplace"):
        result = run_flow(netlist, placer=placer, dp_passes=1)
        results[placer] = result
        print(
            f"{placer:<10} {result.final_hpwl:>12.4g} {result.gp_seconds:>8.2f} "
            f"{result.dp_seconds:>8.2f} {str(result.legal):>6}"
        )

    base = results["baseline"]
    ours = results["xplace"]
    print(
        f"\nXplace vs baseline: GP speedup {base.gp_seconds / ours.gp_seconds:.2f}x, "
        f"HPWL ratio {base.final_hpwl / ours.final_hpwl:.4f} "
        f"(>1 means Xplace is better)"
    )


if __name__ == "__main__":
    main()
