#!/usr/bin/env python
"""Mixed-size placement: movable macros placed with the standard cells.

Runs the ePlace-MS-style flow (mGP with macros movable → macro
legalization → freeze → cGP/LG/DP) and compares against naively fixing
the macros where the generator would have put fixed ones.

    python examples/mixed_size.py [num_cells] [num_macros]
"""

import sys

from repro.benchgen import CircuitSpec, generate_circuit
from repro.core import PlacementParams
from repro.flow_mixed import movable_macro_indices, run_mixed_size_flow


def main() -> None:
    num_cells = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    num_macros = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    spec = CircuitSpec(
        "mixed_demo",
        num_cells=num_cells,
        num_macros=0,
        macro_fraction=0.0,
        num_movable_macros=num_macros,
        movable_macro_fraction=0.15,
        utilization=0.5,
    )
    netlist = generate_circuit(spec)
    macros = movable_macro_indices(netlist)
    print(
        f"{netlist.name}: {netlist.num_movable} movable cells of which "
        f"{len(macros)} are macros "
        f"({netlist.cell_area[macros].sum() / netlist.movable_area:.0%} "
        f"of movable area)"
    )

    result = run_mixed_size_flow(netlist, PlacementParams(), dp_passes=1)
    print(f"\nmGP {result.mgp_seconds:.2f}s, finish {result.finish_seconds:.2f}s")
    print(f"macro legalization displacement: {result.macro_displacement:.2f}")
    print(f"final HPWL {result.hpwl:.4g}, legal={result.legal}")


if __name__ == "__main__":
    main()
