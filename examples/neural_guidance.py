#!/usr/bin/env python
"""Xplace-NN: plug the Fourier neural operator into the placer.

Trains (or loads from cache) the field-prediction network on purely
synthetic density maps, verifies its accuracy against the numerical
solver, then compares Xplace with and without neural guidance —
Section 3.3 / the Xplace-NN column of Table 2.

    python examples/neural_guidance.py [design]
"""

import sys

import numpy as np

from repro import PlacementParams, XPlacer, make_design
from repro.nn import (
    get_pretrained_model,
    make_field_predictor,
    predict_fields,
    random_density_dataset,
)


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "adaptec1"

    print("-- loading / training the guidance model --")
    model = get_pretrained_model(verbose=True)
    print(f"model: {model.num_parameters()} parameters")

    print("\n-- field accuracy on held-out synthetic maps --")
    test = random_density_dataset(6, m=32, rng=np.random.default_rng(12345))
    errors = []
    for sample in test:
        fx, __ = predict_fields(model, sample.density)
        errors.append(
            np.linalg.norm(fx - sample.field_x) / np.linalg.norm(sample.field_x)
        )
    print(f"relative L2 error: {np.mean(errors):.3f} (0 = perfect, 1 = zero field)")

    print(f"\n-- placing {design} with and without guidance --")
    netlist = make_design(design)
    plain = XPlacer(netlist, PlacementParams()).run()
    predictor = make_field_predictor(model, netlist.region)
    guided = XPlacer(
        netlist,
        PlacementParams(neural_guidance=True),
        field_predictor=predictor,
    ).run()

    print(f"Xplace    : HPWL {plain.hpwl:.6g}  GP {plain.gp_seconds:.2f}s")
    print(f"Xplace-NN : HPWL {guided.hpwl:.6g}  GP {guided.gp_seconds:.2f}s")
    delta = (guided.hpwl - plain.hpwl) / plain.hpwl
    print(f"HPWL delta: {delta:+.4%} (paper reports ~ -0.1%)")


if __name__ == "__main__":
    main()
