#!/usr/bin/env python
"""Quickstart: place a small synthetic design end to end.

Generates an ISPD-2005-like circuit, runs Xplace global placement,
legalizes with Abacus, refines with detailed placement, and prints every
stage's metrics.  Runs in well under a minute on a laptop.

    python examples/quickstart.py [num_cells]
"""

import sys

from repro import (
    AbacusLegalizer,
    DetailedPlacer,
    PlacementParams,
    XPlacer,
    check_legal,
    hpwl,
    make_design,
)
from repro.netlist import compute_stats


def main() -> None:
    num_cells = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    netlist = make_design("adaptec1", num_cells=num_cells)
    stats = compute_stats(netlist)
    print(
        f"design {stats.design}: {stats.num_cells} cells, {stats.num_nets} nets, "
        f"{stats.num_pins} pins, utilization {stats.utilization:.2f}"
    )

    print("\n-- global placement (Xplace) --")
    placer = XPlacer(netlist, PlacementParams(verbose=True))
    gp = placer.run()
    print(
        f"GP done: HPWL {gp.hpwl:.4g}, overflow {gp.overflow:.3f}, "
        f"{gp.iterations} iterations in {gp.gp_seconds:.2f}s "
        f"({gp.recorder.density_skip_count()} density evaluations skipped)"
    )

    print("\n-- legalization (Abacus) --")
    lx, ly = AbacusLegalizer(netlist).legalize(gp.x, gp.y)
    report = check_legal(netlist, lx, ly)
    print(f"legalized: HPWL {hpwl(netlist, lx, ly):.4g}, {report.summary()}")

    print("\n-- detailed placement --")
    dp = DetailedPlacer(netlist, max_passes=2).place(lx, ly)
    report = check_legal(netlist, dp.x, dp.y)
    print(
        f"DP done: HPWL {dp.hpwl_after:.4g} "
        f"({dp.improvement:.2%} better), {dp.moves_applied} moves in "
        f"{dp.dp_seconds:.2f}s; {report.summary()}"
    )


if __name__ == "__main__":
    main()
