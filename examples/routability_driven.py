#!/usr/bin/env python
"""Routability-driven placement (the paper's other stated future work).

Runs the place → route → inflate loop and shows top5 overflow improving
round by round at a controlled HPWL cost.

    python examples/routability_driven.py [design] [rounds]
"""

import sys

from repro.benchgen import make_design
from repro.core import PlacementParams
from repro.route import RoutabilityDrivenPlacer


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "fft_2"
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    netlist = make_design(design)
    print(f"{netlist.name}: {netlist.num_movable} movable cells\n")

    placer = RoutabilityDrivenPlacer(netlist, PlacementParams(), rounds=rounds)
    result = placer.run()

    print(f"{'round':>5} {'HPWL':>12} {'top5 ovfl':>10} {'total ovfl':>11} "
          f"{'inflated':>9}")
    for r in result.rounds:
        marker = " <- best" if r.round_index == result.best_round else ""
        print(
            f"{r.round_index:>5} {r.hpwl:>12.4g} {r.top5_overflow:>10.2f} "
            f"{r.total_overflow:>11.0f} {r.inflated_cells:>9}{marker}"
        )
    print(f"\nkept round {result.best_round}: "
          f"HPWL {result.hpwl:.4g}, top5 overflow {result.top5_overflow:.2f}")


if __name__ == "__main__":
    main()
