#!/usr/bin/env python
"""ISPD-2015-style routability flow (the Table 4 protocol).

Places an ISPD-2015-like design (fence regions removed, as in the
paper), legalizes, refines, then runs the global router and reports the
top5 overflow routability metric alongside HPWL and runtimes.

    python examples/routability_flow.py [design] [scale]
"""

import sys

from repro import make_design, run_flow
from repro.netlist import compute_stats


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "fft_1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    netlist = make_design(design, scale=scale)
    stats = compute_stats(netlist)
    print(f"{stats.design}: {stats.num_cells} cells, {stats.num_nets} nets\n")

    header = f"{'placer':<10} {'HPWL':>12} {'OVFL-5':>8} {'GP/s':>7} {'DP/s':>7} {'GR/s':>7}"
    print(header)
    for placer in ("baseline", "xplace"):
        result = run_flow(netlist, placer=placer, dp_passes=1, route=True)
        print(
            f"{placer:<10} {result.final_hpwl:>12.4g} "
            f"{result.top5_overflow:>8.2f} {result.gp_seconds:>7.2f} "
            f"{result.dp_seconds:>7.2f} {result.gr_seconds:>7.2f}"
        )


if __name__ == "__main__":
    main()
