#!/usr/bin/env python
"""Timing-driven placement: shrink the critical path by net weighting.

Runs the place → STA → reweight loop and prints, per round, the
critical-path delay and the total-wirelength cost of contracting it.

    python examples/timing_driven.py [design] [rounds]
"""

import sys

from repro.benchgen import make_design
from repro.core import PlacementParams
from repro.timing import TimingDrivenPlacer


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "fft_1"
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    netlist = make_design(design)
    print(f"{netlist.name}: {netlist.num_movable} movable cells\n")

    placer = TimingDrivenPlacer(netlist, PlacementParams(), rounds=rounds)
    result = placer.run()

    print(f"{'round':>5} {'critical delay':>15} {'HPWL':>12} {'max weight':>11}")
    for r in result.rounds:
        print(
            f"{r.round_index:>5} {r.critical_delay:>15.3f} {r.hpwl:>12.4g} "
            f"{r.max_weight:>11.2f}"
        )
    print(
        f"\nbest: critical delay {result.critical_delay:.3f} "
        f"({result.delay_improvement:+.1%} vs round 0) at HPWL {result.hpwl:.4g}"
    )


if __name__ == "__main__":
    main()
