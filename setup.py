"""Legacy setup shim: lets `pip install -e . --no-use-pep517` work offline
(the sandbox lacks the `wheel` package PEP 517 editable builds require)."""
from setuptools import setup

setup()
