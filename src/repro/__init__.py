"""repro — a pure-Python reproduction of Xplace (DAC 2022).

Xplace is a fast, extensible GPU-accelerated analytical global placement
framework; this package re-implements it (and every substrate its
evaluation depends on) on NumPy/SciPy.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import make_design, run_flow
    result = run_flow(make_design("adaptec1"), placer="xplace")
    print(result.final_hpwl, result.gp_seconds)
"""

from repro.netlist import (
    FenceRegion,
    Netlist,
    NetlistBuilder,
    PlacementRegion,
    compute_stats,
)
from repro.benchgen import CircuitSpec, generate_circuit, make_design
from repro.core import PlacementParams, PlacementResult, XPlacer
from repro.baseline import DreamPlaceStyleBaseline
from repro.legalize import (
    AbacusLegalizer,
    FenceAwareLegalizer,
    TetrisLegalizer,
    check_legal,
)
from repro.detail import DetailedPlacer
from repro.route import GlobalRouter, RoutabilityDrivenPlacer
from repro.quadratic import QuadraticPlacer
from repro.wirelength import hpwl
from repro.pipeline import (
    DetailStage,
    FlowReport,
    FreezeStage,
    GlobalPlaceStage,
    IterationCallback,
    LegalizeStage,
    MacroLegalizeStage,
    Pipeline,
    PlacementContext,
    RecorderCallback,
    RouteStage,
    Stage,
    VerboseCallback,
)
from repro.flow import FlowResult, build_standard_pipeline, run_flow, run_job
from repro.flow_mixed import (
    MixedSizeResult,
    build_mixed_size_pipeline,
    run_mixed_size_flow,
)
from repro.timing import TimingDrivenPlacer, TimingGraph, run_sta
from repro.recovery import (
    CheckpointManager,
    DivergenceMonitor,
    LoopSnapshot,
    RecoveryController,
)
from repro.faults import FaultCallback, FaultPlan, FaultSpec, InjectedFault
from repro.runtime import (
    EventLog,
    JobResult,
    PlacementJob,
    RaceResult,
    ResultCache,
    WorkerPool,
    execute_job,
    race_seeds,
    run_batch,
    sweep_params,
)

__version__ = "1.0.0"

__all__ = [
    "Netlist",
    "NetlistBuilder",
    "PlacementRegion",
    "compute_stats",
    "CircuitSpec",
    "generate_circuit",
    "make_design",
    "PlacementParams",
    "PlacementResult",
    "XPlacer",
    "DreamPlaceStyleBaseline",
    "AbacusLegalizer",
    "FenceAwareLegalizer",
    "TetrisLegalizer",
    "check_legal",
    "DetailedPlacer",
    "GlobalRouter",
    "RoutabilityDrivenPlacer",
    "QuadraticPlacer",
    "FenceRegion",
    "hpwl",
    "FlowResult",
    "run_flow",
    "run_job",
    "build_standard_pipeline",
    "MixedSizeResult",
    "run_mixed_size_flow",
    "build_mixed_size_pipeline",
    "Pipeline",
    "Stage",
    "PlacementContext",
    "FlowReport",
    "GlobalPlaceStage",
    "MacroLegalizeStage",
    "FreezeStage",
    "LegalizeStage",
    "DetailStage",
    "RouteStage",
    "IterationCallback",
    "RecorderCallback",
    "VerboseCallback",
    "TimingDrivenPlacer",
    "TimingGraph",
    "run_sta",
    "CheckpointManager",
    "DivergenceMonitor",
    "LoopSnapshot",
    "RecoveryController",
    "FaultCallback",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "EventLog",
    "JobResult",
    "PlacementJob",
    "RaceResult",
    "ResultCache",
    "WorkerPool",
    "execute_job",
    "race_seeds",
    "run_batch",
    "sweep_params",
]
