"""Static analysis + runtime sanitizing for the placement kernels.

Two prongs (see DESIGN.md §8):

* a pluggable AST lint engine (:mod:`repro.analysis.engine`) running the
  repo-specific invariant catalogue (:mod:`repro.analysis.rules`) behind
  the ``repro lint`` CLI subcommand, and
* an opt-in runtime numerical sanitizer
  (:mod:`repro.analysis.sanitizer`, ``REPRO_SANITIZE=1``) validating
  every op's outputs and gradients as a placement runs.
"""

from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    LintConfig,
    LintEngine,
    Rule,
    Violation,
    render_json,
    render_text,
)
from repro.analysis.rules import RULES, default_rules
from repro.analysis.sanitizer import (
    NumericalFault,
    Sanitizer,
    active,
    disable,
    enable,
    env_enabled,
    install_from_env,
    sanitized,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_USAGE",
    "EXIT_VIOLATIONS",
    "LintConfig",
    "LintEngine",
    "Rule",
    "Violation",
    "render_json",
    "render_text",
    "RULES",
    "default_rules",
    "NumericalFault",
    "Sanitizer",
    "active",
    "disable",
    "enable",
    "env_enabled",
    "install_from_env",
    "sanitized",
]
