"""Static analysis + runtime sanitizing for the placement kernels.

Three prongs (see DESIGN.md §8 and §13):

* a pluggable AST lint engine (:mod:`repro.analysis.engine`) running the
  repo-specific invariant catalogue (:mod:`repro.analysis.rules`) behind
  the ``repro lint`` CLI subcommand,
* multi-pass dataflow analyzers over a shared per-module semantic model
  (:mod:`repro.analysis.model`): lock-discipline/lock-order
  (:mod:`repro.analysis.locks`), determinism taint
  (:mod:`repro.analysis.determinism`), and resource lifetime
  (:mod:`repro.analysis.lifetime`), with committed-baseline support
  (:mod:`repro.analysis.baseline`), and
* an opt-in runtime numerical sanitizer
  (:mod:`repro.analysis.sanitizer`, ``REPRO_SANITIZE=1``) validating
  every op's outputs and gradients as a placement runs.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    LintConfig,
    LintEngine,
    Rule,
    SemanticRule,
    Violation,
    changed_files,
    render_json,
    render_text,
)
from repro.analysis.model import ModuleModel, build_model
from repro.analysis.rules import RULES, default_rules
from repro.analysis.sanitizer import (
    NumericalFault,
    Sanitizer,
    active,
    disable,
    enable,
    env_enabled,
    install_from_env,
    sanitized,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_USAGE",
    "EXIT_VIOLATIONS",
    "Baseline",
    "BaselineEntry",
    "LintConfig",
    "LintEngine",
    "ModuleModel",
    "Rule",
    "SemanticRule",
    "Violation",
    "build_model",
    "changed_files",
    "render_json",
    "render_text",
    "RULES",
    "default_rules",
    "NumericalFault",
    "Sanitizer",
    "active",
    "disable",
    "enable",
    "env_enabled",
    "install_from_env",
    "sanitized",
]
