"""Committed lint baseline: intentional, individually-justified findings.

The dataflow passes are conservative, and a handful of real patterns
are *deliberate* — e.g. the service journal stamps ``time.time()`` into
operational metadata that is never replayed into placement state.
Inline ``# repro: noqa`` is banned tree-wide (the shipped tree must
carry no ad-hoc suppressions), so those exceptions live in one
committed file, ``LINT_BASELINE.json``, where each entry carries its
own justification and is reviewed like code:

```json
{
  "version": 1,
  "entries": [
    {
      "rule": "determinism",
      "path": "src/repro/service/daemon.py",
      "code": "record = {\\"ts\\": time.time(), **record}",
      "justification": "journal ts is operational metadata, never replayed"
    }
  ]
}
```

Matching is by ``(rule, repo-relative path suffix, stripped anchor
line)`` — stable across line drift, invalidated the moment the flagged
code changes.  Entries without a non-empty justification fail loading;
entries that no longer match anything are reported as stale so the
baseline can only shrink silently, never grow.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.engine import Violation

__all__ = ["Baseline", "BaselineEntry", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "LINT_BASELINE.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One intentional finding, justified in-file."""

    rule: str
    path: str            # repo-relative, "/"-separated
    code: str            # stripped source text of the anchor line
    justification: str

    def matches(self, violation: Violation) -> bool:
        if violation.rule != self.rule or violation.code != self.code:
            return False
        norm = violation.path.replace(os.sep, "/")
        return norm == self.path or norm.endswith("/" + self.path)


class Baseline:
    """A loaded baseline file plus match bookkeeping."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Parse + validate a baseline file (ValueError on bad entries)."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: baseline must be an object with 'entries'")
        entries: List[BaselineEntry] = []
        for i, raw in enumerate(payload["entries"]):
            missing = {"rule", "path", "code", "justification"} - set(raw)
            if missing:
                raise ValueError(
                    f"{path}: entry {i} missing {', '.join(sorted(missing))}"
                )
            if not str(raw["justification"]).strip():
                raise ValueError(
                    f"{path}: entry {i} ({raw['rule']} @ {raw['path']}) has an "
                    "empty justification — every baselined finding must say why"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    code=str(raw["code"]),
                    justification=str(raw["justification"]),
                )
            )
        return cls(entries)

    def partition(
        self, violations: Iterable[Violation]
    ) -> Tuple[List[Violation], List[Violation], List[BaselineEntry]]:
        """Split into (new, baselined, stale baseline entries)."""
        new: List[Violation] = []
        suppressed: List[Violation] = []
        used = [False] * len(self.entries)
        for violation in violations:
            hit = None
            for i, entry in enumerate(self.entries):
                if entry.matches(violation):
                    hit = i
                    break
            if hit is None:
                new.append(violation)
            else:
                used[hit] = True
                suppressed.append(violation)
        stale = [e for e, u in zip(self.entries, used) if not u]
        return new, suppressed, stale
