"""Determinism taint analysis for hash/journal/checkpoint/fork flows.

The repo's bit-identity story (DESIGN §9, §12) rests on three hard
rules: content hashes are pure functions of the job spec, every random
draw comes from an explicitly-seeded stream (``np.random.default_rng([
seed, TAG, ...])`` or ``random.Random(key)``), and nothing
iteration-order-unstable feeds serialized state.  This pass enforces
them statically:

* **sinks** — arguments of ``hashlib`` constructors and hash-object
  ``.update(...)`` calls, ``ForkSpec(...)`` construction,
  ``write_snapshot(...)`` checkpoint spills, and journal writes
  (``self._journal(...)``); plus the *bodies* of functions that
  implement those flows (``content_hash``, ``design_digest``,
  ``design_key``, ``_journal``, ``write_snapshot``, …);
* **sources** — wall-clock reads (``time.time``/``perf_counter``/…),
  ``random.*`` module-state draws, unseeded ``random.Random()`` /
  ``np.random.default_rng()``, legacy ``np.random.*`` global-state
  calls, ``os.urandom``, ``uuid.uuid1/4``, ``id()``, the
  ``PYTHONHASHSEED``-dependent ``hash()`` builtin, and unordered
  ``set``/``frozenset`` values (``dict`` iteration is insertion-ordered
  in Python ≥ 3.7 and therefore exempt);
* **taint** — propagated intraprocedurally through assignments to a
  fixpoint; ``sorted(...)`` launders the *unordered* taint (that is
  exactly the sanctioned fix) but never the nondeterminism taint.

Seeded streams are recognized and allowed: ``random.Random(key)`` and
``np.random.default_rng([...])`` with arguments are the seed-stream
API, not sources.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import SemanticRule, Violation
from repro.analysis.model import FunctionInfo, ModuleModel

__all__ = ["DeterminismRule"]

NONDET = "nondeterministic"
UNORDERED = "unordered"

_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
}
_HASHLIB_FNS = {"sha256", "sha224", "sha1", "sha512", "md5", "blake2b", "blake2s", "new"}
_RANDOM_OK = {"Random", "SystemRandom", "seed", "getstate", "setstate"}
_NUMPY_ALIASES = {"np", "numpy"}

#: Functions whose *bodies* are a determinism flow: everything computed
#: here ends up in a content hash, journal record, or checkpoint spill.
_SINK_DEFS = {
    "content_hash", "design_digest", "design_key",
    "_journal", "_journal_locked", "write_snapshot", "_flatten_snapshot",
}

#: Callees whose arguments enter a determinism flow.
_SINK_CALLS = {"ForkSpec", "write_snapshot", "_journal", "_journal_locked"}


def _call_parts(call: ast.Call) -> Tuple[Optional[str], Optional[str]]:
    """(receiver name, func name) — receiver None for bare-name calls."""
    func = call.func
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            return func.value.id, func.attr
        # np.random.<fn>(...)
        if (
            isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in _NUMPY_ALIASES
            and func.value.attr == "random"
        ):
            return "np.random", func.attr
        return None, func.attr
    return None, None


def _source_kind(node: ast.expr) -> Optional[Tuple[str, str]]:
    """(taint kind, label) when ``node`` is a nondeterminism source."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return UNORDERED, "set literal"
    if not isinstance(node, ast.Call):
        return None
    recv, name = _call_parts(node)
    if recv == "time" and name in _TIME_FNS:
        return NONDET, f"time.{name}()"
    if recv == "datetime" and name in ("now", "utcnow", "today"):
        return NONDET, f"datetime.{name}()"
    if recv == "os" and name == "urandom":
        return NONDET, "os.urandom()"
    if recv == "uuid" and name in ("uuid1", "uuid4"):
        return NONDET, f"uuid.{name}()"
    if recv == "random":
        if name == "Random" and not node.args and not node.keywords:
            return NONDET, "unseeded random.Random()"
        if name not in _RANDOM_OK:
            return NONDET, f"module-state random.{name}()"
    if recv == "np.random":
        if name == "default_rng":
            if not node.args and not node.keywords:
                return NONDET, "unseeded np.random.default_rng()"
        elif name != "Generator":
            return NONDET, f"global-state np.random.{name}()"
    if recv is None and name == "id":
        return NONDET, "id() (address-dependent)"
    if recv is None and name == "hash":
        return NONDET, "hash() builtin (PYTHONHASHSEED-dependent)"
    if recv is None and name in ("set", "frozenset"):
        return UNORDERED, f"{name}(...)"
    return None


class _FunctionTaint:
    """Flow-insensitive taint over one function's local names."""

    def __init__(self, func: FunctionInfo) -> None:
        self.func = func
        self.taint: Dict[str, Set[str]] = {}
        self.hash_objects: Set[str] = set()
        self._assignments: List[Tuple[List[str], ast.expr]] = []
        self._collect()
        self._propagate()

    def _collect(self) -> None:
        for node in ast.walk(self.func.node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], node.iter
            if value is None:
                continue
            names = [
                t.id for t in ast.walk(ast.Tuple(elts=targets, ctx=ast.Store()))
                if isinstance(t, ast.Name)
            ]
            if not names:
                continue
            self._assignments.append((names, value))
            if isinstance(value, ast.Call):
                recv, fname = _call_parts(value)
                if recv == "hashlib" and fname in _HASHLIB_FNS:
                    self.hash_objects.update(names)

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for names, value in self._assignments:
                kinds = self.expr_taint(value)
                for name in names:
                    have = self.taint.setdefault(name, set())
                    if not kinds <= have:
                        have.update(kinds)
                        changed = True

    def expr_taint(self, expr: ast.expr) -> Set[str]:
        """Taint kinds carried by ``expr`` (sources + tainted names).

        ``sorted(...)`` launders the *unordered* kind — a sorted set is
        deterministic — but passes nondeterminism taint through.
        """
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted"
        ):
            kinds: Set[str] = set()
            for arg in expr.args:
                kinds |= self.expr_taint(arg)
            for kw in expr.keywords:
                kinds |= self.expr_taint(kw.value)
            kinds.discard(UNORDERED)
            return kinds
        kinds = set()
        found = _source_kind(expr)
        if found is not None:
            kinds.add(found[0])
        if isinstance(expr, ast.Name) and isinstance(expr.ctx, ast.Load):
            kinds |= self.taint.get(expr.id, set())
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                kinds |= self.expr_taint(child)
            elif isinstance(child, ast.comprehension):
                kinds |= self.expr_taint(child.iter)
        return kinds


class DeterminismRule(SemanticRule):
    name = "determinism"
    description = (
        "no wall-clock, module-state RNG, or unordered-iteration values "
        "in content-hash/journal/checkpoint/ForkSpec flows (seed-stream "
        "RNG and sorted() iteration are the sanctioned APIs)"
    )
    severity = "error"

    def check_model(
        self, model: ModuleModel, path: str, source: str
    ) -> Iterator[Violation]:
        for func in model.functions.values():
            yield from self._check_function(func, path)

    def _check_function(self, func: FunctionInfo, path: str) -> Iterator[Violation]:
        taint = _FunctionTaint(func)
        is_sink_def = func.name in _SINK_DEFS
        flagged: Set[int] = set()
        sink_calls = [
            node for node in ast.walk(func.node)
            if isinstance(node, ast.Call) and self._is_sink(node, taint)
        ]
        for call in sink_calls:
            sink_label = self._sink_label(call)
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                yield from self._flag_expr(
                    taint, arg, sink_label, path, flagged
                )
        if is_sink_def:
            for node in ast.walk(func.node):
                if id(node) in flagged or not isinstance(node, ast.expr):
                    continue
                found = _source_kind(node)
                if found is not None:
                    kind, label = found
                    flagged.add(id(node))
                    yield self.violation(
                        path,
                        node,
                        f"{label} inside {func.qualname}(), a hash/journal/"
                        "spill flow; derive the value deterministically or "
                        "baseline with an in-file justification",
                    )
        # Unordered iteration in a function that feeds a sink.
        if sink_calls or is_sink_def:
            for node in ast.walk(func.node):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    kinds = taint.expr_taint(node.iter)
                    if UNORDERED in kinds and id(node.iter) not in flagged:
                        flagged.add(id(node.iter))
                        yield self.violation(
                            path,
                            node,
                            f"iteration over an unordered set value in "
                            f"{func.qualname}(), which feeds a determinism "
                            "flow; wrap in sorted()",
                        )

    def _flag_expr(
        self,
        taint: _FunctionTaint,
        expr: ast.expr,
        sink_label: str,
        path: str,
        flagged: Set[int],
    ) -> Iterator[Violation]:
        for node in ast.walk(expr):
            found = _source_kind(node)
            if found is not None and id(node) not in flagged:
                kind, label = found
                flagged.add(id(node))
                yield self.violation(
                    path,
                    node,
                    f"{label} flows into {sink_label}; use the seed-stream "
                    "API / a deterministic value (or sorted() for "
                    "iteration-order taint)",
                )
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and taint.taint.get(node.id)
                and id(node) not in flagged
            ):
                flagged.add(id(node))
                kinds = ", ".join(sorted(taint.taint[node.id]))
                yield self.violation(
                    path,
                    node,
                    f"{node.id!r} carries {kinds} taint into {sink_label}; "
                    "derive it from the job spec / seed stream instead",
                )

    @staticmethod
    def _is_sink(call: ast.Call, taint: _FunctionTaint) -> bool:
        recv, name = _call_parts(call)
        if recv == "hashlib" and name in _HASHLIB_FNS:
            return True
        if name == "update" and recv in taint.hash_objects:
            return True
        return name in _SINK_CALLS

    @staticmethod
    def _sink_label(call: ast.Call) -> str:
        recv, name = _call_parts(call)
        if recv == "hashlib" or name == "update":
            return "a content hash"
        if name == "ForkSpec":
            return "ForkSpec construction"
        if name == "write_snapshot":
            return "a checkpoint spill"
        return "a journal record"
