"""Pluggable AST lint engine enforcing repo-specific invariants.

The engine is deliberately small: a :class:`Rule` walks one parsed
module and yields :class:`Violation`\\ s; the :class:`LintEngine`
discovers files, decides which rules apply to which paths (via
:class:`LintConfig`), honours inline ``# repro: noqa[rule]``
suppressions, and renders text or JSON reports with stable exit codes
(0 clean, 1 violations, 2 usage error).

Scoping
-------
Rules that encode *kernel* discipline (vectorisation, dtype policy) set
``kernel_only = True`` and run only on paths matching
``LintConfig.kernel_globs`` — by default the density, wirelength,
autograd and optim subpackages, the modules whose per-op dispatch cost
is the CPU analogue of CUDA launch overhead (paper Table 3).
``LintConfig.per_path`` carves out documented exemptions (e.g. the
autograd tape walker iterates *graph nodes*, bounded by op arity, not
array elements — see :data:`DEFAULT_PER_PATH`).
"""

from __future__ import annotations

import ast
import fnmatch
import json
import os
import re
import subprocess
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "Rule",
    "SemanticRule",
    "LintConfig",
    "LintEngine",
    "changed_files",
    "render_text",
    "render_json",
    "EXIT_CLEAN",
    "EXIT_VIOLATIONS",
    "EXIT_USAGE",
]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

#: Path globs (matched against ``/``-separated paths) that count as
#: kernel modules for ``kernel_only`` rules.
DEFAULT_KERNEL_GLOBS: Tuple[str, ...] = (
    "*/density/*.py",
    "*/wirelength/*.py",
    "*/autograd/*.py",
    "*/optim/*.py",
)

#: Documented per-path exemptions: (glob, disabled rule names, why).
#: The tape walker (tensor.py) iterates recorded graph nodes — trip
#: count is bounded by op arity, not by array length — so lockstep-zip
#: iteration there is not a per-element scalar loop.
DEFAULT_PER_PATH: Tuple[Tuple[str, Tuple[str, ...], str], ...] = (
    (
        "*/autograd/tensor.py",
        ("hot-loop-scalar-iteration",),
        "tape walker iterates graph nodes (bounded by op arity), not array elements",
    ),
)

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[^\]]*)\])?")


@dataclass(frozen=True)
class Violation:
    """One rule breach at a source location.

    ``severity`` is the reporting tier declared by the rule ("error" or
    "warning"); the exit code treats both the same — severity exists so
    reports and the CI gate can rank findings, not to soften them.
    ``code`` is the stripped source text of the anchor line, the stable
    key baseline entries match on (line numbers drift, code rarely
    does).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"
    code: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "code": self.code,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``name``/``description`` and implement :meth:`check`
    as a generator of :class:`Violation`\\ s over one parsed module.
    ``kernel_only`` restricts the rule to kernel-module paths.
    """

    name: str = ""
    description: str = ""
    kernel_only: bool = False
    severity: str = "error"

    def check(
        self, tree: ast.Module, path: str, source: str
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


class SemanticRule(Rule):
    """A rule that runs over the shared per-module semantic model.

    The engine builds one :class:`repro.analysis.model.ModuleModel` per
    file and hands it to every semantic rule, so the symbol table, CFGs
    and call graph are computed once per run no matter how many passes
    consume them.  Calling :meth:`check` directly (tests, ad-hoc use)
    builds a private model.
    """

    def check(
        self, tree: ast.Module, path: str, source: str
    ) -> Iterator[Violation]:
        from repro.analysis.model import build_model

        return self.check_model(build_model(tree, path, source), path, source)

    def check_model(
        self, model: "object", path: str, source: str
    ) -> Iterator[Violation]:
        raise NotImplementedError


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where.

    ``select`` (when given) whitelists rule names; ``ignore`` always
    subtracts.  ``per_path`` maps path globs to rules disabled there —
    the mechanism for documented infrastructure exemptions, distinct
    from inline ``noqa`` suppressions.
    """

    select: Optional[frozenset] = None
    ignore: frozenset = frozenset()
    kernel_globs: Tuple[str, ...] = DEFAULT_KERNEL_GLOBS
    per_path: Tuple[Tuple[str, Tuple[str, ...], str], ...] = DEFAULT_PER_PATH

    def validate(self, known: Set[str]) -> None:
        """Raise ValueError on rule names that do not exist."""
        requested = set(self.select or ()) | set(self.ignore)
        unknown = requested - known
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(sorted(known))}"
            )

    def enabled_for(self, rule: Rule, path: str) -> bool:
        norm = _normalize(path)
        if self.select is not None and rule.name not in self.select:
            return False
        if rule.name in self.ignore:
            return False
        if rule.kernel_only and not any(
            fnmatch.fnmatch(norm, glob) for glob in self.kernel_globs
        ):
            return False
        for glob, disabled, _why in self.per_path:
            if rule.name in disabled and fnmatch.fnmatch(norm, glob):
                return False
        return True


def _normalize(path: str) -> str:
    norm = path.replace(os.sep, "/")
    return norm if norm.startswith(("/", "*")) else "/" + norm


def _suppressions(
    source: str, tree: Optional[ast.Module] = None
) -> Dict[int, Optional[Set[str]]]:
    """Map line number → suppressed rule names (None = all rules).

    A ``# repro: noqa[...]`` comment suppresses its whole *statement
    span*, not just the literal line it sits on: a suppression on a
    decorator covers the decorated ``def``/``class`` header, and one on
    any line of a multi-line statement covers the full statement.  For
    compound statements the span is the header (decorators through the
    line before the first body statement) — a noqa on a ``def`` line
    must not blanket the entire function body.
    """
    table: Dict[int, Optional[Set[str]]] = {}

    def _merge(lineno: int, mask: Optional[Set[str]]) -> None:
        if lineno in table and table[lineno] is None:
            return
        if mask is None:
            table[lineno] = None
        else:
            table.setdefault(lineno, set()).update(mask)  # type: ignore[union-attr]

    raw: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            raw[lineno] = None
        else:
            raw[lineno] = {r.strip() for r in rules.split(",") if r.strip()}

    spans = _statement_spans(tree) if (raw and tree is not None) else []
    for lineno, mask in raw.items():
        start, end = lineno, lineno
        covering = [
            (s, e) for s, e in spans if s <= lineno <= e
        ]
        if covering:
            # Innermost covering statement: the narrowest span.
            start, end = min(covering, key=lambda span: span[1] - span[0])
        for covered in range(start, end + 1):
            _merge(covered, mask)
    return table


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(start, end) line spans suppressions expand over.

    Simple statements span their full extent; compound statements span
    their header only (decorators included, body excluded).
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            start = min(start, min(d.lineno for d in decorators))
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = body[0].lineno - 1
        else:
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
        if end >= start:
            spans.append((start, end))
    return spans


class LintEngine:
    """Runs a rule set over files/directories and collects violations."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        config: Optional[LintConfig] = None,
    ) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)
        self.config = config or LintConfig()
        self.config.validate({r.name for r in self.rules})

    # ------------------------------------------------------------------
    def lint_paths(self, paths: Iterable[str]) -> List[Violation]:
        violations: List[Violation] = []
        for path in self._discover(paths):
            violations.extend(self.lint_file(path))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return violations

    def lint_file(self, path: str) -> List[Violation]:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        return self.lint_source(source, path)

    def lint_source(self, source: str, path: str = "<string>") -> List[Violation]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as err:
            return [
                Violation(
                    path=path,
                    line=err.lineno or 0,
                    col=(err.offset or 0),
                    rule="parse-error",
                    message=f"could not parse: {err.msg}",
                )
            ]
        suppressed = _suppressions(source, tree)
        lines = source.splitlines()
        model = None
        out: List[Violation] = []
        for rule in self.rules:
            if not self.config.enabled_for(rule, path):
                continue
            if isinstance(rule, SemanticRule):
                if model is None:
                    from repro.analysis.model import build_model

                    model = build_model(tree, path, source)
                found = rule.check_model(model, path, source)
            else:
                found = rule.check(tree, path, source)
            for violation in found:
                mask = suppressed.get(violation.line, "unset")
                if mask is None:  # bare noqa: every rule
                    continue
                if isinstance(mask, set) and violation.rule in mask:
                    continue
                if 1 <= violation.line <= len(lines):
                    violation = replace(
                        violation, code=lines[violation.line - 1].strip()
                    )
                out.append(violation)
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _discover(paths: Iterable[str]) -> Iterator[str]:
        for path in paths:
            if os.path.isdir(path):
                for root, dirs, files in os.walk(path):
                    dirs[:] = sorted(
                        d for d in dirs
                        if not d.startswith(".") and d != "__pycache__"
                    )
                    for name in sorted(files):
                        if name.endswith(".py"):
                            yield os.path.join(root, name)
            elif path.endswith(".py") or os.path.isfile(path):
                yield path
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")


# ----------------------------------------------------------------------
# Git-diff scoping (``repro lint --changed``)
# ----------------------------------------------------------------------
def changed_files(ref: str = "HEAD", cwd: Optional[str] = None) -> Set[str]:
    """Absolute paths of ``.py`` files changed relative to ``ref``.

    Includes committed, staged, and working-tree changes (``git diff
    --name-only <ref>``) plus untracked files, so the fast gate sees
    exactly what the PR adds.  Raises ``RuntimeError`` when git is
    unavailable or ``ref`` does not resolve.
    """
    base = cwd or os.getcwd()
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=base, capture_output=True, text=True, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", ref, "--"],
            cwd=base, capture_output=True, text=True, check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=base, capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as err:
        detail = getattr(err, "stderr", "") or str(err)
        raise RuntimeError(f"git diff against {ref!r} failed: {detail.strip()}")
    out: Set[str] = set()
    for name in (diff + untracked).splitlines():
        if name.endswith(".py"):
            out.add(os.path.abspath(os.path.join(top, name)))
    return out


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(
    violations: Sequence[Violation],
    baselined: int = 0,
    stale_baseline: Sequence[object] = (),
) -> str:
    """One line per violation plus a summary line."""
    lines = [v.format() for v in violations]
    if violations:
        by_rule: Dict[str, int] = {}
        for v in violations:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
        breakdown = ", ".join(f"{name}: {n}" for name, n in sorted(by_rule.items()))
        lines.append(f"{len(violations)} violation(s) ({breakdown})")
    else:
        lines.append("clean: no violations")
    if baselined:
        lines.append(f"{baselined} baselined finding(s) suppressed")
    for entry in stale_baseline:
        lines.append(
            f"warning: stale baseline entry matched nothing: "
            f"{getattr(entry, 'path', '?')} [{getattr(entry, 'rule', '?')}]"
        )
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    baselined: int = 0,
    stale_baseline: Sequence[object] = (),
) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps(
        {
            "count": len(violations),
            "violations": [v.to_dict() for v in violations],
            "baselined": baselined,
            "stale_baseline_entries": [
                {
                    "path": getattr(entry, "path", ""),
                    "rule": getattr(entry, "rule", ""),
                    "code": getattr(entry, "code", ""),
                }
                for entry in stale_baseline
            ],
        },
        indent=2,
        sort_keys=True,
    )
