"""Resource-lifetime analysis: every handle released on every path.

The warm-worker layer hands ``multiprocessing.shared_memory`` segments
across processes, the checkpoint/cache layers spill through file
handles, and the service daemon owns sockets.  A segment that is
created but not ``close()``d + ``unlink()``ed on an exception path
leaks named shared memory until reboot — the classic failure mode this
pass exists to catch.

Two checks:

* **anonymous handle** — a resource constructor used directly as an
  argument to another call (``np.save(open(path, "wb"), ...)``) can
  never be explicitly released; the fix is always a ``with`` block.
* **leak path** — a resource bound to a local name must, on *every*
  CFG path from the acquisition to a function exit (normal or
  exceptional), reach either a release (``close``/``unlink``/
  ``shutdown``/``terminate``/``os.close``) or an ownership transfer
  (returned/yielded, stored into an attribute/container, or passed
  whole to another call such as ``segments.append(shm)``).  Exception
  edges are part of the CFG, so "a later statement raised before the
  ``close`` line" counts as a path.

``with``-acquired resources are safe by construction and never
flagged.  The acquisition statement's own exception edge is excluded:
if the constructor itself raises there is nothing to release.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import SemanticRule, Violation
from repro.analysis.model import FunctionInfo, ModuleModel

__all__ = ["ResourceLifetimeRule"]

_RELEASERS = {"close", "unlink", "shutdown", "terminate", "release", "server_close"}


def _resource_label(call: ast.Call) -> Optional[str]:
    """Label when ``call`` constructs a tracked resource."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "file handle from open()"
        if func.id == "SharedMemory":
            return "SharedMemory segment"
        return None
    if isinstance(func, ast.Attribute):
        if func.attr == "SharedMemory":
            return "SharedMemory segment"
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "socket"
            and func.attr in ("socket", "create_connection")
        ):
            return "socket"
    return None


class ResourceLifetimeRule(SemanticRule):
    name = "resource-lifetime"
    description = (
        "SharedMemory segments, file handles, and sockets must be "
        "released (close/unlink/shutdown) or ownership-transferred on "
        "all normal and exception paths; use with blocks for locals"
    )
    severity = "error"

    def check_model(
        self, model: ModuleModel, path: str, source: str
    ) -> Iterator[Violation]:
        for func in model.functions.values():
            yield from self._check_anonymous(func, path)
            yield from self._check_leak_paths(func, path)

    # -- anonymous handles --------------------------------------------
    def _check_anonymous(self, func: FunctionInfo, path: str) -> Iterator[Violation]:
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Call):
                    label = _resource_label(arg)
                    if label is not None:
                        callee = self._callee_text(node)
                        yield self.violation(
                            path,
                            arg,
                            f"anonymous {label} passed to {callee} can "
                            "never be explicitly released; bind it in a "
                            "with block",
                        )

    @staticmethod
    def _callee_text(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            return f"{func.id}()"
        if isinstance(func, ast.Attribute):
            return f"{func.attr}()"
        return "a call"

    # -- leak-path analysis -------------------------------------------
    def _check_leak_paths(self, func: FunctionInfo, path: str) -> Iterator[Violation]:
        acquisitions = self._acquisitions(func)
        if not acquisitions:
            return
        cfg = func.cfg
        for stmt, name, label in acquisitions:
            node = cfg.node_of(stmt)
            if node is None:
                continue
            blocked = [
                n.id for n in cfg.nodes
                if n.stmt is not None and n.id != node.id
                and self._ends_ownership(n.stmt, name)
            ]
            leak = cfg.reachable_exit(node.succs, blocked)
            if leak is not None:
                how = (
                    "when an exception unwinds past it"
                    if leak == "raise-exit" else "on a normal path"
                )
                yield self.violation(
                    path,
                    stmt,
                    f"{label} bound to {name!r} may leak {how}: no "
                    "close/unlink/ownership transfer on every path; "
                    "release it in a finally/except or use with",
                )

    @staticmethod
    def _acquisitions(
        func: FunctionInfo,
    ) -> List[Tuple[ast.stmt, str, str]]:
        """(stmt, local name, label) for resources bound to locals.

        Only statements of the function body proper — acquisitions
        inside nested defs have their own frame and are analyzed when
        that def is a module/class symbol.
        """
        out: List[Tuple[ast.stmt, str, str]] = []
        for stmt in ast.walk(func.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue  # attribute/container stores transfer ownership
            values = [stmt.value]
            if isinstance(stmt.value, ast.IfExp):
                values = [stmt.value.body, stmt.value.orelse]
            for value in values:
                if isinstance(value, ast.Call):
                    label = _resource_label(value)
                    if label is not None:
                        out.append((stmt, target.id, label))
                        break
        return out

    @staticmethod
    def _ends_ownership(stmt: ast.AST, name: str) -> bool:
        """Does ``stmt`` release or transfer ownership of ``name``?

        Compound-statement CFG nodes stand for their *headers* only
        (their bodies are separate nodes), so only the header
        expressions are inspected here.
        """
        if isinstance(stmt, (ast.ExceptHandler, ast.Try)):
            return False
        parts: List[ast.AST]
        if isinstance(stmt, (ast.If, ast.While)):
            parts = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            parts = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            # ``with x:`` hands the handle to a context manager that
            # releases it.
            for item in stmt.items:
                if (
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id == name
                ):
                    return True
            parts = [item.context_expr for item in stmt.items]
        else:
            parts = [stmt]
        mentions = any(
            isinstance(n, ast.Name) and n.id == name
            for part in parts
            for n in ast.walk(part)
        )
        if not mentions:
            return False
        if isinstance(stmt, (ast.Return, ast.Expr)) and isinstance(
            getattr(stmt, "value", None), (ast.Yield, ast.YieldFrom)
        ):
            return True
        if isinstance(stmt, ast.Return):
            return True
        for part in parts:
            for node in ast.walk(part):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                # x.close() / x.unlink() / os.close(x)
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _RELEASERS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                ):
                    return True
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "close"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                ):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id == name:
                            return True
                # whole-handle transfer: f(x) / c.append(x) / dict store
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True   # stored into an object/container
                if isinstance(target, ast.Name) and target.id != name:
                    # plain alias y = x: ownership follows the alias
                    if (
                        isinstance(stmt.value, ast.Name)
                        and stmt.value.id == name
                    ):
                        return True
        return False
