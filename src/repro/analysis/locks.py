"""Lock-discipline and lock-order analysis for threaded service classes.

``lock-discipline``
    For every class that creates a ``threading.Lock``/``RLock``/
    ``Condition`` in a ``self._*`` attribute, infer which *other*
    ``self._*`` attributes that lock guards — an attribute is guarded
    when at least one write (assignment, augmented assignment, ``del``,
    or a mutating method call like ``.append``/``.pop``) happens inside
    ``with self.<lock>:`` outside ``__init__`` — then flag every read
    or write of a guarded attribute on a path that does not hold the
    guard.  A private helper that is only ever called with the lock
    already held (proved through the module call graph, to a fixpoint)
    inherits the held set at entry, so ``Scheduler._resolve``-style
    internal methods do not need redundant ``with`` blocks.

``lock-order``
    Tracks the order in which one class's locks are acquired, including
    through ``self.method(...)`` dispatch, and flags any cycle in the
    acquisition graph (potential ABBA deadlock).

Both rules are self-scoping: classes without a lock attribute are never
analyzed, so single-threaded code stays out of scope by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import SemanticRule, Violation
from repro.analysis.model import ClassInfo, FunctionInfo, ModuleModel

__all__ = ["LockDisciplineRule", "LockOrderRule"]

#: Method calls on an attribute that mutate the receiver in place —
#: these count as writes for guard inference.
_MUTATORS = {
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popitem", "popleft", "remove", "setdefault",
    "update",
}

#: Methods whose body runs before/after the object is shared between
#: threads; accesses there are exempt from the discipline.
_EXEMPT_METHODS = {"__init__", "__del__", "__repr__"}


class _Access:
    """One read or write of ``self.<attr>`` inside a method."""

    __slots__ = ("attr", "write", "node", "held", "method")

    def __init__(self, attr, write, node, held, method):
        self.attr = attr
        self.write = write
        self.node = node
        self.held = held            # FrozenSet[str]: lexically-held locks
        self.method = method        # FunctionInfo


class _MethodFacts:
    """Lexical lock facts for one method of a lock-owning class."""

    def __init__(self) -> None:
        self.accesses: List[_Access] = []
        #: held-lock set at each intra-class ``self.m(...)`` call site.
        self.call_held: Dict[int, FrozenSet[str]] = {}
        #: (callee method name, held set) per intra-class call site.
        self.calls: List[Tuple[str, FrozenSet[str]]] = []
        #: locks this method itself acquires with ``with self.L:``.
        self.acquires: Set[str] = set()
        #: (outer, inner) lexically-nested acquisitions.
        self.order_edges: Set[Tuple[str, str]] = set()


class _MethodWalker:
    """Walks one method body tracking the lexically-held lock set."""

    def __init__(self, cls: ClassInfo, method: FunctionInfo) -> None:
        self.cls = cls
        self.method = method
        self.facts = _MethodFacts()
        self._held: List[str] = []
        for stmt in method.node.body:
            self._walk(stmt)

    def _lock_of(self, expr: ast.expr) -> Optional[str]:
        """Lock attr name when ``expr`` is ``self.<lock>``."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.cls.lock_attrs
        ):
            return expr.attr
        return None

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # deferred execution: lock context unknown at run time
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                self._visit_expr(item.context_expr)
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    for outer in self._held:
                        if outer != lock:
                            self.facts.order_edges.add((outer, lock))
                    self.facts.acquires.add(lock)
                    acquired.append(lock)
            self._held.extend(acquired)
            for stmt in node.body:
                self._walk(stmt)
            for _ in acquired:
                self._held.pop()
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._visit_target(target)
            self._visit_expr(node.value)
            return
        if isinstance(node, ast.AugAssign):
            self._visit_target(node.target)
            self._visit_expr(node.value)
            return
        if isinstance(node, ast.AnnAssign):
            self._visit_target(node.target)
            if node.value is not None:
                self._visit_expr(node.value)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._visit_target(target)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            else:
                self._walk(child)

    def _self_attr(self, expr: ast.expr) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _record(self, attr: str, write: bool, node: ast.AST) -> None:
        if attr in self.cls.lock_attrs or not attr.startswith("_"):
            return
        self.facts.accesses.append(
            _Access(attr, write, node, frozenset(self._held), self.method)
        )

    def _visit_target(self, target: ast.expr) -> None:
        """Assignment/delete target: ``self.X`` or ``self.X[...]`` is a
        write; anything nested inside is ordinary reads."""
        base = target
        if isinstance(base, ast.Subscript):
            self._visit_expr(base.slice)
            base = base.value
        attr = self._self_attr(base)
        if attr is not None:
            self._record(attr, True, base)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_target(elt)
            return
        self._visit_expr(target)

    def _visit_expr(self, expr: ast.AST) -> None:
        if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(expr, ast.Call):
            # self.m(...) intra-class dispatch: remember the held set.
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in self.cls.methods
            ):
                held = frozenset(self._held)
                self.facts.call_held[id(expr)] = held
                self.facts.calls.append((func.attr, held))
                for arg in expr.args:
                    self._visit_expr(arg)
                for kw in expr.keywords:
                    self._visit_expr(kw.value)
                return
            # self.X.append(...) mutator: a write to self.X.
            elif isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = self._self_attr(func.value)
                if attr is not None:
                    self._record(attr, True, func.value)
                    for arg in expr.args:
                        self._visit_expr(arg)
                    for kw in expr.keywords:
                        self._visit_expr(kw.value)
                    return
            for arg in expr.args:
                self._visit_expr(arg)
            for kw in expr.keywords:
                self._visit_expr(kw.value)
            self._visit_expr(expr.func)
            return
        attr = self._self_attr(expr)
        if attr is not None:
            self._record(attr, False, expr)
            return
        for child in ast.iter_child_nodes(expr):
            self._visit_expr(child)


class _ClassAnalysis:
    """Guard inference + held-at-entry fixpoint for one class."""

    def __init__(self, model: ModuleModel, cls: ClassInfo) -> None:
        self.cls = cls
        self.facts: Dict[str, _MethodFacts] = {
            name: _MethodWalker(cls, info).facts
            for name, info in cls.methods.items()
        }
        self.entry_held = self._fixpoint(model)
        self.guards = self._infer_guards()

    def _fixpoint(self, model: ModuleModel) -> Dict[str, FrozenSet[str]]:
        """Locks provably held whenever each method is entered.

        ``entry_held(m)`` is the intersection, over every intra-class
        ``self.m(...)`` call site, of the locks held at that site
        (lexically plus the caller's own entry set).  Methods with no
        intra-class callers are public entry points: nothing is held.
        """
        all_locks = frozenset(self.cls.lock_attrs)
        sites: Dict[str, List[Tuple[str, int]]] = {m: [] for m in self.facts}
        for name in self.facts:
            qual = f"{self.cls.name}.{name}"
            for caller_qual, call in model.call_sites.get(qual, ()):
                caller_cls, _, caller_name = caller_qual.rpartition(".")
                if caller_cls == self.cls.name and caller_name in self.facts:
                    sites[name].append((caller_name, id(call)))
        entry: Dict[str, FrozenSet[str]] = {
            m: (all_locks if sites[m] else frozenset()) for m in self.facts
        }
        changed = True
        while changed:
            changed = False
            for name, method_sites in sites.items():
                if not method_sites:
                    continue
                held = all_locks
                for caller_name, call_id in method_sites:
                    caller_facts = self.facts[caller_name]
                    at_site = caller_facts.call_held.get(call_id, frozenset())
                    held = held & (at_site | entry[caller_name])
                if held != entry[name]:
                    entry[name] = held
                    changed = True
        return entry

    def _infer_guards(self) -> Dict[str, FrozenSet[str]]:
        """attr → locks under which it is written at least once."""
        guards: Dict[str, Set[str]] = {}
        for name, facts in self.facts.items():
            if name in _EXEMPT_METHODS:
                continue
            for access in facts.accesses:
                if not access.write:
                    continue
                held = access.held | self.entry_held[name]
                if held:
                    guards.setdefault(access.attr, set()).update(held)
        return {attr: frozenset(locks) for attr, locks in guards.items()}

    def violations(self) -> Iterator[Tuple[_Access, FrozenSet[str]]]:
        for name, facts in self.facts.items():
            if name in _EXEMPT_METHODS:
                continue
            for access in facts.accesses:
                guard = self.guards.get(access.attr)
                if not guard:
                    continue
                held = access.held | self.entry_held[name]
                if not (held & guard):
                    yield access, guard


# ----------------------------------------------------------------------
class LockDisciplineRule(SemanticRule):
    name = "lock-discipline"
    description = (
        "attributes written under a threading lock must hold that lock "
        "on every read/write path (helpers proven held-at-entry via the "
        "call graph are fine)"
    )
    severity = "error"

    def check_model(
        self, model: ModuleModel, path: str, source: str
    ) -> Iterator[Violation]:
        for cls in model.classes.values():
            if not cls.lock_attrs:
                continue
            analysis = _ClassAnalysis(model, cls)
            for access, guard in analysis.violations():
                lock = "/".join(sorted(guard))
                kind = "written" if access.write else "read"
                yield self.violation(
                    path,
                    access.node,
                    f"{cls.name}.{access.method.name} {kind}s "
                    f"self.{access.attr} without holding self.{lock} "
                    f"(attribute is written under self.{lock} elsewhere); "
                    "take the lock or prove the caller holds it",
                )


# ----------------------------------------------------------------------
class LockOrderRule(SemanticRule):
    name = "lock-order"
    description = (
        "a class's locks must always be acquired in one global order "
        "(cycles in the acquisition graph are potential ABBA deadlocks)"
    )
    severity = "warning"

    def check_model(
        self, model: ModuleModel, path: str, source: str
    ) -> Iterator[Violation]:
        for cls in model.classes.values():
            if len(cls.lock_attrs) < 2:
                continue
            analysis = _ClassAnalysis(model, cls)
            edges = self._order_edges(model, cls, analysis)
            cycle = self._find_cycle(edges)
            if cycle:
                yield self.violation(
                    path,
                    cls.node,
                    f"{cls.name} acquires its locks in conflicting orders "
                    f"({' -> '.join(cycle)}); pick one global order to rule "
                    "out ABBA deadlocks",
                )

    @staticmethod
    def _order_edges(
        model: ModuleModel, cls: ClassInfo, analysis: _ClassAnalysis
    ) -> Set[Tuple[str, str]]:
        edges: Set[Tuple[str, str]] = set()
        # Transitive lock acquisitions per method (through self.m dispatch).
        acquires: Dict[str, Set[str]] = {
            name: set(facts.acquires) for name, facts in analysis.facts.items()
        }
        changed = True
        while changed:
            changed = False
            for name in acquires:
                qual = f"{cls.name}.{name}"
                for callee in model.call_graph.get(qual, ()):
                    callee_cls, _, callee_name = callee.rpartition(".")
                    if callee_cls == cls.name and callee_name in acquires:
                        merged = acquires[name] | acquires[callee_name]
                        if merged != acquires[name]:
                            acquires[name] = merged
                            changed = True
        for facts in analysis.facts.values():
            edges |= facts.order_edges
            # Calls made while holding a lock acquire the callee's locks.
            for callee_name, held in facts.calls:
                for outer in held:
                    for inner in acquires.get(callee_name, ()):
                        if outer != inner:
                            edges.add((outer, inner))
        return edges

    @staticmethod
    def _find_cycle(edges: Set[Tuple[str, str]]) -> Optional[List[str]]:
        graph: Dict[str, Set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
        state: Dict[str, int] = {}      # 0 visiting, 1 done
        path: List[str] = []

        def visit(node: str) -> Optional[List[str]]:
            state[node] = 0
            path.append(node)
            for succ in sorted(graph.get(node, ())):
                if state.get(succ) == 0:
                    return path[path.index(succ):] + [succ]
                if succ not in state:
                    found = visit(succ)
                    if found:
                        return found
            path.pop()
            state[node] = 1
            return None

        for node in sorted(graph):
            if node not in state:
                found = visit(node)
                if found:
                    return found
        return None
