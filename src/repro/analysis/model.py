"""Per-module semantic model shared by the dataflow lint passes.

The PR-3 rules are per-function and syntactic: each one walks the raw
AST and pattern-matches locally.  The concurrency/determinism contracts
the service era added (DESIGN §11–§12) are *flow* properties — "this
attribute is only touched while holding that lock", "this value never
reaches a content hash", "this shared-memory segment is released on
every path" — so the dataflow rules share one :class:`ModuleModel`
built once per file:

* a **symbol table** — module-level imports, functions, classes, and
  per-class method tables plus detected ``threading`` lock attributes;
* an **intraprocedural CFG** per function — statement-granularity
  nodes with separate normal and exception successors, covering
  ``if``/loops/``try``/``except``/``finally``/``with``/early
  ``return``/``raise``/``break``/``continue``.  ``finally`` blocks are
  over-approximated (their exits reach the fall-through continuation,
  the propagating-exception target, *and* the function exit) which is
  conservative for "does a bad path exist" queries;
* a **light call graph** — ``self.method(...)`` resolved within the
  enclosing class, bare names resolved to module-level functions —
  enough for the lock checker to prove that a private helper is only
  ever entered with the lock already held.

Everything is intraprocedural + single-module on purpose: the linted
invariants are module-local disciplines, and whole-program inference
would make the lint gate slow and the findings hard to explain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CFG",
    "CFGNode",
    "ClassInfo",
    "FunctionInfo",
    "ModuleModel",
    "build_model",
]

#: ``threading`` constructors that create a lock-like object whose
#: ``with`` block defines a critical section.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}


# ----------------------------------------------------------------------
# Control-flow graph
# ----------------------------------------------------------------------
@dataclass
class CFGNode:
    """One statement (or synthetic marker) in a function's CFG."""

    id: int
    kind: str                      # "entry"|"exit"|"raise-exit"|"stmt"|"except-dispatch"|"finally"
    stmt: Optional[ast.stmt] = None
    succs: List[int] = field(default_factory=list)
    #: Where control goes if this statement raises (None = cannot raise
    #: or the raise is modelled through ``succs`` already).
    exc: Optional[int] = None

    def out_edges(self) -> List[int]:
        return self.succs + ([self.exc] if self.exc is not None else [])


class CFG:
    """Statement-level control-flow graph of one function body.

    ``entry`` fans into the first statement; ``exit`` collects normal
    completion (fall-off and ``return``); ``raise_exit`` collects
    exceptions that escape the function.  ``node_of(stmt)`` maps a body
    statement back to its node.
    """

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new("entry").id
        self.exit = self._new("exit").id
        self.raise_exit = self._new("raise-exit").id
        self._by_stmt: Dict[int, int] = {}

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None) -> CFGNode:
        node = CFGNode(id=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        if stmt is not None:
            self._by_stmt[id(stmt)] = node.id
        return node

    def node_of(self, stmt: ast.stmt) -> Optional[CFGNode]:
        nid = self._by_stmt.get(id(stmt))
        return self.nodes[nid] if nid is not None else None

    def reachable_exit(
        self, start_ids: Sequence[int], blocked: Sequence[int] = ()
    ) -> Optional[str]:
        """First exit kind reachable from ``start_ids`` without passing
        through any node in ``blocked`` — ``"exit"``/``"raise-exit"``,
        or None when every path is blocked.  Exception edges count as
        paths: they model a statement raising mid-flight.
        """
        stop = set(blocked)
        seen: Set[int] = set()
        stack = [nid for nid in start_ids if nid not in stop]
        while stack:
            nid = stack.pop()
            if nid in seen or nid in stop:
                continue
            seen.add(nid)
            node = self.nodes[nid]
            if node.kind in ("exit", "raise-exit"):
                return node.kind
            stack.extend(node.out_edges())
        return None


@dataclass
class _Loop:
    header: int
    breaks: List[int] = field(default_factory=list)


class _CFGBuilder:
    """Builds a :class:`CFG` for one function definition."""

    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG()
        self.loops: List[_Loop] = []
        self.finally_stack: List[int] = []
        body = getattr(func, "body", [])
        frontier = self._build(body, [self.cfg.entry], self.cfg.raise_exit)
        self._link(frontier, self.cfg.exit)

    # -- wiring helpers ------------------------------------------------
    def _link(self, frontier: Sequence[int], target: int) -> None:
        for nid in frontier:
            node = self.cfg.nodes[nid]
            if target not in node.succs:
                node.succs.append(target)

    @staticmethod
    def _can_raise(node: ast.AST) -> bool:
        """Conservative: anything touching attributes, calls, subscripts
        or arithmetic may raise; bare names/constants may not."""
        for child in ast.walk(node):
            if isinstance(
                child,
                (ast.Call, ast.Attribute, ast.Subscript, ast.BinOp,
                 ast.Compare, ast.UnaryOp, ast.BoolOp, ast.Await),
            ):
                return True
        return False

    def _stmt_node(
        self, stmt: ast.stmt, frontier: Sequence[int], exc: int,
        raise_parts: Optional[Sequence[ast.AST]] = None,
    ) -> CFGNode:
        node = self.cfg._new("stmt", stmt)
        self._link(frontier, node.id)
        parts = raise_parts if raise_parts is not None else [stmt]
        if any(self._can_raise(p) for p in parts):
            node.exc = exc
        return node

    # -- recursive construction ---------------------------------------
    def _build(
        self, body: Sequence[ast.stmt], frontier: Sequence[int], exc: int
    ) -> List[int]:
        out = list(frontier)
        for stmt in body:
            out = self._build_stmt(stmt, out, exc)
            if not out:          # everything below is unreachable
                break
        return out

    def _build_stmt(
        self, stmt: ast.stmt, frontier: Sequence[int], exc: int
    ) -> List[int]:
        if isinstance(stmt, (ast.If,)):
            node = self._stmt_node(stmt, frontier, exc, [stmt.test])
            body_out = self._build(stmt.body, [node.id], exc)
            orelse_out = (
                self._build(stmt.orelse, [node.id], exc)
                if stmt.orelse else [node.id]
            )
            return body_out + orelse_out
        if isinstance(stmt, (ast.While,)):
            node = self._stmt_node(stmt, frontier, exc, [stmt.test])
            loop = _Loop(header=node.id)
            self.loops.append(loop)
            body_out = self._build(stmt.body, [node.id], exc)
            self.loops.pop()
            self._link(body_out, node.id)
            orelse_out = (
                self._build(stmt.orelse, [node.id], exc)
                if stmt.orelse else [node.id]
            )
            return orelse_out + loop.breaks
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            node = self._stmt_node(stmt, frontier, exc, [stmt.iter, stmt.target])
            loop = _Loop(header=node.id)
            self.loops.append(loop)
            body_out = self._build(stmt.body, [node.id], exc)
            self.loops.pop()
            self._link(body_out, node.id)
            orelse_out = (
                self._build(stmt.orelse, [node.id], exc)
                if stmt.orelse else [node.id]
            )
            return orelse_out + loop.breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            parts: List[ast.AST] = [item.context_expr for item in stmt.items]
            node = self._stmt_node(stmt, frontier, exc, parts)
            return self._build(stmt.body, [node.id], exc)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier, exc)
        if isinstance(stmt, ast.Return):
            node = self._stmt_node(stmt, frontier, exc, [stmt.value] if stmt.value else [])
            target = self.finally_stack[-1] if self.finally_stack else self.cfg.exit
            node.succs.append(target)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node(stmt, frontier, exc, [])
            node.succs.append(exc)
            return []
        if isinstance(stmt, ast.Break):
            node = self._stmt_node(stmt, frontier, exc, [])
            if self.loops:
                self.loops[-1].breaks.append(node.id)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._stmt_node(stmt, frontier, exc, [])
            if self.loops:
                node.succs.append(self.loops[-1].header)
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions execute later; opaque here.
            node = self._stmt_node(stmt, frontier, exc, [])
            return [node.id]
        # Simple statement (Assign, Expr, Assert, Delete, ...).
        node = self._stmt_node(stmt, frontier, exc)
        if isinstance(stmt, ast.Assert):
            node.exc = exc
        return [node.id]

    def _build_try(
        self, stmt: ast.Try, frontier: Sequence[int], exc: int
    ) -> List[int]:
        outer_exc = exc
        fin_entry: Optional[int] = None
        fin_out: List[int] = []
        if stmt.finalbody:
            fin_node = self.cfg._new("finally", stmt)
            fin_entry = fin_node.id
            fin_out = self._build(stmt.finalbody, [fin_entry], outer_exc)
            # Over-approximate: after the finally body, control may
            # fall through, propagate the in-flight exception, or
            # complete an early return.
            self._link(fin_out, outer_exc)
            self._link(fin_out, self.cfg.exit)

        propagate = fin_entry if fin_entry is not None else outer_exc

        if stmt.handlers:
            dispatch = self.cfg._new("except-dispatch", stmt)
            body_exc = dispatch.id
        else:
            dispatch = None
            body_exc = propagate

        if fin_entry is not None:
            self.finally_stack.append(fin_entry)
        body_out = self._build(stmt.body, list(frontier), body_exc)
        orelse_out = (
            self._build(stmt.orelse, body_out, body_exc)
            if stmt.orelse else body_out
        )

        handler_outs: List[int] = []
        if dispatch is not None:
            # An unmatched exception propagates past every handler.
            dispatch.succs.append(propagate)
            for handler in stmt.handlers:
                h_node = self.cfg._new("stmt", handler)
                dispatch.succs.append(h_node.id)
                handler_outs.extend(
                    self._build(handler.body, [h_node.id], propagate)
                )
        if fin_entry is not None:
            self.finally_stack.pop()

        normal_out = orelse_out + handler_outs
        if fin_entry is not None:
            self._link(normal_out, fin_entry)
            return list(fin_out)
        return normal_out


# ----------------------------------------------------------------------
# Symbols
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str                  # "func" or "Class.method"
    node: ast.AST                  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    _cfg: Optional[CFG] = None

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = _CFGBuilder(self.node).cfg
        return self._cfg


@dataclass
class ClassInfo:
    """One class definition with its method table and lock attributes."""

    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` assigned a ``threading.Lock/RLock/Condition`` in
    #: any method (attr name → factory name).
    lock_attrs: Dict[str, str] = field(default_factory=dict)


class ModuleModel:
    """Symbol table + lazy CFGs + call graph for one parsed module."""

    def __init__(self, tree: ast.Module, path: str, source: str) -> None:
        self.tree = tree
        self.path = path
        self.source = source
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._collect_symbols()
        #: caller qualname → set of resolved callee qualnames.
        self.call_graph: Dict[str, Set[str]] = {}
        #: callee qualname → [(caller qualname, Call node), ...]
        self.call_sites: Dict[str, List[Tuple[str, ast.Call]]] = {}
        self._collect_calls()

    # -- construction --------------------------------------------------
    def _collect_symbols(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    module = stmt.module or ""
                    self.imports[alias.asname or alias.name] = (
                        f"{module}.{alias.name}" if module else alias.name
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(stmt.name, stmt.name, stmt)
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(stmt.name, stmt)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            sub.name, f"{stmt.name}.{sub.name}", sub, stmt.name
                        )
                        cls.methods[sub.name] = info
                        self.functions[info.qualname] = info
                self._detect_locks(cls)
                self.classes[stmt.name] = cls

    def _detect_locks(self, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                factory = self._lock_factory(node.value)
                if factory is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.lock_attrs[target.attr] = factory

    def _lock_factory(self, value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LOCK_FACTORIES
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        ):
            return func.attr
        if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
            imported = self.imports.get(func.id, "")
            if imported.startswith("threading."):
                return func.id
        return None

    def _collect_calls(self) -> None:
        for info in self.functions.values():
            callees: Set[str] = set()
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.resolve_call(node, info.class_name)
                if callee is None:
                    continue
                callees.add(callee)
                self.call_sites.setdefault(callee, []).append(
                    (info.qualname, node)
                )
            self.call_graph[info.qualname] = callees

    # -- queries -------------------------------------------------------
    def resolve_call(
        self, call: ast.Call, class_name: Optional[str]
    ) -> Optional[str]:
        """Qualname of the called function when it is defined in this
        module: ``self.m(...)`` within a class, ``f(...)`` at module
        level, ``Cls.m(...)`` by explicit class name."""
        func = call.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and class_name is not None
            ):
                cls = self.classes.get(class_name)
                if cls is not None and func.attr in cls.methods:
                    return f"{class_name}.{func.attr}"
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in self.classes
                and func.attr in self.classes[func.value.id].methods
            ):
                return f"{func.value.id}.{func.attr}"
            return None
        if isinstance(func, ast.Name) and func.id in self.functions:
            return func.id
        return None

    def methods_of(self, class_name: str) -> Iterator[FunctionInfo]:
        cls = self.classes.get(class_name)
        if cls is not None:
            yield from cls.methods.values()


def build_model(tree: ast.Module, path: str, source: str) -> ModuleModel:
    """Build the semantic model for one parsed module (once per run)."""
    return ModuleModel(tree, path, source)
