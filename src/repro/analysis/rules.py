"""The invariant catalogue: concrete lint rules for this repository.

Each rule encodes one discipline the placement kernels rely on but the
interpreter never checks:

``autograd-contract``
    Every ``Function`` subclass defines paired ``forward``/``backward``
    staticmethods taking ``ctx`` first, and literal-tuple returns from
    ``backward`` match the ``forward`` argument arity — the static twin
    of the numerical :func:`repro.autograd.gradcheck.gradcheck_all`
    sweep.
``hot-loop-scalar-iteration``
    No per-element Python loops over arrays in kernel modules
    (``zip`` lockstep loops, ``range(len(...))``, iteration over
    ``np.flatnonzero``/``np.nonzero``/``np.argwhere``/``np.nditer``).
    Per-op dispatch is our analogue of CUDA launch overhead (Table 3).
``dtype-drift``
    Kernel allocations must pass an explicit ``dtype=`` and must not
    hardcode float dtype literals — precision policy lives in
    :mod:`repro.dtypes` (``FLOAT``), so implicit int→float promotions
    and silent ``float32``/``float64`` mixtures cannot creep in.
``silent-except``
    No exception handler whose entire body is ``pass``/``continue``/
    ``...`` — diverging placements must never vanish silently.
``mutable-default-arg``
    No mutable default argument values (lists/dicts/sets).
``mp-unsafe-capture``
    No lambdas or locally-defined closures handed to worker processes
    (``target=`` of a ``Process``, ``submit``/``apply_async`` args) —
    they break ``spawn`` pickling and capture parent state.

The dataflow families live in their own modules on top of the shared
semantic model (:mod:`repro.analysis.model`): ``lock-discipline`` /
``lock-order`` (:mod:`repro.analysis.locks`), ``determinism``
(:mod:`repro.analysis.determinism`), and ``resource-lifetime``
(:mod:`repro.analysis.lifetime`); they register here so ``repro lint``
runs all passes by default.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.determinism import DeterminismRule
from repro.analysis.engine import Rule, Violation
from repro.analysis.lifetime import ResourceLifetimeRule
from repro.analysis.locks import LockDisciplineRule, LockOrderRule

__all__ = ["default_rules", "RULES"]

_NUMPY_ALIASES = {"np", "numpy"}


def _is_numpy_call(node: ast.expr, names: Set[str]) -> bool:
    """True for ``np.<name>(...)`` / ``numpy.<name>(...)`` calls."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in names
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in _NUMPY_ALIASES
    )


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


# ----------------------------------------------------------------------
class AutogradContractRule(Rule):
    name = "autograd-contract"
    description = (
        "Function subclasses define paired forward/backward staticmethods "
        "(ctx first); backward tuple returns match forward arity"
    )

    def check(self, tree, path, source) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and self._extends_function(node):
                yield from self._check_class(node, path)

    @staticmethod
    def _extends_function(node: ast.ClassDef) -> bool:
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id == "Function":
                return True
            if isinstance(base, ast.Attribute) and base.attr == "Function":
                return True
        return False

    def _check_class(self, cls: ast.ClassDef, path: str) -> Iterator[Violation]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for required in ("forward", "backward"):
            if required not in methods:
                yield self.violation(
                    path, cls, f"{cls.name} lacks a {required}() staticmethod"
                )
        for name in ("forward", "backward"):
            method = methods.get(name)
            if method is None:
                continue
            if not any(
                isinstance(d, ast.Name) and d.id == "staticmethod"
                for d in method.decorator_list
            ):
                yield self.violation(
                    path, method, f"{cls.name}.{name} must be a @staticmethod"
                )
            args = method.args.args
            if not args or not args[0].arg.startswith("ctx"):
                yield self.violation(
                    path,
                    method,
                    f"{cls.name}.{name} must take ctx as its first argument",
                )
        forward = methods.get("forward")
        backward = methods.get("backward")
        if forward is None or backward is None:
            return
        if len(backward.args.args) < 2 and backward.args.vararg is None:
            yield self.violation(
                path,
                backward,
                f"{cls.name}.backward must accept the output gradient "
                "(ctx, grad)",
            )
        if forward.args.vararg is not None:
            return  # variadic forward: arity is dynamic, skip the check
        arity = max(len(forward.args.args) - 1, 0)
        for ret in self._returns(backward):
            if isinstance(ret.value, ast.Tuple) and not any(
                isinstance(e, ast.Starred) for e in ret.value.elts
            ):
                if len(ret.value.elts) != arity:
                    yield self.violation(
                        path,
                        ret,
                        f"{cls.name}.backward returns {len(ret.value.elts)} "
                        f"gradient(s) but forward takes {arity} input(s)",
                    )

    @staticmethod
    def _returns(func: ast.FunctionDef) -> List[ast.Return]:
        """Return statements of ``func`` itself (not nested defs)."""
        out: List[ast.Return] = []
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Return) and node.value is not None:
                out.append(node)
            elif not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))
        return out


# ----------------------------------------------------------------------
class HotLoopScalarIterationRule(Rule):
    name = "hot-loop-scalar-iteration"
    description = (
        "no per-element Python loops over arrays in kernel modules "
        "(zip lockstep, range(len(...)), np.flatnonzero/nonzero/argwhere)"
    )
    kernel_only = True

    _INDEX_ITERATORS = {"flatnonzero", "nonzero", "argwhere", "nditer", "ndenumerate"}

    def check(self, tree, path, source) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            reason = self._diagnose(node.iter)
            if reason:
                yield self.violation(
                    path,
                    node,
                    f"{reason}; vectorise with masked array ops / np.add.at "
                    "windows instead of per-element Python iteration",
                )

    def _diagnose(self, iterable: ast.expr) -> Optional[str]:
        if not isinstance(iterable, ast.Call):
            return None
        name = _call_name(iterable)
        if name == "zip":
            return "lockstep zip(...) loop over parallel arrays"
        if name == "range" and any(
            isinstance(arg, ast.Call) and _call_name(arg) == "len"
            for arg in iterable.args
        ):
            return "range(len(...)) scalar index loop"
        if _is_numpy_call(iterable, self._INDEX_ITERATORS):
            return f"per-element iteration over np.{iterable.func.attr}(...)"
        return None


# ----------------------------------------------------------------------
class DtypeDriftRule(Rule):
    name = "dtype-drift"
    description = (
        "kernel allocations need an explicit dtype= and must not hardcode "
        "float dtype literals (use repro.dtypes.FLOAT)"
    )
    kernel_only = True

    _ALLOCATORS = {"zeros", "ones", "empty", "full", "arange"}
    _REDUCED = {"float32", "float16", "half", "single"}
    _LITERALS = {"float64", "double"} | _REDUCED

    def check(self, tree, path, source) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if _is_numpy_call(node, self._ALLOCATORS) and not any(
                kw.arg == "dtype" for kw in node.keywords
            ):
                yield self.violation(
                    path,
                    node,
                    f"np.{node.func.attr}(...) without an explicit dtype= "
                    "(implicit default promotes silently; use "
                    "repro.dtypes.FLOAT)",
                )
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._LITERALS
                and isinstance(node.value, ast.Name)
                and node.value.id in _NUMPY_ALIASES
            ):
                kind = (
                    "reduced-precision"
                    if node.attr in self._REDUCED
                    else "stray float64"
                )
                yield self.violation(
                    path,
                    node,
                    f"{kind} dtype literal np.{node.attr}; kernel precision "
                    "policy lives in repro.dtypes (FLOAT)",
                )
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "dtype"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                        and kw.value.value in self._LITERALS
                    ):
                        yield self.violation(
                            path,
                            kw.value,
                            f"string dtype literal {kw.value.value!r}; use "
                            "repro.dtypes.FLOAT",
                        )


# ----------------------------------------------------------------------
class SilentExceptRule(Rule):
    name = "silent-except"
    description = "exception handlers must not swallow errors with a bare pass"

    def check(self, tree, path, source) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if all(self._is_noop(stmt) for stmt in handler.body):
                    label = self._label(handler)
                    yield self.violation(
                        path,
                        handler,
                        f"except {label} silently swallows the error; log, "
                        "re-raise, or narrow the handler",
                    )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)

    @staticmethod
    def _label(handler: ast.ExceptHandler) -> str:
        if handler.type is None:
            return "<bare>"
        try:
            return ast.unparse(handler.type)
        except Exception:  # pragma: no cover - unparse is best-effort
            return "<type>"


# ----------------------------------------------------------------------
class MutableDefaultArgRule(Rule):
    name = "mutable-default-arg"
    description = "no mutable default argument values ([], {}, set())"

    _MUTABLE_CALLS = {"list", "dict", "set"}

    def check(self, tree, path, source) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        path,
                        default,
                        f"{name}() has a mutable default argument; default to "
                        "None and construct inside the body",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
            and not node.args
            and not node.keywords
        )


# ----------------------------------------------------------------------
class MpUnsafeCaptureRule(Rule):
    name = "mp-unsafe-capture"
    description = (
        "no lambdas/closures handed to worker processes (Process target=, "
        "submit/apply_async) — they break spawn pickling"
    )

    _SUBMITTERS = {"submit", "apply_async", "map_async", "starmap_async"}

    def check(self, tree, path, source) -> Iterator[Violation]:
        nested = self._nested_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "target":
                    yield from self._check_callable(kw.value, nested, path)
            name = _call_name(node)
            if name in self._SUBMITTERS:
                for arg in node.args[:1]:
                    yield from self._check_callable(arg, nested, path)

    def _check_callable(
        self, value: ast.expr, nested: Set[str], path: str
    ) -> Iterator[Violation]:
        if isinstance(value, ast.Lambda):
            yield self.violation(
                path,
                value,
                "lambda handed to a worker process cannot be pickled under "
                "spawn; use a module-level function",
            )
        elif isinstance(value, ast.Name) and value.id in nested:
            yield self.violation(
                path,
                value,
                f"locally-defined function {value.id!r} handed to a worker "
                "process captures enclosing scope; move it to module level",
            )

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> Set[str]:
        """Names of functions defined inside another function's body."""
        nested: Set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
        return nested


# ----------------------------------------------------------------------
RULES = (
    AutogradContractRule,
    HotLoopScalarIterationRule,
    DtypeDriftRule,
    SilentExceptRule,
    MutableDefaultArgRule,
    MpUnsafeCaptureRule,
    LockDisciplineRule,
    LockOrderRule,
    DeterminismRule,
    ResourceLifetimeRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULES]
