"""Runtime numerical sanitizer: NaN/Inf and gradient-contract checking.

Opt-in (``REPRO_SANITIZE=1`` or :func:`enable`): every autograd op's
forward output is checked for non-finite values, every backward gradient
is checked for finiteness plus shape/dtype consistency against its
forward input, and the closed-form gradient engine's wirelength/density
components are validated each iteration.  A breach raises
:class:`NumericalFault` naming the op and its provenance (iteration,
stage) — the runtime analogue of the static ``autograd-contract`` and
``dtype-drift`` lint rules.

The hooks live behind ``is None`` guards on the hot paths
(:func:`repro.autograd.tensor.Function.apply`, the tape's backward walk,
:meth:`repro.core.gradient_engine.GradientEngine.compute`), so the
disabled cost is one attribute read per op.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "NumericalFault",
    "Sanitizer",
    "enable",
    "disable",
    "active",
    "sanitized",
    "env_enabled",
    "install_from_env",
]

ENV_VAR = "REPRO_SANITIZE"


class NumericalFault(RuntimeError):
    """A numerical invariant broke at runtime.

    Carries the offending op name, the pipeline stage/path where it was
    detected, and (when known) the GP iteration — the provenance a
    diagnostic needs to be actionable.
    """

    def __init__(
        self,
        op: str,
        stage: str,
        detail: str,
        iteration: Optional[int] = None,
    ) -> None:
        self.op = op
        self.stage = stage
        self.detail = detail
        self.iteration = iteration
        where = f" at iteration {iteration}" if iteration is not None else ""
        super().__init__(f"[{stage}] {op}{where}: {detail}")


def _describe_nonfinite(arr: np.ndarray) -> str:
    finite = np.isfinite(arr)
    bad = int(arr.size - int(finite.sum()))
    nans = int(np.isnan(arr).sum())
    infs = bad - nans
    return (
        f"{bad}/{arr.size} non-finite value(s) ({nans} NaN, {infs} Inf), "
        f"shape {arr.shape}, dtype {arr.dtype}"
    )


class Sanitizer:
    """Stateful checker; counts checks/faults for smoke-run reporting."""

    def __init__(self) -> None:
        self.checks = 0
        self.faults = 0

    # ------------------------------------------------------------------
    def check_array(
        self,
        op: str,
        arr,
        stage: str = "gradient-engine",
        iteration: Optional[int] = None,
    ) -> None:
        """Validate one named array (or scalar) for finiteness."""
        self.checks += 1
        data = np.asarray(arr)
        if data.dtype.kind not in "fc":
            return
        if not np.isfinite(data).all():
            self.faults += 1
            raise NumericalFault(
                op, stage, _describe_nonfinite(data), iteration=iteration
            )

    def check_forward(self, op: str, out) -> None:
        """Validate a Function's forward output."""
        self.check_array(op, out, stage="autograd.forward")

    def check_backward(self, op: str, input_data: np.ndarray, grad: np.ndarray) -> None:
        """Validate one backward gradient against its forward input.

        Checks finiteness, that the gradient can be broadcast-reduced to
        the input's shape, and that its dtype does not promote (complex
        gradient for a real input) or downcast (float32 gradient for a
        float64 input) the parameter it will accumulate into.
        """
        self.checks += 1
        stage = "autograd.backward"
        if grad.dtype.kind in "fc" and not np.isfinite(grad).all():
            self.faults += 1
            raise NumericalFault(op, stage, _describe_nonfinite(grad))
        try:
            combined = np.broadcast_shapes(grad.shape, input_data.shape)
        except ValueError:
            combined = None
        if combined != grad.shape:
            self.faults += 1
            raise NumericalFault(
                op,
                stage,
                f"gradient shape {grad.shape} cannot be reduced to input "
                f"shape {input_data.shape}",
            )
        if input_data.dtype.kind == "f":
            if grad.dtype.kind == "c":
                self.faults += 1
                raise NumericalFault(
                    op,
                    stage,
                    f"complex gradient ({grad.dtype}) for real input "
                    f"({input_data.dtype})",
                )
            if (
                grad.dtype.kind == "f"
                and grad.dtype.itemsize < input_data.dtype.itemsize
            ):
                self.faults += 1
                raise NumericalFault(
                    op,
                    stage,
                    f"gradient dtype {grad.dtype} downcasts input dtype "
                    f"{input_data.dtype}",
                )


# ----------------------------------------------------------------------
# Activation plumbing
# ----------------------------------------------------------------------
_active: Optional[Sanitizer] = None


def active() -> Optional[Sanitizer]:
    """The currently installed sanitizer, or None when disabled."""
    return _active


def _tensor_module():
    # importlib, not ``from repro.autograd import tensor``: the package
    # rebinds the name ``tensor`` to a factory function, shadowing the
    # submodule attribute.
    import importlib

    return importlib.import_module("repro.autograd.tensor")


def enable(sanitizer: Optional[Sanitizer] = None) -> Sanitizer:
    """Install a sanitizer into the autograd tape and gradient engine."""
    global _active
    _active = sanitizer if sanitizer is not None else Sanitizer()
    _tensor_module().set_sanitizer(_active)
    return _active


def disable() -> None:
    """Remove the installed sanitizer (hot paths revert to no checks)."""
    global _active
    _active = None
    _tensor_module().set_sanitizer(None)


@contextlib.contextmanager
def sanitized(sanitizer: Optional[Sanitizer] = None) -> Iterator[Sanitizer]:
    """Enable sanitizing inside the block, restoring the previous state."""
    previous = _active
    installed = enable(sanitizer)
    try:
        yield installed
    finally:
        if previous is None:
            disable()
        else:
            enable(previous)


def env_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitizing."""
    return os.environ.get(ENV_VAR, "").strip().lower() in ("1", "true", "on", "yes")


def install_from_env() -> Optional[Sanitizer]:
    """Enable from the environment (idempotent); returns the sanitizer."""
    if not env_enabled():
        return _active
    if _active is None:
        return enable()
    return _active
