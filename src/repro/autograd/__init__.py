"""A small reverse-mode automatic differentiation engine over NumPy.

This package plays the role PyTorch plays in the paper: a tape-based
autograd engine whose per-operator dispatch overhead is exactly what
Xplace's operator-reduction technique avoids (Section 3.1.3).  The
DREAMPlace-style baseline placer routes its objective through this tape;
Xplace computes closed-form gradients directly and, as Figure 2(b) shows,
can still *combine* a user-defined autograd loss with its numerical
gradients via :func:`hybrid_gradient`.

Every ``Function`` application reports a forward kernel launch to the
active :class:`~repro.ops.KernelProfiler`, and every backward node
reports a backward launch, so launch accounting reflects the
"autograd almost doubles the operator count" observation.
"""

from repro.autograd.tensor import Function, Tensor, no_grad, is_grad_enabled
from repro.autograd import ops as _ops  # registers Tensor methods
from repro.autograd.segment import gather_cells, segment_sum
from repro.autograd.spectral import irfft2, rfft2, spectral_low_pass
from repro.autograd.gradcheck import discover_functions, gradcheck, gradcheck_all
from repro.autograd.hybrid import hybrid_gradient

tensor = Tensor.as_tensor

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "gather_cells",
    "segment_sum",
    "rfft2",
    "irfft2",
    "spectral_low_pass",
    "gradcheck",
    "hybrid_gradient",
]
