"""Complex-tensor operators specific to the Fourier neural operator."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Function, Tensor


class ModeMix(Function):
    """Per-mode channel mixing of FNO: ``out[o,k,l] = Σ_i W[o,i,k,l]·x[i,k,l]``.

    This is the linear transformation W of Eq. 11, applied independently
    at every kept frequency.  Gradients follow the conjugate convention
    (g = dL/dRe + i·dL/dIm): g_x = Σ_o conj(W)·g_out, g_W = g_out·conj(x).
    """

    @staticmethod
    def forward(ctx, weight, x):
        ctx.save(weight, x)
        return np.einsum("oikl,ikl->okl", weight, x)

    @staticmethod
    def backward(ctx, grad):
        weight, x = ctx.saved
        gx = np.einsum("oikl,okl->ikl", np.conj(weight), grad)
        gw = np.einsum("okl,ikl->oikl", grad, np.conj(x))
        return gw, gx


class EmbedBlock(Function):
    """Write a block into a zero array of ``shape`` at ``slices``.

    The low-pass structure of the FNO keeps only corner mode blocks; this
    op places a processed block back into the full (otherwise zero)
    spectrum before the inverse FFT.  Backward extracts the same block.
    """

    @staticmethod
    def forward(ctx, block, shape, slices):
        ctx.meta["slices"] = slices
        out = np.zeros(shape, dtype=block.dtype)
        out[slices] = block
        return out

    @staticmethod
    def backward(ctx, grad):
        return grad[ctx.meta["slices"]], None, None


def mode_mix(weight: Tensor, x: Tensor) -> Tensor:
    """Differentiable per-mode channel mixing."""
    return ModeMix.apply(weight, x)


def embed_block(block: Tensor, shape: tuple, slices: tuple) -> Tensor:
    """Differentiable block embedding into a zero spectrum."""
    return EmbedBlock.apply(block, shape, slices)
