"""Numerical gradient verification for Functions and models.

``gradcheck`` verifies one callable against central finite differences;
``gradcheck_all`` sweeps every :class:`Function` registered in
:mod:`repro.autograd.ops` through an input-spec table, so a newly added
op without a spec (or with a broken backward) fails loudly in CI instead
of shipping silently.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Function, Tensor
from repro.dtypes import FLOAT


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    max_entries: int = 24,
    rng: np.random.Generator = None,
) -> bool:
    """Compare analytic gradients of ``sum(func(*inputs))`` with central
    finite differences on a random subset of entries.

    Complex parameters are perturbed along both the real and imaginary
    axes (matching the ``dL/dRe + i·dL/dIm`` gradient convention).
    Raises AssertionError with context on mismatch; returns True on pass.
    """
    rng = rng or np.random.default_rng(0)

    def scalar_loss() -> float:
        out = func(*inputs)
        return float(np.sum(out.data.real))

    for t in inputs:
        t.zero_grad()
    out = func(*inputs)
    loss = out.sum() if out.size != 1 else out
    loss.backward()

    for t_index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        assert tensor.grad is not None, f"input {t_index} received no gradient"
        flat = tensor.data.reshape(-1)
        grad_flat = np.asarray(tensor.grad).reshape(-1)
        entries = rng.choice(
            flat.size, size=min(max_entries, flat.size), replace=False
        )
        axes = [1.0]
        if np.iscomplexobj(flat):
            axes = [1.0, 1.0j]
        for i in entries:
            for axis in axes:
                original = flat[i]
                flat[i] = original + eps * axis
                up = scalar_loss()
                flat[i] = original - eps * axis
                down = scalar_loss()
                flat[i] = original
                numeric = (up - down) / (2 * eps)
                analytic = grad_flat[i]
                analytic = analytic.real if axis == 1.0 else analytic.imag
                if not np.isclose(numeric, analytic, rtol=rtol, atol=atol):
                    raise AssertionError(
                        f"gradcheck failed for input {t_index} entry {i} "
                        f"(axis {axis}): numeric {numeric}, analytic {analytic}"
                    )
    return True


# ----------------------------------------------------------------------
# Registry sweep
# ----------------------------------------------------------------------
def discover_functions(module=None) -> Dict[str, type]:
    """All :class:`Function` subclasses *defined in* ``module``.

    Defaults to :mod:`repro.autograd.ops`.  Re-exports are excluded via
    the ``__module__`` check, so each op is attributed to (and checked
    in) the module that owns it.
    """
    if module is None:
        import repro.autograd.ops as module
    found: Dict[str, type] = {}
    for name in dir(module):
        obj = getattr(module, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, Function)
            and obj is not Function
            and obj.__module__ == module.__name__
        ):
            found[name] = obj
    return found


def _default_specs(
    rng: np.random.Generator,
) -> Dict[str, Tuple[Callable[..., Tensor], List[Tensor]]]:
    """Input specs for every op in :mod:`repro.autograd.ops`.

    Each entry maps an op name to ``(callable, tensor_inputs)`` with
    inputs chosen inside the op's smooth domain: positive for Log/Sqrt,
    away from zero for Div's denominator and the ReLU/Abs kinks.
    """
    from repro.autograd import ops

    def T(values) -> Tensor:
        return Tensor(np.asarray(values, dtype=FLOAT), requires_grad=True)

    def randn(*shape):
        return rng.standard_normal(shape)

    def positive(*shape):
        return rng.uniform(0.5, 1.5, shape)

    def nonzero(*shape):
        return np.where(rng.random(shape) < 0.5, -1.0, 1.0) * rng.uniform(
            0.3, 1.2, shape
        )

    return {
        "Add": (ops.Add.apply, [T(randn(3, 4)), T(randn(4))]),
        "Sub": (ops.Sub.apply, [T(randn(3, 4)), T(randn(4))]),
        "Mul": (ops.Mul.apply, [T(randn(3, 4)), T(randn(4))]),
        "Div": (ops.Div.apply, [T(randn(3, 4)), T(nonzero(4))]),
        "Neg": (ops.Neg.apply, [T(randn(3, 4))]),
        "PowConst": (lambda a: ops.PowConst.apply(a, 1.7), [T(positive(3, 4))]),
        "Exp": (ops.Exp.apply, [T(randn(3, 4))]),
        "Log": (ops.Log.apply, [T(positive(3, 4))]),
        "Sqrt": (ops.Sqrt.apply, [T(positive(3, 4))]),
        "Tanh": (ops.Tanh.apply, [T(randn(3, 4))]),
        "Sigmoid": (ops.Sigmoid.apply, [T(randn(3, 4))]),
        "ReLU": (ops.ReLU.apply, [T(nonzero(3, 4))]),
        "GELU": (ops.GELU.apply, [T(randn(3, 4))]),
        "Abs": (ops.Abs.apply, [T(nonzero(3, 4))]),
        "Sum": (lambda a: ops.Sum.apply(a, 1, False), [T(randn(3, 4))]),
        "Mean": (lambda a: ops.Mean.apply(a, 0, True), [T(randn(3, 4))]),
        "Reshape": (lambda a: ops.Reshape.apply(a, (4, 3)), [T(randn(3, 4))]),
        "Transpose": (
            lambda a: ops.Transpose.apply(a, (1, 0)),
            [T(randn(3, 4))],
        ),
        "MatMul": (ops.MatMul.apply, [T(randn(3, 4)), T(randn(4, 2))]),
        "ChannelLinear": (
            ops.ChannelLinear.apply,
            [T(randn(2, 3, 3)), T(randn(4, 2)), T(randn(4))],
        ),
        "Concat": (
            lambda a, b: ops.Concat.apply(a, b, 0),
            [T(randn(2, 3)), T(randn(3, 3))],
        ),
        # Duplicate indices exercise the scatter-add backward.
        "GetItem": (
            lambda a: ops.GetItem.apply(a, (np.array([0, 2, 2]),)),
            [T(randn(4, 5))],
        ),
    }


def gradcheck_all(
    rng: Optional[np.random.Generator] = None,
    specs: Optional[Dict[str, Tuple[Callable[..., Tensor], List[Tensor]]]] = None,
    **gradcheck_kwargs,
) -> List[str]:
    """Gradcheck every Function discovered in :mod:`repro.autograd.ops`.

    Raises AssertionError if an op has no input spec (forcing new ops to
    register one) or if any gradient disagrees with finite differences.
    Returns the sorted list of op names that passed.
    """
    rng = rng or np.random.default_rng(0)
    functions = discover_functions()
    table = specs if specs is not None else _default_specs(rng)
    missing = sorted(set(functions) - set(table))
    if missing:
        raise AssertionError(
            "no gradcheck spec for registered Function(s): "
            + ", ".join(missing)
            + " — add them to _default_specs"
        )
    passed: List[str] = []
    for name in sorted(functions):
        func, inputs = table[name]
        gradcheck(func, inputs, rng=rng, **gradcheck_kwargs)
        passed.append(name)
    return passed
