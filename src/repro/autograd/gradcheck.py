"""Numerical gradient verification for Functions and models."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    max_entries: int = 24,
    rng: np.random.Generator = None,
) -> bool:
    """Compare analytic gradients of ``sum(func(*inputs))`` with central
    finite differences on a random subset of entries.

    Complex parameters are perturbed along both the real and imaginary
    axes (matching the ``dL/dRe + i·dL/dIm`` gradient convention).
    Raises AssertionError with context on mismatch; returns True on pass.
    """
    rng = rng or np.random.default_rng(0)

    def scalar_loss() -> float:
        out = func(*inputs)
        return float(np.sum(out.data.real))

    for t in inputs:
        t.zero_grad()
    out = func(*inputs)
    loss = out.sum() if out.size != 1 else out
    loss.backward()

    for t_index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        assert tensor.grad is not None, f"input {t_index} received no gradient"
        flat = tensor.data.reshape(-1)
        grad_flat = np.asarray(tensor.grad).reshape(-1)
        entries = rng.choice(
            flat.size, size=min(max_entries, flat.size), replace=False
        )
        axes = [1.0]
        if np.iscomplexobj(flat):
            axes = [1.0, 1.0j]
        for i in entries:
            for axis in axes:
                original = flat[i]
                flat[i] = original + eps * axis
                up = scalar_loss()
                flat[i] = original - eps * axis
                down = scalar_loss()
                flat[i] = original
                numeric = (up - down) / (2 * eps)
                analytic = grad_flat[i]
                analytic = analytic.real if axis == 1.0 else analytic.imag
                if not np.isclose(numeric, analytic, rtol=rtol, atol=atol):
                    raise AssertionError(
                        f"gradcheck failed for input {t_index} entry {i} "
                        f"(axis {axis}): numeric {numeric}, analytic {analytic}"
                    )
    return True
