"""Hybrid gradients: autograd loss + externally computed numerical grad.

This is the extensibility hook of Figure 2(b): Xplace skips the autograd
engine for its own wirelength/density gradients, but a user-defined loss
written against the tape can still contribute — its backward gradient is
accumulated with the numerically computed gradient before the optimizer
step.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def hybrid_gradient(
    x: np.ndarray,
    y: np.ndarray,
    numerical_grad_x: np.ndarray,
    numerical_grad_y: np.ndarray,
    user_loss: Optional[Callable[[Tensor, Tensor], Tensor]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Accumulate a user-defined autograd loss into numerical gradients.

    Parameters
    ----------
    x, y : current cell positions (plain arrays)
    numerical_grad_x/y : the directly computed Xplace gradients
    user_loss : optional callable building a scalar loss Tensor from
        position Tensors; its backward gradient is added on top.

    Returns the combined (grad_x, grad_y).
    """
    if user_loss is None:
        return numerical_grad_x, numerical_grad_y
    tx = Tensor(x.copy(), requires_grad=True)
    ty = Tensor(y.copy(), requires_grad=True)
    loss = user_loss(tx, ty)
    if loss.size != 1:
        raise ValueError("user_loss must return a scalar Tensor")
    loss.backward()
    gx = tx.grad if tx.grad is not None else 0.0
    gy = ty.grad if ty.grad is not None else 0.0
    return numerical_grad_x + gx, numerical_grad_y + gy
