"""Elementwise, reduction and shape operators for the autograd tape.

Importing this module attaches the Python arithmetic protocol to
:class:`~repro.autograd.tensor.Tensor`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special

from repro.autograd.tensor import Context, Function, Tensor

Number = Union[int, float]


def _conj(x: np.ndarray) -> np.ndarray:
    return np.conj(x) if np.iscomplexobj(x) else x


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
class Add(Function):
    @staticmethod
    def forward(ctx, a, b):
        return a + b

    @staticmethod
    def backward(ctx, grad):
        return grad, grad


class Sub(Function):
    @staticmethod
    def forward(ctx, a, b):
        return a - b

    @staticmethod
    def backward(ctx, grad):
        return grad, -grad


class Mul(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.save(a, b)
        return a * b

    @staticmethod
    def backward(ctx, grad):
        a, b = ctx.saved
        # Conjugation makes the rule valid for complex factors under the
        # dL/dRe + i·dL/dIm gradient convention.
        return grad * _conj(b), grad * _conj(a)


class Div(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.save(a, b)
        return a / b

    @staticmethod
    def backward(ctx, grad):
        a, b = ctx.saved
        ga = grad / _conj(b)
        gb = -grad * _conj(a) / _conj(b * b)
        return ga, gb


class Neg(Function):
    @staticmethod
    def forward(ctx, a):
        return -a

    @staticmethod
    def backward(ctx, grad):
        return (-grad,)


class PowConst(Function):
    @staticmethod
    def forward(ctx, a, exponent):
        ctx.save(a, exponent)
        return a**exponent

    @staticmethod
    def backward(ctx, grad):
        a, exponent = ctx.saved
        return grad * exponent * a ** (exponent - 1), None


# ----------------------------------------------------------------------
# Elementwise nonlinearities
# ----------------------------------------------------------------------
class Exp(Function):
    @staticmethod
    def forward(ctx, a):
        out = np.exp(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        return (grad * out,)


class Log(Function):
    @staticmethod
    def forward(ctx, a):
        ctx.save(a)
        return np.log(a)

    @staticmethod
    def backward(ctx, grad):
        (a,) = ctx.saved
        return (grad / a,)


class Sqrt(Function):
    @staticmethod
    def forward(ctx, a):
        out = np.sqrt(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        return (grad * 0.5 / out,)


class Tanh(Function):
    @staticmethod
    def forward(ctx, a):
        out = np.tanh(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        return (grad * (1 - out * out),)


class Sigmoid(Function):
    @staticmethod
    def forward(ctx, a):
        out = 1.0 / (1.0 + np.exp(-a))
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        return (grad * out * (1 - out),)


class ReLU(Function):
    @staticmethod
    def forward(ctx, a):
        ctx.save(a > 0)
        return np.maximum(a, 0)

    @staticmethod
    def backward(ctx, grad):
        (mask,) = ctx.saved
        return (grad * mask,)


_SQRT2 = np.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)


class GELU(Function):
    """Exact (erf-based) GELU, the activation of Eq. 12."""

    @staticmethod
    def forward(ctx, a):
        ctx.save(a)
        return 0.5 * a * (1.0 + special.erf(a / _SQRT2))

    @staticmethod
    def backward(ctx, grad):
        (a,) = ctx.saved
        cdf = 0.5 * (1.0 + special.erf(a / _SQRT2))
        pdf = _INV_SQRT_2PI * np.exp(-0.5 * a * a)
        return (grad * (cdf + a * pdf),)


class Abs(Function):
    @staticmethod
    def forward(ctx, a):
        ctx.save(np.sign(a))
        return np.abs(a)

    @staticmethod
    def backward(ctx, grad):
        (sign,) = ctx.saved
        return (grad * sign,)


# ----------------------------------------------------------------------
# Reductions and shape ops
# ----------------------------------------------------------------------
class Sum(Function):
    @staticmethod
    def forward(ctx, a, axis, keepdims):
        ctx.meta["shape"] = a.shape
        ctx.meta["axis"] = axis
        ctx.meta["keepdims"] = keepdims
        return np.sum(a, axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx, grad):
        shape = ctx.meta["shape"]
        axis = ctx.meta["axis"]
        keepdims = ctx.meta["keepdims"]
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis)
        return np.broadcast_to(grad, shape).copy(), None, None


class Mean(Function):
    @staticmethod
    def forward(ctx, a, axis, keepdims):
        ctx.meta["shape"] = a.shape
        ctx.meta["axis"] = axis
        ctx.meta["keepdims"] = keepdims
        return np.mean(a, axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx, grad):
        shape = ctx.meta["shape"]
        axis = ctx.meta["axis"]
        keepdims = ctx.meta["keepdims"]
        count = (
            np.prod(shape)
            if axis is None
            else np.prod([shape[i] for i in np.atleast_1d(axis)])
        )
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis)
        return np.broadcast_to(grad, shape) / count, None, None


class Reshape(Function):
    @staticmethod
    def forward(ctx, a, shape):
        ctx.meta["shape"] = a.shape
        return a.reshape(shape)

    @staticmethod
    def backward(ctx, grad):
        return grad.reshape(ctx.meta["shape"]), None


class Transpose(Function):
    @staticmethod
    def forward(ctx, a, axes):
        ctx.meta["axes"] = axes
        return np.transpose(a, axes)

    @staticmethod
    def backward(ctx, grad):
        axes = ctx.meta["axes"]
        inverse = np.argsort(axes) if axes is not None else None
        return np.transpose(grad, inverse), None


class MatMul(Function):
    @staticmethod
    def forward(ctx, a, b):
        ctx.save(a, b)
        return a @ b

    @staticmethod
    def backward(ctx, grad):
        a, b = ctx.saved
        return grad @ _conj(np.swapaxes(b, -1, -2)), _conj(np.swapaxes(a, -1, -2)) @ grad


class ChannelLinear(Function):
    """Per-pixel linear layer over channel maps (the FC / 1×1 conv of the
    FNO): ``out[o,h,w] = Σ_i W[o,i] x[i,h,w] + b[o]``."""

    @staticmethod
    def forward(ctx, x, weight, bias):
        ctx.save(x, weight)
        out = np.einsum("oi,ihw->ohw", weight, x)
        if bias is not None:
            out = out + bias[:, None, None]
        return out

    @staticmethod
    def backward(ctx, grad):
        x, weight = ctx.saved
        gx = np.einsum("oi,ohw->ihw", weight, grad)
        gw = np.einsum("ohw,ihw->oi", grad, x)
        gb = grad.sum(axis=(1, 2))
        return gx, gw, gb


class Concat(Function):
    @staticmethod
    def forward(ctx, *arrays_and_axis):
        *arrays, axis = arrays_and_axis
        ctx.meta["axis"] = axis
        ctx.meta["sizes"] = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx, grad):
        axis = ctx.meta["axis"]
        sizes = ctx.meta["sizes"]
        splits = np.cumsum(sizes)[:-1]
        pieces = np.split(grad, splits, axis=axis)
        return tuple(pieces) + (None,)


class GetItem(Function):
    """Advanced/simple indexing with scatter-add backward."""

    @staticmethod
    def forward(ctx, a, index):
        ctx.meta["shape"] = a.shape
        ctx.meta["index"] = index
        ctx.meta["dtype"] = a.dtype
        return a[index]

    @staticmethod
    def backward(ctx, grad):
        out = np.zeros(ctx.meta["shape"], dtype=np.result_type(ctx.meta["dtype"], grad.dtype))
        np.add.at(out, ctx.meta["index"], grad)
        return out, None


# ----------------------------------------------------------------------
# Python-protocol wiring
# ----------------------------------------------------------------------
def _binary(op):
    def method(self, other):
        return op.apply(self, Tensor.as_tensor(other))

    return method


def _rbinary(op):
    def method(self, other):
        return op.apply(Tensor.as_tensor(other), self)

    return method


Tensor.__add__ = _binary(Add)
Tensor.__radd__ = _rbinary(Add)
Tensor.__sub__ = _binary(Sub)
Tensor.__rsub__ = _rbinary(Sub)
Tensor.__mul__ = _binary(Mul)
Tensor.__rmul__ = _rbinary(Mul)
Tensor.__truediv__ = _binary(Div)
Tensor.__rtruediv__ = _rbinary(Div)
Tensor.__neg__ = lambda self: Neg.apply(self)
Tensor.__pow__ = lambda self, e: PowConst.apply(self, float(e))
Tensor.__matmul__ = _binary(MatMul)
Tensor.__getitem__ = lambda self, index: GetItem.apply(self, index)

Tensor.exp = lambda self: Exp.apply(self)
Tensor.log = lambda self: Log.apply(self)
Tensor.sqrt = lambda self: Sqrt.apply(self)
Tensor.tanh = lambda self: Tanh.apply(self)
Tensor.sigmoid = lambda self: Sigmoid.apply(self)
Tensor.relu = lambda self: ReLU.apply(self)
Tensor.gelu = lambda self: GELU.apply(self)
Tensor.abs = lambda self: Abs.apply(self)
Tensor.sum = lambda self, axis=None, keepdims=False: Sum.apply(self, axis, keepdims)
Tensor.mean = lambda self, axis=None, keepdims=False: Mean.apply(self, axis, keepdims)
Tensor.reshape = lambda self, *shape: Reshape.apply(
    self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
)
Tensor.transpose = lambda self, axes=None: Transpose.apply(self, axes)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation."""
    return Concat.apply(*tensors, axis)


def channel_linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Per-pixel channel mixing (FC lift / 1×1 convolution)."""
    if bias is None:
        return ChannelLinear.apply(x, weight, None)
    return ChannelLinear.apply(x, weight, bias)
