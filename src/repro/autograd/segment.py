"""Netlist-shaped autograd operators: pin gather and per-net reduction.

These are the building blocks the DREAMPlace-style baseline uses to spell
the WA wirelength as a graph of small autograd ops.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Function, Tensor
from repro.wirelength.segments import segment_sum as _np_segment_sum


class GatherCells(Function):
    """``pin_values = cell_values[pin2cell] (+ offset)``; backward is the
    scatter-add of pin gradients onto cells."""

    @staticmethod
    def forward(ctx, cell_values, pin2cell, offset):
        ctx.meta["pin2cell"] = pin2cell
        ctx.meta["num_cells"] = cell_values.shape[0]
        out = cell_values[pin2cell]
        if offset is not None:
            out = out + offset
        return out

    @staticmethod
    def backward(ctx, grad):
        gcells = np.bincount(
            ctx.meta["pin2cell"], weights=grad, minlength=ctx.meta["num_cells"]
        )
        return gcells, None, None


class SegmentSum(Function):
    """Per-net sum over the pin-grouped CSR layout; backward broadcasts
    each net's gradient back to its pins."""

    @staticmethod
    def forward(ctx, pin_values, net_start):
        ctx.meta["net_start"] = net_start
        return _np_segment_sum(pin_values, net_start)

    @staticmethod
    def backward(ctx, grad):
        net_start = ctx.meta["net_start"]
        degrees = np.diff(net_start)
        return np.repeat(grad, degrees), None


def gather_cells(
    cell_values: Tensor, pin2cell: np.ndarray, offset: np.ndarray = None
) -> Tensor:
    """Differentiable ``cell_values[pin2cell] + offset``."""
    return GatherCells.apply(cell_values, pin2cell, offset)


def segment_sum(pin_values: Tensor, net_start: np.ndarray) -> Tensor:
    """Differentiable per-net sum."""
    return SegmentSum.apply(pin_values, net_start)
