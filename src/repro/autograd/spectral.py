"""Differentiable 2-D real FFTs for the Fourier neural operator.

Gradient conventions (derivation in the docstrings): for real input
``x (…, H, W)`` and one-sided spectrum ``X (…, H, W//2+1)``,

* ``rfft2`` backward: ``grad_x = H·W · irfft2(grad_X / d)``
* ``irfft2`` backward: ``grad_X = d / (H·W) · rfft2(grad_y)``

where ``d`` is 2 on columns that have an implicit conjugate mirror
(0 < l < W/2) and 1 on the DC and Nyquist columns.  Both formulas are
exercised by numerical gradcheck in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Function, Tensor
from repro.dtypes import FLOAT


def _mirror_weights(width: int) -> np.ndarray:
    """Per-column weight d_l for a one-sided spectrum of a width-W signal."""
    half = width // 2 + 1
    d = np.full(half, 2.0, dtype=FLOAT)
    d[0] = 1.0
    if width % 2 == 0:
        d[-1] = 1.0
    return d


class RFFT2(Function):
    """Real 2-D FFT over the last two axes (like ``torch.fft.rfft2``)."""

    @staticmethod
    def forward(ctx, x):
        ctx.meta["shape"] = x.shape
        return np.fft.rfft2(x)

    @staticmethod
    def backward(ctx, grad):
        h, w = ctx.meta["shape"][-2:]
        d = _mirror_weights(w)
        scaled = grad / d
        return ((h * w) * np.fft.irfft2(scaled, s=(h, w)),)


class IRFFT2(Function):
    """Inverse real 2-D FFT; ``width`` fixes the output size (like the
    ``s=`` argument of ``torch.fft.irfft2``)."""

    @staticmethod
    def forward(ctx, spectrum, height, width):
        ctx.meta["hw"] = (height, width)
        return np.fft.irfft2(spectrum, s=(height, width))

    @staticmethod
    def backward(ctx, grad):
        h, w = ctx.meta["hw"]
        d = _mirror_weights(w)
        return (np.fft.rfft2(grad) * (d / (h * w)), None, None)


class SpectralLowPass(Function):
    """Keep the lowest ``modes`` frequencies of a one-sided 2-D spectrum.

    Retains rows 0..modes-1 and -modes..-1 (positive and negative
    vertical frequencies, FNO-style corner blocks) and columns
    0..modes-1; everything else becomes zero.  Linear, self-adjoint
    masking, so backward applies the same mask.
    """

    @staticmethod
    def forward(ctx, spectrum, modes):
        mask = np.zeros(spectrum.shape, dtype=bool)
        m = int(modes)
        rows = spectrum.shape[-2]
        cols = spectrum.shape[-1]
        mr = min(m, rows)
        mc = min(m, cols)
        mask[..., :mr, :mc] = True
        if rows > mr:
            mask[..., rows - mr :, :mc] = True
        ctx.meta["mask"] = mask
        return np.where(mask, spectrum, 0.0)

    @staticmethod
    def backward(ctx, grad):
        return (np.where(ctx.meta["mask"], grad, 0.0), None)


def rfft2(x: Tensor) -> Tensor:
    """Differentiable real FFT over the last two axes."""
    return RFFT2.apply(x)


def irfft2(spectrum: Tensor, height: int, width: int) -> Tensor:
    """Differentiable inverse real FFT with explicit output size."""
    return IRFFT2.apply(spectrum, int(height), int(width))


def spectral_low_pass(spectrum: Tensor, modes: int) -> Tensor:
    """Differentiable low-pass filter L of Eq. 11."""
    return SpectralLowPass.apply(spectrum, int(modes))
