"""Tensor and Function: the reverse-mode tape.

Design follows the PyTorch v0 architecture: ``Function.apply`` records a
node holding the context and input tensors; ``Tensor.backward`` walks the
graph in reverse topological order, calling each node's ``backward`` and
accumulating gradients on leaves.  Broadcasting is supported; gradients
of broadcast inputs are summed back to the input shape.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ops import profiled

_state = threading.local()

# Numerical sanitizer hook (repro.analysis.sanitizer).  None by default:
# the enabled check on the apply/backward hot paths is one global read.
_sanitizer = None


def set_sanitizer(sanitizer) -> None:
    """Install (or remove, with None) the runtime numerical sanitizer."""
    global _sanitizer
    _sanitizer = sanitizer


def get_sanitizer():
    return _sanitizer


def is_grad_enabled() -> bool:
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the block (inference mode)."""
    previous = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


class Context:
    """Per-application scratch space for saved values."""

    __slots__ = ("saved", "meta")

    def __init__(self) -> None:
        self.saved: Tuple[Any, ...] = ()
        self.meta: dict = {}

    def save(self, *values: Any) -> None:
        self.saved = values


class _Node:
    """One recorded operation in the tape."""

    __slots__ = ("function", "ctx", "inputs")

    def __init__(self, function: type, ctx: Context, inputs: Tuple["Tensor", ...]):
        self.function = function
        self.ctx = ctx
        self.inputs = inputs


class Tensor:
    """NumPy array wrapper carrying gradient metadata.

    ``data`` may be real or complex; gradients of complex tensors follow
    the convention ``grad = dL/dRe + i·dL/dIm`` (what PyTorch calls the
    conjugate Wirtinger derivative), which makes gradient descent on the
    underlying real/imag parameters work directly.
    """

    __slots__ = ("data", "requires_grad", "grad", "_node")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._node: Optional[_Node] = None

    # ------------------------------------------------------------------
    @staticmethod
    def as_tensor(value: Union["Tensor", np.ndarray, float, int]) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def item(self) -> float:
        return self.data.item()

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        """A new leaf sharing data, cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{flag})"

    # Arithmetic operators are attached by repro.autograd.ops at import
    # time to avoid a circular import here.

    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad)

        order = _topological_order(self)
        grads: dict = {id(self): grad}
        tensors: dict = {id(self): self}
        for t in order:
            tensors.setdefault(id(t), t)

        for t in order:
            g = grads.pop(id(t), None)
            if g is None:
                continue
            if t.requires_grad and t._node is None:
                t.grad = g if t.grad is None else t.grad + g
            node = t._node
            if node is None:
                continue
            profiled(f"bwd.{node.function.__name__}")
            input_grads = node.function.backward(node.ctx, g)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != len(node.inputs):
                raise RuntimeError(
                    f"{node.function.__name__}.backward returned "
                    f"{len(input_grads)} grads for {len(node.inputs)} inputs"
                )
            for inp, ig in zip(node.inputs, input_grads):
                if ig is None or not (inp.requires_grad or inp._node is not None):
                    continue
                ig = np.asarray(ig)
                if _sanitizer is not None:
                    _sanitizer.check_backward(node.function.__name__, inp.data, ig)
                ig = _unbroadcast(ig, inp.data.shape)
                key = id(inp)
                if key in grads:
                    grads[key] = grads[key] + ig
                else:
                    grads[key] = ig
        # Flush gradients that accumulated onto leaves discovered late.
        for key, g in grads.items():
            t = tensors.get(key)
            if t is not None and t.requires_grad and t._node is None:
                t.grad = g if t.grad is None else t.grad + g


def _topological_order(root: Tensor) -> List[Tensor]:
    """Tensors in reverse-topological (output-first) order."""
    order: List[Tensor] = []
    visited = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        tensor, processed = stack.pop()
        if processed:
            order.append(tensor)
            continue
        if id(tensor) in visited:
            continue
        visited.add(id(tensor))
        stack.append((tensor, True))
        if tensor._node is not None:
            for child in tensor._node.inputs:
                if id(child) not in visited:
                    stack.append((child, False))
    order.reverse()
    return order


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Differentiable operation.  Subclasses implement ``forward`` and
    ``backward`` as static methods over raw NumPy arrays."""

    @staticmethod
    def forward(ctx: Context, *args: Any) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any) -> Tensor:
        """Run forward, record the tape node if gradients are enabled."""
        profiled(f"fwd.{cls.__name__}")
        ctx = Context()
        raw = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = cls.forward(ctx, *raw)
        if _sanitizer is not None:
            _sanitizer.check_forward(cls.__name__, out_data)
        tensor_inputs = tuple(a for a in args if isinstance(a, Tensor))
        needs_grad = is_grad_enabled() and any(
            t.requires_grad or t._node is not None for t in tensor_inputs
        )
        out = Tensor(out_data, requires_grad=False)
        if needs_grad:
            # Record only tensor inputs; backward must return one grad per
            # *argument*, with None for non-tensor slots filtered below.
            grads_template = tuple(args)
            node_inputs = tensor_inputs
            ctx.meta.setdefault("arg_is_tensor", [isinstance(a, Tensor) for a in args])
            out._node = _Node(_wrap_backward(cls, ctx), ctx, node_inputs)
        return out


def _wrap_backward(cls: type, ctx: Context) -> type:
    """Adapt ``cls.backward`` so it returns grads for tensor inputs only."""
    mask = ctx.meta["arg_is_tensor"]

    class _Adapted:
        @staticmethod
        def backward(ctx_inner: Context, grad: np.ndarray):
            result = cls.backward(ctx_inner, grad)
            if not isinstance(result, tuple):
                result = (result,)
            if len(result) == len(mask):
                return tuple(g for g, is_t in zip(result, mask) if is_t)
            return result

    # A class-body ``__name__ = ...`` is shadowed by the ``type.__name__``
    # descriptor; assign after creation so profiling and sanitizer
    # diagnostics report the wrapped op, not "_Adapted".
    _Adapted.__name__ = cls.__name__
    _Adapted.__qualname__ = cls.__qualname__
    return _Adapted
