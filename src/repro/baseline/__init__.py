"""DREAMPlace-style baseline global placer (comparison target).

Same ePlace mathematics as :class:`repro.core.XPlacer`, engineered the
way DREAMPlace engineers it (and deliberately *without* the paper's
operator-level optimizations):

* the WA wirelength objective is spelled as a graph of fine-grained
  autograd operators and differentiated by the tape (Section 3.1.3's
  "heavy autograd engine");
* HPWL is a separate operator that recomputes the per-net reductions
  (no operator combination);
* the density map for the solver is a fused movable+filler scatter and
  the overflow map is scattered again (no operator extraction);
* the density gradient is never skipped and parameters update every
  iteration (no stage-aware schedule).

Tables 2–4 compare this placer against Xplace.
"""

from repro.baseline.placer import DreamPlaceStyleBaseline

__all__ = ["DreamPlaceStyleBaseline"]
