"""The autograd-driven baseline placer."""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Tensor, gather_cells, segment_sum
from repro.autograd.tensor import Context, Function
from repro.core.callbacks import (
    CallbackList,
    IterationCallback,
    LoopStart,
    LoopStop,
    RecorderCallback,
    VerboseCallback,
)
from repro.core.evaluator import Evaluator
from repro.core.initializer import initial_positions
from repro.core.params import PlacementParams
from repro.core.placer import PlacementResult
from repro.core.recorder import IterationRecord
from repro.core.scheduler import Scheduler
from repro.density import BinGrid, DensitySystem
from repro.netlist import Netlist
from repro.optim import NesterovOptimizer, Preconditioner
from repro.wirelength import hpwl as hpwl_op
from repro.wirelength.segments import segment_max, segment_min


class _ElectricEnergy(Function):
    """DREAMPlace's ElectricPotential op: forward solves the electrostatic
    system and returns the energy; backward returns the stored field force
    scaled by the incoming gradient."""

    @staticmethod
    def forward(ctx, pos_x, pos_y, evaluate):
        result = evaluate(pos_x, pos_y)
        ctx.meta["result"] = result
        ctx.save(result.grad_concat_x, result.grad_concat_y)
        return np.array(result.energy)

    @staticmethod
    def backward(ctx, grad):
        gx, gy = ctx.saved
        return grad * gx, grad * gy, None


class _DensityAdapter:
    """Evaluates the (non-extracted) density system in optimizer layout and
    exposes the last overflow for the scheduler."""

    def __init__(self, netlist: Netlist, density: DensitySystem) -> None:
        self.netlist = netlist
        self.density = density
        self._mov_idx = netlist.movable_index
        self._nm = len(self._mov_idx)
        self.last_overflow = 1.0
        self.last_density_map = None

    def __call__(self, pos_x: np.ndarray, pos_y: np.ndarray):
        x, y = self.netlist.initial_positions()
        x[self._mov_idx] = pos_x[: self._nm]
        y[self._mov_idx] = pos_y[: self._nm]
        result = self.density.evaluate(
            x, y, pos_x[self._nm :], pos_y[self._nm :]
        )
        self.last_overflow = result.overflow
        self.last_density_map = result.total_map

        class _Shim:
            pass

        shim = _Shim()
        shim.energy = result.energy
        shim.grad_concat_x = np.concatenate(
            [result.grad_x[self._mov_idx], result.filler_grad_x]
        )
        shim.grad_concat_y = np.concatenate(
            [result.grad_y[self._mov_idx], result.filler_grad_y]
        )
        return shim


class DreamPlaceStyleBaseline:
    """Global placer with DREAMPlace's operator structure (see package
    docstring).  Accepts the same parameter object as XPlacer; the
    operator-level switches are ignored (they are always "off" here)."""

    def __init__(
        self, netlist: Netlist, params: Optional[PlacementParams] = None
    ) -> None:
        self.netlist = netlist
        self.params = params or PlacementParams()
        rng = np.random.default_rng(self.params.seed)
        grid = BinGrid.for_netlist(netlist, self.params.grid_m)
        self.density = DensitySystem(
            netlist,
            target_density=self.params.target_density,
            grid=grid,
            extraction=False,              # fused scatter + duplicate overflow pass
            use_fillers=self.params.use_fillers,
            rng=rng,
        )
        self.evaluator = Evaluator(netlist, self.density)
        self._adapter = _DensityAdapter(netlist, self.density)
        self.preconditioner = Preconditioner(netlist, self.density.fillers)
        self._rng = rng
        nl = netlist
        self._net_weights = nl.net_weight * nl.net_mask
        # Denominator guard for empty nets in the autograd WA graph.
        self._empty_guard = (~nl.net_mask).astype(np.float64)

    # ------------------------------------------------------------------
    def _wa_axis_autograd(self, pos: Tensor, axis_offsets: np.ndarray, gamma: float):
        """Stable WA wirelength along one axis as a fine-grained op graph."""
        nl = self.netlist
        pins = gather_cells(pos, nl.pin2cell, axis_offsets)
        # Shifts come from a detached (non-differentiated) reduction, the
        # standard envelope treatment.
        net_max = segment_max(pins.data, nl.net_start)
        net_min = segment_min(pins.data, nl.net_start)
        inv_gamma = 1.0 / gamma
        ep = ((pins - net_max[nl.pin2net]) * inv_gamma).exp()
        em = ((Tensor(net_min[nl.pin2net]) - pins) * inv_gamma).exp()
        cp = segment_sum(ep, nl.net_start) + self._empty_guard
        cm = segment_sum(em, nl.net_start) + self._empty_guard
        dp = segment_sum(pins * ep, nl.net_start)
        dm = segment_sum(pins * em, nl.net_start)
        per_net = dp / cp - dm / cm
        return (Tensor(self._net_weights) * per_net).sum()

    # ------------------------------------------------------------------
    def run(
        self, callbacks: Optional[Sequence[IterationCallback]] = None
    ) -> PlacementResult:
        """Run the baseline loop; same callback protocol as XPlacer."""
        params = self.params
        netlist = self.netlist
        start = time.perf_counter()

        recorder_cb = RecorderCallback()
        events = CallbackList([recorder_cb])
        if params.verbose:
            events.add(
                VerboseCallback(f"baseline {netlist.name}", extended=False)
            )
        for callback in callbacks or ():
            events.add(callback)

        x0, y0 = initial_positions(netlist, rng=self._rng)
        mov = netlist.movable_index
        nm = len(mov)
        fillers = self.density.fillers
        pos_x = np.concatenate([x0[mov], fillers.x])
        pos_y = np.concatenate([y0[mov], fillers.y])

        bin_size = min(self.density.grid.bin_w, self.density.grid.bin_h)
        optimizer = NesterovOptimizer(pos_x, pos_y)
        # The baseline never consults should_update_params(): parameters
        # move every iteration, i.e. the stage-aware schedule is off.
        scheduler = Scheduler(params, bin_size)
        recorder = recorder_cb.recorder
        clamp = self._make_clamp()

        events.on_start(
            LoopStart(
                design=netlist.name,
                placer="baseline",
                params=params,
                num_movable=nm,
                num_fillers=fillers.count,
            )
        )

        lam = params.initial_lambda
        converged = False
        iteration = 0
        for iteration in range(params.max_iterations):
            vx, vy = optimizer.positions
            tx = Tensor(vx, requires_grad=True)
            ty = Tensor(vy, requires_grad=True)

            # Full-cell tensors: movable slice is differentiable, the rest
            # is constant (fixed cells); fillers see only density.
            full_x = np.asarray(x0, dtype=np.float64).copy()
            full_y = np.asarray(y0, dtype=np.float64).copy()
            cell_x = _scatter_movable(tx, full_x, mov, nm)
            cell_y = _scatter_movable(ty, full_y, mov, nm)

            wa_x = self._wa_axis_autograd(cell_x, netlist.pin_dx, scheduler.gamma)
            wa_y = self._wa_axis_autograd(cell_y, netlist.pin_dy, scheduler.gamma)
            wa = wa_x + wa_y
            energy = _ElectricEnergy.apply(tx, ty, self._adapter)

            if lam is None:
                # Balance λ0 from the two gradient norms (extra backward
                # passes — exactly the cost DREAMPlace pays here).
                wa.backward()
                wl_norm = float(
                    np.linalg.norm(np.concatenate([tx.grad, ty.grad]))
                )
                tx.zero_grad()
                ty.zero_grad()
                energy.backward()
                d_norm = float(
                    np.linalg.norm(np.concatenate([tx.grad, ty.grad]))
                )
                tx.zero_grad()
                ty.zero_grad()
                lam = scheduler.initialize_lambda(wl_norm, d_norm)

            loss = wa + float(lam) * energy
            loss.backward()
            grad_x, grad_y = self.preconditioner.apply(tx.grad, ty.grad, lam)

            # Separate HPWL operator (no combination): recomputes reductions.
            hpwl_now = hpwl_op(netlist, cell_x.data, cell_y.data)
            overflow = self._adapter.last_overflow

            if iteration == 0:
                max_grad = max(
                    float(np.abs(grad_x).max(initial=0.0)),
                    float(np.abs(grad_y).max(initial=0.0)),
                )
                if max_grad > 0:
                    optimizer.bound_first_step(0.1 * bin_size / max_grad)

            optimizer.step(grad_x, grad_y)
            optimizer.clamp(clamp)

            omega = self.preconditioner.omega(lam)
            events.on_iteration(
                IterationRecord(
                    iteration=iteration,
                    hpwl=hpwl_now,
                    wa=float(wa.data),
                    overflow=overflow,
                    gamma=scheduler.gamma,
                    lam=lam,
                    omega=omega,
                    grad_ratio=float("nan"),
                    density_computed=True,
                    step_length=optimizer.step_length,
                )
            )

            if scheduler.should_stop(iteration, overflow):
                converged = overflow < params.stop_overflow
                break

            # No stage-aware slowdown: parameters move every iteration.
            scheduler.update(overflow, hpwl_now)
            lam = scheduler.lam

        sol_x, sol_y = optimizer.solution
        x, y = x0.copy(), y0.copy()
        x[mov] = sol_x[:nm]
        y[mov] = sol_y[:nm]
        hw = netlist.cell_w[mov] / 2
        hh = netlist.cell_h[mov] / 2
        x[mov], y[mov] = netlist.region.clamp(x[mov], y[mov], hw, hh)
        elapsed = time.perf_counter() - start
        final = self.evaluator.evaluate(x, y)
        events.on_stop(
            LoopStop(
                design=netlist.name,
                iterations=iteration + 1,
                converged=converged,
                gp_seconds=elapsed,
                hpwl=final.hpwl,
                overflow=final.overflow,
            )
        )
        return PlacementResult(
            x=x,
            y=y,
            hpwl=final.hpwl,
            overflow=final.overflow,
            iterations=iteration + 1,
            gp_seconds=elapsed,
            recorder=recorder,
            converged=converged,
        )

    # ------------------------------------------------------------------
    def _make_clamp(self):
        netlist = self.netlist
        region = netlist.region
        mov = netlist.movable_index
        fillers = self.density.fillers
        hw = np.concatenate(
            [netlist.cell_w[mov] / 2, np.full(fillers.count, fillers.width / 2)]
        )
        hh = np.concatenate(
            [netlist.cell_h[mov] / 2, np.full(fillers.count, fillers.height / 2)]
        )

        def clamp(px, py):
            return region.clamp(px, py, hw, hh)

        return clamp


class _ScatterMovable(Function):
    """Writes the movable slice of an optimizer tensor into the full-cell
    array (constant elsewhere); backward extracts the movable slice."""

    @staticmethod
    def forward(ctx, pos, template, mov_idx, nm):
        ctx.meta["mov_idx"] = mov_idx
        ctx.meta["nm"] = nm
        ctx.meta["pos_len"] = pos.shape[0]
        out = template.copy()
        out[mov_idx] = pos[:nm]
        return out

    @staticmethod
    def backward(ctx, grad):
        gpos = np.zeros(ctx.meta["pos_len"])
        gpos[: ctx.meta["nm"]] = grad[ctx.meta["mov_idx"]]
        return gpos, None, None, None


def _scatter_movable(pos: Tensor, template: np.ndarray, mov_idx, nm) -> Tensor:
    return _ScatterMovable.apply(pos, template, mov_idx, nm)
