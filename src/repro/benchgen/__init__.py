"""Synthetic contest-like benchmark generation.

The ISPD 2005/2015 contest benchmark data is not redistributable here, so
the evaluation runs on deterministic synthetic circuits that reproduce the
statistical properties global placement is sensitive to: Rent's-rule
locality of connectivity, contest-like net-degree distributions, mixed
standard-cell/macro area, row structure and target utilisation.  Each
named design (``adaptec1`` … ``superblue16_a``) maps to a fixed seed, so
every run of the harness sees the same circuit.
"""

from repro.benchgen.spec import CircuitSpec
from repro.benchgen.generator import generate_circuit
from repro.benchgen.suites import (
    ISPD2005_LIKE,
    ISPD2015_LIKE,
    ispd2005_like_suite,
    ispd2015_like_suite,
    make_design,
)

__all__ = [
    "CircuitSpec",
    "generate_circuit",
    "ISPD2005_LIKE",
    "ISPD2015_LIKE",
    "ispd2005_like_suite",
    "ispd2015_like_suite",
    "make_design",
]
