"""Deterministic synthetic circuit generator.

The generator mimics the structure of the ISPD contest benchmarks:

* standard cells one row tall with a small-width-biased width mix,
* a handful of large fixed macros rasterised into the core,
* IO pads pinned to the die periphery,
* nets whose degree distribution matches published contest statistics
  (dominated by 2–4-pin nets, with a thin high-fanout tail), and
* Rent's-rule locality: cells are laid out on a hierarchical index tree
  and most nets choose their pins inside a small subtree, so a good
  placement exists and analytical spreading has structure to find.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.benchgen.spec import CircuitSpec
from repro.netlist import Netlist, NetlistBuilder, PlacementRegion

# Contest-like net degree histogram: (degree, probability mass).
_DEGREE_TABLE = (
    (2, 0.55),
    (3, 0.18),
    (4, 0.10),
    (5, 0.06),
    (6, 0.04),
    (8, 0.03),
    (10, 0.02),
    (16, 0.01),
    (24, 0.01),
)

# Cell width choices in sites, biased to small cells like a std-cell mix.
_WIDTH_CHOICES = np.array([2, 3, 4, 5, 6, 8, 10, 14], dtype=np.float64)
_WIDTH_PROBS = np.array([0.28, 0.24, 0.18, 0.10, 0.08, 0.06, 0.04, 0.02])


def generate_circuit(spec: CircuitSpec) -> Netlist:
    """Generate the deterministic synthetic circuit described by ``spec``."""
    rng = np.random.default_rng(spec.rng_seed())
    builder = NetlistBuilder(spec.name)

    widths = rng.choice(_WIDTH_CHOICES, size=spec.num_cells, p=_WIDTH_PROBS)
    std_area = float(np.sum(widths * spec.row_height))
    # Movable macros take a share of the movable area budget.
    if spec.num_movable_macros > 0:
        mm_area_total = std_area * spec.movable_macro_fraction / (
            1 - spec.movable_macro_fraction
        )
    else:
        mm_area_total = 0.0
    cell_area = std_area + mm_area_total

    region = _size_region(spec, cell_area)
    builder.set_region(region)

    for i in range(spec.num_cells):
        builder.add_cell(f"o{i}", widths[i], spec.row_height, movable=True)

    movable_macros = []
    for k in range(spec.num_movable_macros):
        area = mm_area_total / spec.num_movable_macros
        rows_tall = int(rng.integers(2, 7))
        h = rows_tall * spec.row_height
        w = max(area / h, 2.0)
        movable_macros.append(builder.add_cell(f"mm{k}", w, h, movable=True))

    # Macros and fence regions share one jittered slot grid so they never
    # overlap each other.
    grid_users = spec.num_macros + spec.num_fences
    grid = int(math.ceil(math.sqrt(max(grid_users, 1))))
    slots = rng.permutation(grid * grid)[:grid_users] if grid_users else []
    macro_cells = _add_macros(
        builder, spec, region, cell_area, rng, grid, slots[: spec.num_macros]
    )
    _add_fences(
        builder, spec, region, widths, rng, grid, slots[spec.num_macros :]
    )
    pad_cells = _add_pads(builder, spec, region)

    # Movable macros join the macro-pin connectivity pool.
    _add_nets(builder, spec, macro_cells + movable_macros, pad_cells, widths, rng)
    return builder.build()


# ----------------------------------------------------------------------
def _size_region(spec: CircuitSpec, cell_area: float) -> PlacementRegion:
    """Die sized so that movable area / free area hits the target util.

    A 1 + 1.5/√n safety factor absorbs the discretisation losses that
    dominate small dies (row snapping, macro-cut slivers, jittered macro
    sizes); without it a 40-cell design asked for 70 % utilisation can
    realize 95 %+ and become un-legalizable.  At benchmark sizes the
    factor is ≤ 3 %.
    """
    macro_area = cell_area * spec.macro_fraction / max(1e-9, 1 - spec.macro_fraction)
    free_area = cell_area / spec.utilization
    die_area = (free_area + macro_area) * (1.0 + 1.5 / math.sqrt(spec.num_cells))
    width = math.sqrt(die_area / spec.aspect)
    height = die_area / width
    # Snap the die to whole rows.
    return PlacementRegion.with_uniform_rows(
        0.0, 0.0, width, height, row_height=spec.row_height, site_width=1.0
    )


def _add_macros(
    builder: NetlistBuilder,
    spec: CircuitSpec,
    region: PlacementRegion,
    cell_area: float,
    rng: np.random.Generator,
    grid: int,
    slots,
) -> List[int]:
    """Place fixed macros on the shared jittered slot grid."""
    if spec.num_macros <= 0 or spec.macro_fraction <= 0:
        return []
    total_macro_area = cell_area * spec.macro_fraction / (1 - spec.macro_fraction)
    area_each = total_macro_area / spec.num_macros
    side = math.sqrt(area_each)
    slot_w = region.width / grid
    slot_h = region.height / grid
    macros: List[int] = []
    for k, slot in enumerate(slots):
        gx, gy = slot % grid, slot // grid
        w = min(side * rng.uniform(0.7, 1.3), 0.85 * slot_w)
        h = min(area_each / w, 0.85 * slot_h)
        w = area_each / h
        w = min(w, 0.85 * slot_w)
        # Snap macro height to a whole number of rows so rows under it are
        # cleanly blocked for legalization.
        h = max(spec.row_height, round(h / spec.row_height) * spec.row_height)
        margin_x = (slot_w - w) / 2
        margin_y = (slot_h - h) / 2
        cx = region.xl + gx * slot_w + margin_x + w / 2 + rng.uniform(-0.5, 0.5) * margin_x
        cy = region.yl + gy * slot_h + margin_y + h / 2 + rng.uniform(-0.5, 0.5) * margin_y
        index = builder.add_cell(f"macro{k}", w, h, movable=False, x=cx, y=cy)
        macros.append(index)
    return macros


def _add_fences(
    builder: NetlistBuilder,
    spec: CircuitSpec,
    region: PlacementRegion,
    widths: np.ndarray,
    rng: np.random.Generator,
    grid: int,
    slots,
) -> None:
    """Carve fence boxes into free slots and assign member cell blocks.

    Members are contiguous index blocks (so fenced logic keeps the
    Rent-style locality of its connectivity); the box is sized for the
    configured fence utilisation and snapped to whole rows.
    """
    if spec.num_fences <= 0:
        return
    slot_w = region.width / grid
    slot_h = region.height / grid
    avg_area = float(np.mean(widths)) * spec.row_height
    n = spec.num_cells
    members_per_fence = int(spec.fence_cell_fraction * n / spec.num_fences)
    cursor = 0
    for k, slot in enumerate(slots):
        gx, gy = slot % grid, slot // grid
        box_w_max = 0.75 * slot_w
        box_h_max = 0.75 * slot_h
        capacity = spec.fence_utilization * box_w_max * box_h_max
        count = min(members_per_fence, int(capacity / avg_area), n - cursor)
        if count < 4:
            continue
        box_area = count * avg_area / spec.fence_utilization
        box_h = min(box_h_max, math.sqrt(box_area))
        box_h = max(spec.row_height, round(box_h / spec.row_height) * spec.row_height)
        box_w = min(box_area / box_h, box_w_max)
        cx = region.xl + (gx + 0.5) * slot_w
        cy = region.yl + (gy + 0.5) * slot_h
        # Snap the box bottom to a row boundary.
        yl = region.yl + round((cy - box_h / 2 - region.yl) / spec.row_height) * spec.row_height
        yl = max(yl, region.yl)
        yh = min(yl + box_h, region.yh)
        xl = max(cx - box_w / 2, region.xl)
        xh = min(xl + box_w, region.xh)
        fence_id = builder.add_fence(f"fence{k}", [(xl, yl, xh, yh)])
        for cell in range(cursor, cursor + count):
            builder.assign_fence(cell, fence_id)
        cursor += count


def _add_pads(
    builder: NetlistBuilder, spec: CircuitSpec, region: PlacementRegion
) -> List[int]:
    """Zero-area IO terminals evenly spaced around the periphery."""
    pads: List[int] = []
    if spec.num_pads <= 0:
        return pads
    perimeter = 2 * (region.width + region.height)
    step = perimeter / spec.num_pads
    for k in range(spec.num_pads):
        d = k * step
        if d < region.width:
            x, y = region.xl + d, region.yl
        elif d < region.width + region.height:
            x, y = region.xh, region.yl + (d - region.width)
        elif d < 2 * region.width + region.height:
            x, y = region.xh - (d - region.width - region.height), region.yh
        else:
            x, y = region.xl, region.yh - (d - 2 * region.width - region.height)
        pads.append(builder.add_cell(f"p{k}", 0.0, 0.0, movable=False, x=x, y=y))
    return pads


def _add_nets(
    builder: NetlistBuilder,
    spec: CircuitSpec,
    macro_cells: List[int],
    pad_cells: List[int],
    widths: np.ndarray,
    rng: np.random.Generator,
) -> None:
    n = spec.num_cells
    degrees_pool = np.array([d for d, __ in _DEGREE_TABLE])
    probs = np.array([p for __, p in _DEGREE_TABLE])
    probs = probs / probs.sum()
    num_nets = spec.num_nets

    degrees = rng.choice(degrees_pool, size=num_nets, p=probs)
    # Hierarchy: cells indexed 0..n-1 sit at the leaves of a binary tree;
    # a net at level L draws its pins from a window of size n/2^L.
    max_level = max(1, int(math.log2(max(2, n))) - 2)
    # Geometric level distribution: deeper (more local) with prob `locality`.
    levels = rng.geometric(spec.locality, size=num_nets)
    levels = np.clip(max_level - levels + 1, 0, max_level)

    half_h = spec.row_height / 2
    for e in range(num_nets):
        degree = int(degrees[e])
        window = max(degree + 1, n >> int(max_level - levels[e]))
        start = int(rng.integers(0, max(1, n - window + 1)))
        members = rng.choice(
            np.arange(start, min(n, start + window)),
            size=min(degree, window),
            replace=False,
        )
        pins: List[Tuple[int, float, float]] = []
        for cell in members:
            dx = rng.uniform(-0.4, 0.4) * widths[cell]
            dy = rng.uniform(-0.8, 0.8) * half_h
            pins.append((int(cell), dx, dy))
        # A slice of nets touches a pad or macro pin (IO / macro connectivity).
        roll = rng.uniform()
        if pad_cells and roll < 0.04:
            pins.append((int(rng.choice(pad_cells)), 0.0, 0.0))
        elif macro_cells and roll < 0.10:
            macro = int(rng.choice(macro_cells))
            mw = builder._cell_w[macro]  # noqa: SLF001 - generator-internal peek
            mh = builder._cell_h[macro]
            pins.append(
                (macro, rng.uniform(-0.45, 0.45) * mw, rng.uniform(-0.45, 0.45) * mh)
            )
        builder.add_net(f"n{e}", pins)
