"""Parameter record describing one synthetic circuit."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CircuitSpec:
    """Everything :func:`repro.benchgen.generate_circuit` needs.

    Attributes
    ----------
    name : design name (doubles as the per-design RNG seed salt)
    num_cells : movable standard cells
    net_cell_ratio : nets per movable cell (ISPD designs sit near 1.0)
    utilization : movable area / free row area after macros
    macro_fraction : fraction of total cell area owned by fixed macros
    num_macros : fixed macro count (0 disables macros)
    num_pads : fixed IO terminals on the die periphery
    row_height : standard-cell row height in database units
    aspect : die height / width
    locality : Rent-style locality; higher → more short local nets
    seed : base RNG seed (combined with the name hash)
    """

    name: str
    num_cells: int
    net_cell_ratio: float = 1.02
    utilization: float = 0.7
    macro_fraction: float = 0.12
    num_macros: int = 8
    num_pads: int = 64
    row_height: float = 12.0
    aspect: float = 1.0
    locality: float = 0.75
    seed: int = 2022
    # Fence regions (0 = none, the paper's evaluation setting; the ISPD
    # 2015 contest data carries them and repro supports them as the
    # paper's stated future work).
    num_fences: int = 0
    fence_cell_fraction: float = 0.15
    fence_utilization: float = 0.55
    # Movable macros (mixed-size placement, ePlace-MS lineage): count and
    # their share of total movable area.
    num_movable_macros: int = 0
    movable_macro_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.num_cells < 10:
            raise ValueError("num_cells must be >= 10")
        if not 0.05 <= self.utilization <= 0.98:
            raise ValueError("utilization out of sensible range (0.05..0.98)")
        if not 0.0 <= self.macro_fraction < 0.9:
            raise ValueError("macro_fraction out of range [0, 0.9)")
        if self.net_cell_ratio <= 0:
            raise ValueError("net_cell_ratio must be positive")
        if not 0.0 < self.locality < 1.0:
            raise ValueError("locality must be in (0, 1)")
        if self.num_fences < 0:
            raise ValueError("num_fences must be >= 0")
        if not 0.0 < self.fence_cell_fraction < 0.8:
            raise ValueError("fence_cell_fraction out of range (0, 0.8)")
        if not 0.1 <= self.fence_utilization <= 0.9:
            raise ValueError("fence_utilization out of range [0.1, 0.9]")
        if self.num_movable_macros < 0:
            raise ValueError("num_movable_macros must be >= 0")
        if not 0.0 < self.movable_macro_fraction < 0.6:
            raise ValueError("movable_macro_fraction out of range (0, 0.6)")

    @property
    def num_nets(self) -> int:
        return max(1, int(round(self.num_cells * self.net_cell_ratio)))

    def rng_seed(self) -> int:
        """Deterministic seed derived from the base seed and the name."""
        salt = sum((i + 1) * ord(c) for i, c in enumerate(self.name)) % 100003
        return (self.seed * 100003 + salt) % (2**31 - 1)
