"""Named contest-like suites.

Each entry mirrors one design of the paper's Table 1 (ISPD 2005 and ISPD
2015 suites), scaled down by ``scale`` so a pure-Python flow completes on
a CPU.  The default ``scale=0.01`` maps e.g. adaptec1's 211k cells to
~2.1k while preserving the relative size ordering and the per-design
characteristics that matter (utilisation, macros, net/cell ratio).

ISPD 2015 designs carry fence-region constraints in the contest data; the
paper removes them (designs marked †) and so does this generator — no
fence regions are emitted at all.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.benchgen.spec import CircuitSpec
from repro.benchgen.generator import generate_circuit
from repro.netlist import Netlist

_MIN_CELLS = 600

# (cells in the real contest design, utilization, macro_fraction, num_macros)
_ISPD2005 = {
    "adaptec1": (211_000, 0.75, 0.18, 12),
    "adaptec2": (255_000, 0.78, 0.22, 14),
    "adaptec3": (452_000, 0.74, 0.25, 16),
    "adaptec4": (496_000, 0.62, 0.25, 16),
    "bigblue1": (278_000, 0.54, 0.10, 8),
    "bigblue2": (558_000, 0.61, 0.18, 20),
    "bigblue3": (1_097_000, 0.56, 0.22, 24),
    "bigblue4": (2_177_000, 0.65, 0.15, 24),
}

_ISPD2015 = {
    "fft_1": (35_000, 0.83, 0.0, 0),
    "fft_2": (35_000, 0.50, 0.0, 0),
    "fft_a": (34_000, 0.25, 0.12, 6),
    "fft_b": (34_000, 0.30, 0.12, 6),
    "matrix_mult_1": (160_000, 0.80, 0.0, 0),
    "matrix_mult_2": (160_000, 0.79, 0.0, 0),
    "matrix_mult_a": (154_000, 0.42, 0.10, 5),
    "superblue12": (1_293_000, 0.55, 0.20, 30),
    "superblue14": (634_000, 0.56, 0.20, 24),
    "superblue19": (522_000, 0.53, 0.18, 20),
    "des_perf_1": (113_000, 0.90, 0.0, 0),
    "des_perf_a": (108_000, 0.43, 0.12, 4),
    "des_perf_b": (113_000, 0.50, 0.12, 4),
    "edit_dist_a": (127_000, 0.46, 0.12, 6),
    "matrix_mult_b": (146_000, 0.31, 0.10, 5),
    "matrix_mult_c": (146_000, 0.30, 0.10, 5),
    "pci_bridge32_a": (30_000, 0.38, 0.10, 4),
    "pci_bridge32_b": (29_000, 0.14, 0.15, 6),
    "superblue11_a": (926_000, 0.43, 0.20, 28),
    "superblue16_a": (680_000, 0.45, 0.18, 22),
}


def _suite(
    table: Dict[str, tuple], scale: float, seed: int
) -> Dict[str, CircuitSpec]:
    specs: Dict[str, CircuitSpec] = {}
    for name, (cells, util, macro_frac, n_macros) in table.items():
        specs[name] = CircuitSpec(
            name=name,
            num_cells=max(_MIN_CELLS, int(round(cells * scale))),
            utilization=util,
            macro_fraction=macro_frac,
            num_macros=n_macros,
            num_pads=64,
            seed=seed,
        )
    return specs


def ispd2005_like_suite(scale: float = 0.01, seed: int = 2022) -> Dict[str, CircuitSpec]:
    """Scaled-down ISPD-2005-like suite (8 adaptec/bigblue designs)."""
    return _suite(_ISPD2005, scale, seed)


def ispd2015_like_suite(scale: float = 0.01, seed: int = 2022) -> Dict[str, CircuitSpec]:
    """Scaled-down ISPD-2015-like suite (20 designs, fence-free)."""
    return _suite(_ISPD2015, scale, seed)


ISPD2005_LIKE = tuple(_ISPD2005)
ISPD2015_LIKE = tuple(_ISPD2015)


def make_design(
    name: str, scale: float = 0.01, seed: int = 2022, num_cells: Optional[int] = None
) -> Netlist:
    """Generate one named design from either suite.

    ``num_cells`` overrides the scaled size (handy for quick tests).
    """
    if name in _ISPD2005:
        spec = ispd2005_like_suite(scale, seed)[name]
    elif name in _ISPD2015:
        spec = ispd2015_like_suite(scale, seed)[name]
    else:
        raise KeyError(f"unknown design {name!r}")
    if num_cells is not None:
        spec = CircuitSpec(
            name=spec.name,
            num_cells=num_cells,
            net_cell_ratio=spec.net_cell_ratio,
            utilization=spec.utilization,
            macro_fraction=spec.macro_fraction,
            num_macros=spec.num_macros,
            num_pads=spec.num_pads,
            row_height=spec.row_height,
            aspect=spec.aspect,
            locality=spec.locality,
            seed=spec.seed,
        )
    return generate_circuit(spec)
