"""GSRC bookshelf format reader/writer (.aux/.nodes/.nets/.pl/.scl/.wts).

This is the interchange format of the ISPD 2005 contest benchmarks the
paper evaluates on.  The reader produces a :class:`repro.netlist.Netlist`;
the writer emits a complete benchmark directory, which is also how the
synthetic suite can be persisted and re-read (round-trip tested).
"""

from repro.bookshelf.reader import read_aux, read_bookshelf
from repro.bookshelf.writer import write_bookshelf, write_pl

__all__ = ["read_aux", "read_bookshelf", "write_bookshelf", "write_pl"]
