"""Bookshelf parser.

Supports the subset of the UCLA bookshelf dialect used by the ISPD 2005
contest benchmarks: ``.aux`` manifests, ``.nodes`` (with ``terminal``
attributes), ``.nets`` (pin offsets measured from cell centers), ``.pl``
(lower-left corners, ``/FIXED`` markers), ``.scl`` core rows and optional
``.wts`` net weights.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.netlist import NetlistBuilder, Netlist, PlacementRegion, Row


class BookshelfError(ValueError):
    """Raised on malformed bookshelf input."""


def _content_lines(path: str) -> Iterator[str]:
    """Yield logical lines: comments (#) and blank lines stripped."""
    with open(path, "r") as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if line:
                yield line


def _skip_header(lines: Iterator[str], kind: str) -> Iterator[str]:
    """Consume the ``UCLA <kind> 1.0`` header if present."""
    first = next(lines, None)
    if first is None:
        return lines
    if not first.upper().startswith("UCLA"):
        # No header — push the line back by chaining.
        import itertools

        return itertools.chain([first], lines)
    return lines


def read_aux(aux_path: str) -> Dict[str, str]:
    """Parse an ``.aux`` manifest into ``{extension: absolute path}``."""
    directory = os.path.dirname(os.path.abspath(aux_path))
    files: Dict[str, str] = {}
    for line in _content_lines(aux_path):
        if ":" not in line:
            continue
        __, rhs = line.split(":", 1)
        for token in rhs.split():
            ext = token.rsplit(".", 1)[-1].lower()
            files[ext] = os.path.join(directory, token)
    required = {"nodes", "nets", "pl", "scl"}
    missing = required - files.keys()
    if missing:
        raise BookshelfError(f"aux file {aux_path} missing entries: {sorted(missing)}")
    return files


def read_bookshelf(aux_path: str, name: Optional[str] = None) -> Netlist:
    """Read a full bookshelf benchmark and return a :class:`Netlist`."""
    files = read_aux(aux_path)
    rows = _read_scl(files["scl"])
    region = _region_from_rows(rows)
    builder = NetlistBuilder(name or os.path.splitext(os.path.basename(aux_path))[0])
    builder.set_region(region)
    sizes, terminals = _read_nodes(files["nodes"])
    positions, fixed_names = _read_pl(files["pl"])
    for cell, (w, h) in sizes.items():
        is_terminal = cell in terminals or cell in fixed_names
        x, y = positions.get(cell, (np.nan, np.nan))
        # .pl stores lower-left corners; the netlist stores centers.
        cx = x + 0.5 * w if not np.isnan(x) else np.nan
        cy = y + 0.5 * h if not np.isnan(y) else np.nan
        builder.add_cell(cell, w, h, movable=not is_terminal, x=cx, y=cy)
    weights = _read_wts(files.get("wts"))
    for net_name, pins in _read_nets(files["nets"]):
        builder.add_net(net_name, pins, weight=weights.get(net_name, 1.0))
    return builder.build()


# ----------------------------------------------------------------------
# Individual file parsers
# ----------------------------------------------------------------------
def _read_nodes(path: str):
    """Return ({cell: (w, h)}, {terminal names})."""
    sizes: Dict[str, Tuple[float, float]] = {}
    terminals = set()
    lines = _skip_header(_content_lines(path), "nodes")
    for line in lines:
        lowered = line.lower()
        if lowered.startswith("numnodes") or lowered.startswith("numterminals"):
            continue
        tokens = line.split()
        if len(tokens) < 3:
            raise BookshelfError(f"{path}: bad node line {line!r}")
        cell, w, h = tokens[0], float(tokens[1]), float(tokens[2])
        sizes[cell] = (w, h)
        if len(tokens) > 3 and tokens[3].lower().startswith("terminal"):
            terminals.add(cell)
    return sizes, terminals


def _read_nets(path: str):
    """Yield ``(net_name, [(cell, dx, dy), ...])`` tuples."""
    lines = _skip_header(_content_lines(path), "nets")
    current_name: Optional[str] = None
    current_pins: List[Tuple[str, float, float]] = []
    expected = 0
    auto_index = 0
    for line in lines:
        lowered = line.lower()
        if lowered.startswith("numnets") or lowered.startswith("numpins"):
            continue
        if lowered.startswith("netdegree"):
            if current_name is not None:
                if len(current_pins) != expected:
                    raise BookshelfError(
                        f"{path}: net {current_name} declared {expected} pins, "
                        f"got {len(current_pins)}"
                    )
                yield current_name, current_pins
            tokens = line.split()
            # "NetDegree : <d> [name]"
            try:
                expected = int(tokens[2])
            except (IndexError, ValueError):
                raise BookshelfError(f"{path}: bad NetDegree line {line!r}")
            if len(tokens) > 3:
                current_name = tokens[3]
            else:
                current_name = f"n{auto_index}"
            auto_index += 1
            current_pins = []
        else:
            tokens = line.split()
            if not tokens:
                continue
            cell = tokens[0]
            dx = dy = 0.0
            if ":" in tokens:
                colon = tokens.index(":")
                coords = tokens[colon + 1 :]
                if len(coords) >= 2:
                    dx, dy = float(coords[0]), float(coords[1])
            current_pins.append((cell, dx, dy))
    if current_name is not None:
        if len(current_pins) != expected:
            raise BookshelfError(
                f"{path}: net {current_name} declared {expected} pins, "
                f"got {len(current_pins)}"
            )
        yield current_name, current_pins


def _parse_float(token: str) -> Optional[float]:
    """Parse one numeric token, ``None`` for malformed input.

    Names the tolerant-parser intent: bookshelf files in the wild carry
    junk tokens, and callers skip those lines explicitly instead of
    swallowing errors inline.
    """
    try:
        return float(token)
    except ValueError:
        return None


def _read_pl(path: str):
    """Return ({cell: (x_lowleft, y_lowleft)}, {fixed cell names})."""
    positions: Dict[str, Tuple[float, float]] = {}
    fixed = set()
    lines = _skip_header(_content_lines(path), "pl")
    for line in lines:
        tokens = line.split()
        if len(tokens) < 3:
            continue
        cell = tokens[0]
        x, y = _parse_float(tokens[1]), _parse_float(tokens[2])
        if x is None or y is None:
            continue
        positions[cell] = (x, y)
        if "/fixed" in line.lower():
            fixed.add(cell)
    return positions, fixed


def _read_scl(path: str) -> List[Row]:
    rows: List[Row] = []
    lines = _skip_header(_content_lines(path), "scl")
    in_row = False
    attrs: Dict[str, float] = {}
    for line in lines:
        lowered = line.lower()
        if lowered.startswith("numrows"):
            continue
        if lowered.startswith("corerow"):
            in_row = True
            attrs = {}
            continue
        if lowered.startswith("end"):
            if in_row:
                rows.append(_row_from_attrs(attrs, path))
            in_row = False
            continue
        if not in_row:
            continue
        # Attribute lines may pack several "Key : value" pairs.
        for key, value in re.findall(r"(\w+)\s*:\s*(-?[\d.eE+]+)", line):
            attrs[key.lower()] = float(value)
    if not rows:
        raise BookshelfError(f"{path}: no CoreRow found")
    return rows


def _row_from_attrs(attrs: Dict[str, float], path: str) -> Row:
    try:
        y = attrs["coordinate"]
        height = attrs["height"]
        origin = attrs["subroworigin"]
        num_sites = attrs["numsites"]
    except KeyError as exc:
        raise BookshelfError(f"{path}: CoreRow missing attribute {exc}") from None
    spacing = attrs.get("sitespacing", attrs.get("sitewidth", 1.0))
    return Row(
        y=y,
        height=height,
        xl=origin,
        xh=origin + num_sites * spacing,
        site_width=spacing,
    )


def _read_wts(path: Optional[str]) -> Dict[str, float]:
    weights: Dict[str, float] = {}
    if path is None or not os.path.exists(path):
        return weights
    lines = _skip_header(_content_lines(path), "wts")
    for line in lines:
        tokens = line.split()
        if len(tokens) >= 2:
            value = _parse_float(tokens[1])
            if value is not None:
                weights[tokens[0]] = value
    return weights


def _region_from_rows(rows: List[Row]) -> PlacementRegion:
    xl = min(r.xl for r in rows)
    xh = max(r.xh for r in rows)
    yl = min(r.y for r in rows)
    yh = max(r.y + r.height for r in rows)
    return PlacementRegion(xl, yl, xh, yh, rows)
