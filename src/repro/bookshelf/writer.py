"""Bookshelf writer: persist a netlist (+ positions) as a benchmark dir."""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.netlist import Netlist


def write_bookshelf(
    netlist: Netlist,
    directory: str,
    design: Optional[str] = None,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> str:
    """Write ``<design>.{aux,nodes,nets,pl,scl,wts}`` under ``directory``.

    ``x, y`` are cell-center positions; when omitted, the netlist's stored
    positions are used (fixed cells placed, movables possibly NaN →
    written as 0).  Returns the ``.aux`` path.
    """
    design = design or netlist.name
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, design)
    _write_nodes(netlist, base + ".nodes")
    _write_nets(netlist, base + ".nets")
    write_pl(netlist, base + ".pl", x=x, y=y)
    _write_scl(netlist, base + ".scl")
    _write_wts(netlist, base + ".wts")
    aux_path = base + ".aux"
    with open(aux_path, "w") as handle:
        handle.write(
            "RowBasedPlacement : "
            f"{design}.nodes {design}.nets {design}.wts {design}.pl {design}.scl\n"
        )
    return aux_path


def write_pl(
    netlist: Netlist,
    path: str,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> None:
    """Write a ``.pl`` placement file (lower-left corners)."""
    if x is None or y is None:
        x, y = netlist.initial_positions()
    llx = np.where(np.isnan(x), 0.0, x - 0.5 * netlist.cell_w)
    lly = np.where(np.isnan(y), 0.0, y - 0.5 * netlist.cell_h)
    with open(path, "w") as handle:
        handle.write("UCLA pl 1.0\n\n")
        for i, name in enumerate(netlist.cell_name):
            suffix = "" if netlist.movable[i] else " /FIXED"
            handle.write(f"{name} {llx[i]:.10g} {lly[i]:.10g} : N{suffix}\n")


def _write_nodes(netlist: Netlist, path: str) -> None:
    num_terminals = netlist.num_cells - netlist.num_movable
    with open(path, "w") as handle:
        handle.write("UCLA nodes 1.0\n\n")
        handle.write(f"NumNodes : {netlist.num_cells}\n")
        handle.write(f"NumTerminals : {num_terminals}\n")
        for i, name in enumerate(netlist.cell_name):
            suffix = "" if netlist.movable[i] else " terminal"
            handle.write(
                f"{name} {netlist.cell_w[i]:.10g} {netlist.cell_h[i]:.10g}{suffix}\n"
            )


def _write_nets(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write("UCLA nets 1.0\n\n")
        handle.write(f"NumNets : {netlist.num_nets}\n")
        handle.write(f"NumPins : {netlist.num_pins}\n")
        for e, net in enumerate(netlist.net_name):
            start, stop = netlist.net_start[e], netlist.net_start[e + 1]
            handle.write(f"NetDegree : {stop - start} {net}\n")
            for p in range(start, stop):
                cell = netlist.cell_name[netlist.pin2cell[p]]
                handle.write(
                    f"  {cell} I : {netlist.pin_dx[p]:.10g} {netlist.pin_dy[p]:.10g}\n"
                )


def _write_scl(netlist: Netlist, path: str) -> None:
    rows = netlist.region.rows
    with open(path, "w") as handle:
        handle.write("UCLA scl 1.0\n\n")
        handle.write(f"NumRows : {len(rows)}\n")
        for row in rows:
            handle.write("CoreRow Horizontal\n")
            handle.write(f"  Coordinate : {row.y:.10g}\n")
            handle.write(f"  Height : {row.height:.10g}\n")
            handle.write(f"  Sitewidth : {row.site_width:.10g}\n")
            handle.write(f"  Sitespacing : {row.site_width:.10g}\n")
            handle.write("  Siteorient : 1\n")
            handle.write("  Sitesymmetry : 1\n")
            handle.write(
                f"  SubrowOrigin : {row.xl:.10g} NumSites : {row.num_sites}\n"
            )
            handle.write("End\n")


def _write_wts(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write("UCLA wts 1.0\n\n")
        for e, net in enumerate(netlist.net_name):
            handle.write(f"{net} {netlist.net_weight[e]:.10g}\n")
