"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``place``     run a placement flow on a bookshelf benchmark or a named
              synthetic design and write the result as a ``.pl`` file
``batch``     run a JSON/JSONL manifest of placement jobs through the
              parallel runtime (worker pool + result cache + events)
``stats``     print Table-1-style statistics for a design
``generate``  write a synthetic design as a bookshelf benchmark directory
``train-fno`` train (and cache) the neural guidance model
``lint``      run the repo-specific static analysis rules (repro.analysis)
              over source paths; exit 0 clean / 1 violations / 2 usage
``bench``     benchmark the hot placement operators (workspace arena vs
              allocating fallback) and write BENCH_operator.json; with
              ``--compare`` gate against a saved report
``serve``     run the placement daemon (HTTP job API, warm workers)
``chaos``     seeded service-chaos soak: boot a real daemon against a
              deterministic service fault plan (hung workers, slow I/O,
              shm unlinks, cache/journal corruption, crash-on-attach),
              audit that no ticket is lost and recovery is bit-identical,
              and write a CHAOS_report.json artifact
``explore``   population-based global exploration over checkpoint forks:
              run a cohort of GP trajectories, rank at synchronization
              rounds, fork the leaders with bounded perturbations, cull
              the laggards; ``--bench`` gates the cohort against the
              single-run baseline at equal core-seconds

Every command accepts either a ``.aux`` path or a named design from the
ISPD-like suites (``adaptec1`` … ``superblue16_a``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.benchgen import ISPD2005_LIKE, ISPD2015_LIKE, make_design
from repro.netlist import Netlist, compute_stats


def _load_design(target: str, scale: float, cells: Optional[int]) -> Netlist:
    """Resolve a CLI design argument: .aux file path or suite name."""
    if target.endswith(".aux") or os.path.exists(target):
        from repro.bookshelf import read_bookshelf

        return read_bookshelf(target)
    if target in ISPD2005_LIKE or target in ISPD2015_LIKE:
        return make_design(target, scale=scale, num_cells=cells)
    raise SystemExit(
        f"error: {target!r} is neither an existing .aux file nor a known "
        f"design name"
    )


def _cmd_place(args: argparse.Namespace) -> int:
    from repro.core import PlacementParams
    from repro.flow import run_flow

    netlist = _load_design(args.design, args.scale, args.cells)
    params = PlacementParams(
        target_density=args.target_density,
        max_iterations=args.max_iterations,
        verbose=args.verbose,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
    )
    predictor = None
    if args.placer == "xplace-nn":
        from repro.nn import get_pretrained_model, make_field_predictor

        model = get_pretrained_model(verbose=args.verbose)
        predictor = make_field_predictor(model, netlist.region)

    # Every placer choice — quadratic included — runs through the same
    # pipeline composition (repro.pipeline) behind run_flow.
    result = run_flow(
        netlist,
        placer=args.placer,
        params=params,
        field_predictor=predictor,
        dp_passes=args.dp_passes,
        route=args.route,
        checkpoint_dir=args.recover,
        resume=args.recover is not None,
    )
    if result.report is not None:
        gp_metrics = result.report.metrics
        if gp_metrics.get("gp_resumed_from") is not None:
            print(f"resumed from checkpoint at iteration "
                  f"{gp_metrics['gp_resumed_from']}")
        if gp_metrics.get("gp_rollbacks"):
            print(f"recovered from {gp_metrics['gp_rollbacks']} "
                  f"divergence rollback(s)"
                  + (" — degraded to best checkpoint"
                     if gp_metrics.get("gp_degraded") else ""))
    if args.placer == "quadratic":
        print(
            f"{netlist.name}: HPWL {result.final_hpwl:.6g} "
            f"(quadratic GP {result.gp_hpwl:.6g} in {result.gp_seconds:.2f}s, "
            f"LG+DP {result.dp_seconds:.2f}s, legal={result.legal})"
        )
    else:
        print(
            f"{netlist.name}: HPWL {result.final_hpwl:.6g} "
            f"(GP {result.gp_hpwl:.6g} in {result.gp_seconds:.2f}s / "
            f"{result.gp_iterations} iters, LG+DP {result.dp_seconds:.2f}s, "
            f"legal={result.legal})"
        )
    if args.route:
        print(f"top5 overflow: {result.top5_overflow:.2f} "
              f"(GR {result.gr_seconds:.2f}s)")
    if args.out:
        from repro.bookshelf import write_pl

        write_pl(netlist, args.out, x=result.x, y=result.y)
        print(f"wrote {args.out}")
    if args.svg:
        from repro.viz import placement_svg

        placement_svg(netlist, result.x, result.y, path=args.svg)
        print(f"wrote {args.svg}")
    return 0 if result.legal else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.runtime import (
        EventLog, ResultCache, load_manifest, run_batch, summary_table,
    )

    jobs = load_manifest(args.manifest)
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    events = EventLog(path=args.events, echo=args.verbose)
    try:
        results, _ = run_batch(
            jobs,
            max_workers=args.workers,
            cache=cache,
            events=events,
            start_method=args.start_method,
            heartbeat_every=args.heartbeat_every,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    finally:
        events.close()
    print(summary_table(jobs, results, cache=cache))
    if args.events:
        print(f"wrote {len(events)} events to {args.events}")
    failed = [r for r in results if r.status in ("failed", "timeout")]
    for result in failed:
        print(f"FAILED {result.job_id}: {result.error}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    netlist = _load_design(args.design, args.scale, args.cells)
    stats = compute_stats(netlist)
    print(f"design       : {stats.design}")
    print(f"cells        : {stats.num_cells} "
          f"({stats.num_movable} movable, {stats.num_fixed} fixed)")
    print(f"nets         : {stats.num_nets}")
    print(f"pins         : {stats.num_pins}")
    print(f"avg net deg  : {stats.avg_net_degree:.2f} "
          f"(max {stats.max_net_degree})")
    print(f"utilization  : {stats.utilization:.3f}")
    region = netlist.region
    print(f"die          : ({region.xl:.0f},{region.yl:.0f})-"
          f"({region.xh:.0f},{region.yh:.0f}), {len(region.rows)} rows")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bookshelf import write_bookshelf

    netlist = _load_design(args.design, args.scale, args.cells)
    aux = write_bookshelf(netlist, args.out)
    print(f"wrote {aux}")
    return 0


def _cmd_train_fno(args: argparse.Namespace) -> int:
    from repro.nn import get_pretrained_model

    model = get_pretrained_model(cache_path=args.cache, verbose=True)
    print(f"guidance model ready ({model.num_parameters()} parameters)")
    return 0


def _split_rules(value: Optional[str]):
    if not value:
        return None
    return frozenset(name.strip() for name in value.split(",") if name.strip())


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        EXIT_CLEAN,
        EXIT_USAGE,
        EXIT_VIOLATIONS,
        Baseline,
        LintConfig,
        LintEngine,
        changed_files,
        default_rules,
        render_json,
        render_text,
    )

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            scope = "kernel-only" if rule.kernel_only else "repo-wide"
            print(
                f"{rule.name:28s} [{scope}, {rule.severity}] {rule.description}"
            )
        return EXIT_CLEAN
    config = LintConfig(
        select=_split_rules(args.select), ignore=_split_rules(args.ignore) or frozenset()
    )
    try:
        config.validate(frozenset(rule.name for rule in rules))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    baseline = Baseline()
    baseline_path = args.baseline
    if not args.no_baseline:
        if baseline_path is None and os.path.isfile("LINT_BASELINE.json"):
            baseline_path = "LINT_BASELINE.json"
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"error: bad baseline file: {exc}", file=sys.stderr)
                return EXIT_USAGE

    engine = LintEngine(rules=rules, config=config)
    try:
        if args.changed is not None:
            ref = args.changed or "HEAD"
            try:
                changed = changed_files(ref)
            except RuntimeError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE
            files = [
                f for f in engine._discover(args.paths)
                if os.path.abspath(f) in changed
            ]
            violations = engine.lint_paths(files)
        else:
            violations = engine.lint_paths(args.paths)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    new, suppressed, stale = baseline.partition(violations)
    if args.format == "json":
        print(render_json(new, baselined=len(suppressed), stale_baseline=stale))
    else:
        print(render_text(new, baselined=len(suppressed), stale_baseline=stale))
    return EXIT_VIOLATIONS if new else EXIT_CLEAN


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.warm:
        from repro.service.bench import (
            format_warm_report,
            warm_latency_bench,
            write_warm_report,
        )

        report = warm_latency_bench(
            design=args.warm_design,
            cells=args.warm_cells,
            repeats=args.warm_repeats,
            start_method=args.warm_start_method,
        )
        print(format_warm_report(report))
        out = args.out if args.out != "BENCH_operator.json" \
            else "BENCH_service.json"
        print(f"wrote {write_warm_report(report, out)}")
        return 0

    from repro.perf.bench import (
        compare_reports,
        format_report,
        load_report,
        run_bench,
        write_report,
    )

    report = run_bench(
        size=args.size,
        iters=args.iters,
        warmup=args.warmup,
        seed=args.seed,
        trajectory_iters=args.trajectory_iters,
    )
    print(format_report(report))
    path = write_report(report, args.out)
    print(f"wrote {path}")
    if not report["gradients_identical"]:
        print("error: workspace and fallback gradients differ",
              file=sys.stderr)
        return 1
    traj = report.get("trajectory")
    if traj and not (traj["hpwl_identical"] and traj["positions_identical"]):
        print("error: workspace run diverged from fallback trajectory",
              file=sys.stderr)
        return 1
    if args.compare:
        try:
            previous = load_report(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        problems = compare_reports(report, previous,
                                   threshold=args.threshold)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.compare} "
              f"(threshold {args.threshold * 100:.0f}%)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import serve

    return serve(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        start_method=args.start_method,
        heartbeat_every=args.heartbeat_every,
        default_quota=args.quota,
        max_queue_depth=args.max_queue_depth,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.supervision import ChaosConfig, chaos_fingerprint, run_chaos

    def run() -> "object":
        config = ChaosConfig(
            seed=args.seed,
            jobs=args.jobs,
            workers=args.workers,
            design=args.design,
            cells=args.cells,
            iterations=args.iterations,
            deadline=args.deadline,
            hang_timeout=args.hang_timeout,
            soak_timeout=args.soak_timeout,
            state_dir=args.state_dir,
            start_method=args.start_method,
            restart=not args.no_restart,
        )
        return run_chaos(config)

    report = run()
    print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.out}")
    if args.check_determinism:
        if args.state_dir:
            print("error: --check-determinism needs fresh state dirs; "
                  "drop --state-dir", file=sys.stderr)
            return 2
        second = run()
        a = chaos_fingerprint(report)
        b = chaos_fingerprint(second)
        if a != b:
            print(f"error: same-seed soaks diverged: {a} != {b}",
                  file=sys.stderr)
            return 1
        print(f"determinism: two seed-{args.seed} soaks agree ({a[:16]}…)")
        if not second.ok:
            for violation in second.violations:
                print(f"second run VIOLATION: {violation}", file=sys.stderr)
            return 1
    return 0 if report.ok else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core.params import PlacementParams
    from repro.explore import ExploreConfig, PopulationController
    from repro.runtime.cache import ResultCache
    from repro.runtime.events import EventLog
    from repro.runtime.job import PlacementJob

    if args.design.endswith(".aux") or os.path.exists(args.design):
        source = {"aux": args.design}
    elif args.design in ISPD2005_LIKE or args.design in ISPD2015_LIKE:
        source = {"design": args.design, "scale": args.scale,
                  "cells": args.cells}
    else:
        print(f"error: {args.design!r} is neither an existing .aux file "
              f"nor a known design name", file=sys.stderr)
        return 2
    params = PlacementParams(
        max_iterations=args.max_iterations,
        seed=args.seed,
    )
    base = PlacementJob(params=params, **source)
    config = ExploreConfig(
        population=args.population,
        rounds=args.rounds,
        survivors=args.survivors,
        seed=args.seed if args.cohort_seed is None else args.cohort_seed,
        segment_iters=args.segment_iters,
        budget_core_seconds=args.budget_core_seconds,
        workers=args.workers,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    events = EventLog(path=args.events, echo=args.verbose)
    with events:
        controller = PopulationController(
            base, config, cache=cache, events=events, workdir=args.workdir
        )
        report = controller.run()
    print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.out}")
    if args.bench:
        from repro.perf.bench import (
            format_explore_report,
            run_explore_bench,
            write_report,
        )

        bench = run_explore_bench(
            population=args.population,
            rounds=args.rounds,
            survivors=args.survivors,
            seed=args.seed,
            cohort_seed=config.seed,
            max_iterations=args.max_iterations,
            segment_iters=args.segment_iters,
            workers=args.workers,
            workdir=args.workdir,
            **source,
        )
        print(format_explore_report(bench))
        print(f"wrote {write_report(bench, args.bench)}")
        if not bench["matches_single_run"]:
            print("error: cohort best HPWL is worse than the single-run "
                  "baseline", file=sys.stderr)
            return 1
    return 0 if report.best_hpwl is not None else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Xplace reproduction: analytical global placement flows",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_design_args(p):
        p.add_argument("design", help=".aux path or suite design name")
        p.add_argument("--scale", type=float, default=0.01,
                       help="suite scale factor (default 0.01)")
        p.add_argument("--cells", type=int, default=None,
                       help="override the movable cell count")

    place = sub.add_parser("place", help="run a placement flow")
    add_design_args(place)
    place.add_argument("--placer", default="xplace",
                       choices=["xplace", "baseline", "xplace-nn", "quadratic"])
    place.add_argument("--out", default=None, help="output .pl path")
    place.add_argument("--svg", default=None,
                       help="write the placement as an SVG image")
    place.add_argument("--dp-passes", type=int, default=1)
    place.add_argument("--route", action="store_true",
                       help="also run global routing (top5 overflow)")
    place.add_argument("--target-density", type=float, default=0.9)
    place.add_argument("--max-iterations", type=int, default=1000)
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--recover", default=None, metavar="DIR",
                       help="arm checkpoint/rollback recovery, spilling "
                            "GP checkpoints to DIR and resuming from any "
                            "checkpoint a killed run left there")
    place.add_argument("--checkpoint-every", type=int, default=0,
                       help="GP iterations between recovery checkpoints "
                            "(0 = default cadence when --recover is set)")
    place.add_argument("--verbose", action="store_true")
    place.set_defaults(handler=_cmd_place)

    batch = sub.add_parser(
        "batch", help="run a manifest of placement jobs in parallel"
    )
    batch.add_argument("manifest",
                       help="JSON/JSONL job manifest (see repro.runtime)")
    batch.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes (1 = in-process)")
    batch.add_argument("--cache-dir", default=".repro-cache",
                       help="result cache directory (default .repro-cache)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    batch.add_argument("--events", default=None,
                       help="append runtime events to this JSONL file")
    batch.add_argument("--start-method", default=None,
                       choices=["fork", "spawn", "forkserver"],
                       help="multiprocessing start method (default: auto)")
    batch.add_argument("--heartbeat-every", type=int, default=25,
                       help="GP iterations between heartbeat events")
    batch.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="spill GP checkpoints under DIR so crash/"
                            "timeout retries resume mid-run")
    batch.add_argument("--resume", action="store_true",
                       help="resume jobs from checkpoints a killed batch "
                            "left in --checkpoint-dir")
    batch.add_argument("--verbose", action="store_true",
                       help="echo every runtime event to stdout")
    batch.set_defaults(handler=_cmd_batch)

    stats = sub.add_parser("stats", help="print design statistics")
    add_design_args(stats)
    stats.set_defaults(handler=_cmd_stats)

    generate = sub.add_parser("generate", help="write a bookshelf benchmark")
    add_design_args(generate)
    generate.add_argument("--out", required=True, help="output directory")
    generate.set_defaults(handler=_cmd_generate)

    train = sub.add_parser("train-fno", help="train/cache the guidance model")
    train.add_argument("--cache", default=None, help="weights cache path")
    train.set_defaults(handler=_cmd_train_fno)

    lint = sub.add_parser(
        "lint", help="run the repo-specific static analysis rules"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default src/repro)")
    lint.add_argument("--format", default="text", choices=["text", "json"],
                      help="report format")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule names to run exclusively")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule names to skip")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the available rules and exit")
    lint.add_argument("--changed", nargs="?", const="HEAD", default=None,
                      metavar="REF",
                      help="lint only .py files changed vs REF "
                           "(git diff + untracked; default HEAD)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline file of justified intentional findings "
                           "(default: LINT_BASELINE.json when present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring any baseline file")
    lint.set_defaults(handler=_cmd_lint)

    bench = sub.add_parser(
        "bench", help="benchmark the hot operators (workspace vs fallback)"
    )
    bench.add_argument("--size", default="tiny",
                       choices=["tiny", "small", "medium"],
                       help="synthetic design size (default tiny)")
    bench.add_argument("--iters", type=int, default=None,
                       help="measured gradient steps (default per size)")
    bench.add_argument("--warmup", type=int, default=3,
                       help="unmeasured warm-up steps (default 3)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--trajectory-iters", type=int, default=0,
                       metavar="N",
                       help="also replay N real GP iterations in both "
                            "modes and require bit-identical HPWL "
                            "trajectories (0 = skip)")
    bench.add_argument("--out", default="BENCH_operator.json",
                       help="report path (default BENCH_operator.json)")
    bench.add_argument("--compare", default=None, metavar="JSON",
                       help="gate against a previously saved report")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="fractional slowdown considered a regression "
                            "with --compare (default 0.25)")
    bench.add_argument("--warm", action="store_true",
                       help="benchmark warm-worker submit-to-first-"
                            "iteration latency instead (service layer); "
                            "writes BENCH_service.json")
    bench.add_argument("--warm-design", default="fft_1",
                       help="design for --warm (default fft_1)")
    bench.add_argument("--warm-cells", type=int, default=120,
                       help="cell count for --warm (default 120)")
    bench.add_argument("--warm-repeats", type=int, default=5,
                       help="measured samples per mode for --warm")
    bench.add_argument("--warm-start-method", default=None,
                       choices=["fork", "spawn", "forkserver"],
                       help="worker start method for --warm")
    bench.set_defaults(handler=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the placement daemon (HTTP job API)"
    )
    serve.add_argument("--state-dir", default=".repro-serve",
                       help="durable state root: journal, events, cache "
                            "and checkpoints (default .repro-serve)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port, 0 = ephemeral (default 8787)")
    serve.add_argument("--workers", type=int, default=2,
                       help="warm worker processes (default 2)")
    serve.add_argument("--start-method", default=None,
                       choices=["fork", "spawn", "forkserver"],
                       help="multiprocessing start method (default: auto)")
    serve.add_argument("--heartbeat-every", type=int, default=25,
                       help="GP iterations between heartbeat events")
    serve.add_argument("--quota", type=int, default=None,
                       help="max concurrently running jobs per tenant "
                            "(default: unlimited)")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="max queued (not yet running) jobs per tenant; "
                            "submits beyond it get HTTP 429 + Retry-After "
                            "(default: unlimited)")
    serve.set_defaults(handler=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="seeded service-chaos soak against a real daemon",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="soak seed; derives the whole fault schedule "
                            "(default 0)")
    chaos.add_argument("--jobs", type=int, default=20,
                       help="soak jobs (clean twins come on top; "
                            "default 20)")
    chaos.add_argument("--workers", type=int, default=2,
                       help="warm worker processes (default 2)")
    chaos.add_argument("--design", default="fft_1",
                       help="suite design for the soak jobs "
                            "(default fft_1)")
    chaos.add_argument("--cells", type=int, default=100,
                       help="movable cells per soak job (default 100)")
    chaos.add_argument("--iterations", type=int, default=40,
                       help="GP iterations per soak job (default 40)")
    chaos.add_argument("--deadline", type=float, default=60.0,
                       help="per-job wall-clock budget in seconds; the "
                            "hung job must be preempted well under it "
                            "(default 60)")
    chaos.add_argument("--hang-timeout", type=float, default=2.0,
                       help="liveness silence threshold in seconds "
                            "(default 2)")
    chaos.add_argument("--soak-timeout", type=float, default=300.0,
                       help="overall harness budget in seconds "
                            "(default 300)")
    chaos.add_argument("--state-dir", default=None,
                       help="daemon state root (default: fresh temp dir)")
    chaos.add_argument("--start-method", default=None,
                       choices=["fork", "spawn", "forkserver"],
                       help="multiprocessing start method (default: auto)")
    chaos.add_argument("--no-restart", action="store_true",
                       help="skip the journal-damage restart leg")
    chaos.add_argument("--out", default=None, metavar="JSON",
                       help="write the ChaosReport here "
                            "(e.g. CHAOS_report.json)")
    chaos.add_argument("--check-determinism", action="store_true",
                       help="run the soak twice and require identical "
                            "fingerprints")
    chaos.set_defaults(handler=_cmd_chaos)

    explore = sub.add_parser(
        "explore",
        help="population-based exploration over checkpoint forks",
    )
    add_design_args(explore)
    explore.add_argument("--population", type=int, default=4,
                         help="cohort members (default 4)")
    explore.add_argument("--rounds", type=int, default=3,
                         help="synchronization rounds (default 3)")
    explore.add_argument("--survivors", type=int, default=2,
                         help="lineages continued per round (default 2)")
    explore.add_argument("--seed", type=int, default=0,
                         help="base placement seed; also the cohort seed "
                              "unless --cohort-seed is given (default 0)")
    explore.add_argument("--cohort-seed", type=int, default=None,
                         help="separate seed for the perturbation draws")
    explore.add_argument("--max-iterations", type=int, default=1000,
                         help="per-lineage GP iteration budget")
    explore.add_argument("--segment-iters", type=int, default=None,
                         help="fixed segment length in GP iterations "
                              "(default: split the budget evenly)")
    explore.add_argument("--budget-core-seconds", type=float, default=None,
                         help="collapse the remaining rounds once the "
                              "cohort has spent this much compute "
                              "(makes the run non-round-deterministic)")
    explore.add_argument("--workers", type=int, default=1,
                         help="parallel worker processes (1 = in-process)")
    explore.add_argument("--workdir", default=None,
                         help="checkpoint/fork spill root (default: temp)")
    explore.add_argument("--cache-dir", default=".repro-cache",
                         help="result cache directory (default .repro-cache)")
    explore.add_argument("--no-cache", action="store_true",
                         help="disable the result cache")
    explore.add_argument("--events", default=None,
                         help="append runtime events to this JSONL file")
    explore.add_argument("--out", default=None, metavar="JSON",
                         help="write the full cohort report here")
    explore.add_argument("--bench", default=None, metavar="JSON",
                         help="also run the equal-core-seconds comparison "
                              "vs a single run and write BENCH_explore-"
                              "style JSON here (fails if the cohort is "
                              "worse than the baseline)")
    explore.add_argument("--verbose", action="store_true",
                         help="echo every runtime event to stdout")
    explore.set_defaults(handler=_cmd_explore)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
