"""The Xplace placement core engine (Figure 1 of the paper).

The engine is split exactly along the paper's architecture so each part
can be replaced independently:

* :class:`GradientEngine` — cell positions + parameters → cell gradient
  (fused wirelength operator, extracted density operators, optional
  neural guidance, density-operator skipping);
* the optimizer (``repro.optim``) — gradient → position update;
* :class:`Evaluator` — solution metrics (HPWL, overflow);
* :class:`Recorder` — per-iteration metric traces;
* :class:`Scheduler` — γ/λ updates, the placement-stage-aware slowdown
  (Algorithm 1) and the stopping decision;
* :class:`XPlacer` — the loop tying them together.
"""

from repro.core.params import PlacementParams
from repro.core.initializer import initial_positions
from repro.core.recorder import IterationRecord, Recorder
from repro.core.callbacks import (
    CallbackList,
    IterationCallback,
    LoopStart,
    LoopStop,
    QueueCallback,
    RecorderCallback,
    VerboseCallback,
)
from repro.core.evaluator import Evaluator
from repro.core.scheduler import Scheduler
from repro.core.gradient_engine import GradientEngine, GradientResult
from repro.core.placer import PlacementResult, XPlacer

__all__ = [
    "PlacementParams",
    "initial_positions",
    "IterationRecord",
    "Recorder",
    "CallbackList",
    "IterationCallback",
    "LoopStart",
    "LoopStop",
    "QueueCallback",
    "RecorderCallback",
    "VerboseCallback",
    "Evaluator",
    "Scheduler",
    "GradientEngine",
    "GradientResult",
    "PlacementResult",
    "XPlacer",
]
