"""Iteration callbacks: the observability seam of the GP main loop.

Both :class:`~repro.core.placer.XPlacer` and the DREAMPlace-style
baseline emit their per-iteration telemetry through the same three-event
protocol — ``on_start`` once before the first iteration, ``on_iteration``
once per GP iteration (with the full :class:`IterationRecord`), and
``on_stop`` exactly once after the loop ends, whether it converged early
or exhausted ``max_iterations``.  The historical behaviours — the
:class:`~repro.core.recorder.Recorder` trace store and the ``verbose``
console line — are the two stock callbacks below; checkpointing,
live dashboards or convergence watchdogs attach the same way without
touching the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core.recorder import IterationRecord, Recorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.params import PlacementParams


@dataclass(frozen=True)
class LoopStart:
    """Payload of ``on_start``: what is about to be placed, and how."""

    design: str
    placer: str
    params: "PlacementParams"
    num_movable: int
    num_fillers: int


@dataclass(frozen=True)
class LoopStop:
    """Payload of ``on_stop``: how the loop ended."""

    design: str
    iterations: int
    converged: bool
    gp_seconds: float
    hpwl: float
    overflow: float


class IterationCallback:
    """Protocol for GP-loop observers (subclass or duck-type).

    All three hooks default to no-ops so a callback overrides only the
    events it cares about.  Hooks must not mutate placement state; they
    observe it.
    """

    def on_start(self, info: LoopStart) -> None:
        """Called once, before the first gradient evaluation."""

    def on_iteration(self, record: IterationRecord) -> None:
        """Called once per GP iteration with that iteration's metrics."""

    def on_stop(self, info: LoopStop) -> None:
        """Called exactly once after the loop ends (early stop included)."""


class CallbackList(IterationCallback):
    """Fans one event stream out to many callbacks, in insertion order."""

    def __init__(self, callbacks: Optional[Iterable[IterationCallback]] = None) -> None:
        self.callbacks: List[IterationCallback] = list(callbacks or [])

    def add(self, callback: IterationCallback) -> "CallbackList":
        self.callbacks.append(callback)
        return self

    def on_start(self, info: LoopStart) -> None:
        for callback in self.callbacks:
            callback.on_start(info)

    def on_iteration(self, record: IterationRecord) -> None:
        for callback in self.callbacks:
            callback.on_iteration(record)

    def on_stop(self, info: LoopStop) -> None:
        for callback in self.callbacks:
            callback.on_stop(info)


class RecorderCallback(IterationCallback):
    """Stock callback: appends every iteration to a :class:`Recorder`."""

    def __init__(self, recorder: Optional[Recorder] = None) -> None:
        self.recorder = recorder if recorder is not None else Recorder()

    def on_iteration(self, record: IterationRecord) -> None:
        self.recorder.log(record)


class VerboseCallback(IterationCallback):
    """Stock callback: the classic periodic console progress line.

    ``extended`` selects between the XPlacer line (γ/λ/ω included) and
    the baseline's shorter one.
    """

    def __init__(self, label: str, every: int = 50, extended: bool = True) -> None:
        self.label = label
        self.every = max(1, int(every))
        self.extended = extended

    def on_iteration(self, record: IterationRecord) -> None:
        if record.iteration % self.every != 0:
            return
        line = (
            f"[{self.label}] iter {record.iteration:4d} "
            f"hpwl {record.hpwl:.4g} ovfl {record.overflow:.3f}"
        )
        if self.extended:
            line += (
                f" gamma {record.gamma:.3g} lambda {record.lam:.3g} "
                f"omega {record.omega:.3f}"
            )
        print(line)
