"""Iteration callbacks: the observability seam of the GP main loop.

Both :class:`~repro.core.placer.XPlacer` and the DREAMPlace-style
baseline emit their per-iteration telemetry through the same three-event
protocol — ``on_start`` once before the first iteration, ``on_iteration``
once per GP iteration (with the full :class:`IterationRecord`), and
``on_stop`` exactly once after the loop ends, whether it converged early
or exhausted ``max_iterations``.  The historical behaviours — the
:class:`~repro.core.recorder.Recorder` trace store and the ``verbose``
console line — are the two stock callbacks below; checkpointing,
live dashboards or convergence watchdogs attach the same way without
touching the loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core.recorder import IterationRecord, Recorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.params import PlacementParams


@dataclass(frozen=True)
class LoopStart:
    """Payload of ``on_start``: what is about to be placed, and how."""

    design: str
    placer: str
    params: "PlacementParams"
    num_movable: int
    num_fillers: int


@dataclass(frozen=True)
class LoopStop:
    """Payload of ``on_stop``: how the loop ended."""

    design: str
    iterations: int
    converged: bool
    gp_seconds: float
    hpwl: float
    overflow: float


@dataclass(frozen=True)
class Diagnostic:
    """Payload of ``on_diagnostic``: a numerical fault caught in the loop.

    Emitted (before the loop aborts) by the non-finite guard in
    :class:`~repro.core.placer.XPlacer` and by sanitize-mode checks, so
    runtime consumers see *why* a placement died, with provenance: the
    GP iteration, the stage that detected it, and the offending op.
    ``best_hpwl``/``best_iteration`` situate the fault against the run's
    best-seen solution (how far back a rollback would have to reach);
    they default to "no best seen" for emitters without that context.
    """

    design: str
    iteration: int
    stage: str
    op: str
    message: str
    best_hpwl: float = float("inf")
    best_iteration: int = -1


@dataclass(frozen=True)
class RecoveryEvent:
    """Payload of ``on_recovery``: one self-healing action by the loop.

    ``action`` is one of ``checkpoint`` (snapshot saved), ``rollback``
    (state restored from a snapshot with a mutated continuation),
    ``resumed`` (a fresh process restored a spilled checkpoint), or
    ``degraded`` (rollback budget exhausted; best-seen snapshot
    returned).  ``iteration`` is where the loop was when it acted;
    ``snapshot_iteration`` is the iteration the involved snapshot had
    captured (they coincide for ``checkpoint``).
    """

    design: str
    action: str
    iteration: int
    snapshot_iteration: int
    reason: str
    rollbacks: int


class IterationCallback:
    """Protocol for GP-loop observers (subclass or duck-type).

    All three hooks default to no-ops so a callback overrides only the
    events it cares about.  Hooks must not mutate placement state; they
    observe it.
    """

    def on_start(self, info: LoopStart) -> None:
        """Called once, before the first gradient evaluation."""

    def on_iteration(self, record: IterationRecord) -> None:
        """Called once per GP iteration with that iteration's metrics."""

    def on_stop(self, info: LoopStop) -> None:
        """Called exactly once after the loop ends (early stop included)."""

    def on_diagnostic(self, info: Diagnostic) -> None:
        """Called when a numerical fault aborts the loop (before raising)."""

    def on_recovery(self, info: RecoveryEvent) -> None:
        """Called on every checkpoint/rollback/resume/degrade action."""


class CallbackList(IterationCallback):
    """Fans one event stream out to many callbacks, in insertion order."""

    def __init__(self, callbacks: Optional[Iterable[IterationCallback]] = None) -> None:
        self.callbacks: List[IterationCallback] = list(callbacks or [])

    def add(self, callback: IterationCallback) -> "CallbackList":
        self.callbacks.append(callback)
        return self

    def on_start(self, info: LoopStart) -> None:
        for callback in self.callbacks:
            callback.on_start(info)

    def on_iteration(self, record: IterationRecord) -> None:
        for callback in self.callbacks:
            callback.on_iteration(record)

    def on_stop(self, info: LoopStop) -> None:
        for callback in self.callbacks:
            callback.on_stop(info)

    def on_diagnostic(self, info: Diagnostic) -> None:
        for callback in self.callbacks:
            # Duck-typed callbacks predating the diagnostic hook are fine.
            handler = getattr(callback, "on_diagnostic", None)
            if handler is not None:
                handler(info)

    def on_recovery(self, info: RecoveryEvent) -> None:
        for callback in self.callbacks:
            handler = getattr(callback, "on_recovery", None)
            if handler is not None:
                handler(info)


class QueueCallback(IterationCallback):
    """Bridges loop events into a queue-like sink as plain dicts.

    ``sink`` is anything with a ``put(dict)`` method (e.g. a
    ``multiprocessing.Queue`` or :class:`repro.runtime.events.EventLog`)
    or a bare callable.  Every message is a JSON-serializable dict with
    an ``"event"`` key (``loop_start`` / ``heartbeat`` / ``loop_stop``)
    and, when ``label`` is set, a ``"job_id"`` key — the schema the
    :mod:`repro.runtime` worker pool consumes from its worker processes.
    ``every`` rate-limits heartbeats to one per N iterations (iteration
    0 and multiples of N).
    """

    def __init__(self, sink, label: str = "", every: int = 25) -> None:
        self._put = sink.put if hasattr(sink, "put") else sink
        self.label = label
        self.every = max(1, int(every))

    def _send(self, event: str, **payload) -> None:
        message = {"event": event}
        if self.label:
            message["job_id"] = self.label
        message.update(payload)
        self._put(message)

    def on_start(self, info: LoopStart) -> None:
        self._send(
            "loop_start",
            design=info.design,
            placer=info.placer,
            num_movable=int(info.num_movable),
            num_fillers=int(info.num_fillers),
        )

    def on_iteration(self, record: IterationRecord) -> None:
        if record.iteration % self.every != 0:
            return
        self._send(
            "heartbeat",
            iteration=int(record.iteration),
            hpwl=float(record.hpwl),
            overflow=float(record.overflow),
        )

    def on_stop(self, info: LoopStop) -> None:
        self._send(
            "loop_stop",
            design=info.design,
            iterations=int(info.iterations),
            converged=bool(info.converged),
            gp_seconds=float(info.gp_seconds),
            hpwl=float(info.hpwl),
            overflow=float(info.overflow),
        )

    def on_diagnostic(self, info: Diagnostic) -> None:
        self._send(
            "diagnostic",
            design=info.design,
            iteration=int(info.iteration),
            stage=info.stage,
            op=info.op,
            message=info.message,
            # inf (no best seen yet) is not valid JSON — send null instead.
            best_hpwl=(
                float(info.best_hpwl) if math.isfinite(info.best_hpwl) else None
            ),
            best_iteration=int(info.best_iteration),
        )

    def on_recovery(self, info: RecoveryEvent) -> None:
        self._send(
            "recovery",
            design=info.design,
            action=info.action,
            iteration=int(info.iteration),
            snapshot_iteration=int(info.snapshot_iteration),
            reason=info.reason,
            rollbacks=int(info.rollbacks),
        )


class RecorderCallback(IterationCallback):
    """Stock callback: appends every iteration to a :class:`Recorder`."""

    def __init__(self, recorder: Optional[Recorder] = None) -> None:
        self.recorder = recorder if recorder is not None else Recorder()

    def on_iteration(self, record: IterationRecord) -> None:
        self.recorder.log(record)


class VerboseCallback(IterationCallback):
    """Stock callback: the classic periodic console progress line.

    ``extended`` selects between the XPlacer line (γ/λ/ω included) and
    the baseline's shorter one.
    """

    def __init__(self, label: str, every: int = 50, extended: bool = True) -> None:
        self.label = label
        self.every = max(1, int(every))
        self.extended = extended

    def on_iteration(self, record: IterationRecord) -> None:
        if record.iteration % self.every != 0:
            return
        line = (
            f"[{self.label}] iter {record.iteration:4d} "
            f"hpwl {record.hpwl:.4g} ovfl {record.overflow:.3f}"
        )
        if self.extended:
            line += (
                f" gamma {record.gamma:.3g} lambda {record.lam:.3g} "
                f"omega {record.omega:.3f}"
            )
        print(line)
