"""Placement solution evaluation (the Evaluator block of Figure 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.density import DensitySystem
from repro.netlist import Netlist
from repro.wirelength import hpwl as hpwl_fn


@dataclass(frozen=True)
class Evaluation:
    """Quality metrics of one placement solution."""

    hpwl: float
    overflow: float
    max_density: float


class Evaluator:
    """Computes solution metrics independently of the gradient engine, so
    reported numbers never depend on which operator fusions are active."""

    def __init__(self, netlist: Netlist, density: DensitySystem) -> None:
        self.netlist = netlist
        self.density = density

    def hpwl(self, x: np.ndarray, y: np.ndarray) -> float:
        return hpwl_fn(self.netlist, x, y)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Evaluation:
        density_map = self.density.density_map_only(x, y)
        from repro.density import overflow_ratio

        ovfl = overflow_ratio(
            density_map,
            self.density.grid,
            self.density.target_density,
            self.density.movable_area,
        )
        return Evaluation(
            hpwl=self.hpwl(x, y),
            overflow=ovfl,
            max_density=float(density_map.max()),
        )
