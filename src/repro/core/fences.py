"""Fence constraint handling for global placement.

DREAMPlace 3.0 enforces fence regions with one electrostatic system per
region (multi-electrostatics); this reproduction uses the lighter
*constraint projection* approach: after every optimizer step, each
fenced cell is projected into the nearest box of its fence, and
unconstrained cells are pushed out of fence boxes they drifted into.
Projection composes with the die clamp the placer already applies and
keeps the gradient machinery unchanged, at some cost in convergence
smoothness near fence boundaries (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.netlist import Netlist


class FenceProjector:
    """Projects optimizer-layout positions onto the fence constraints."""

    def __init__(self, netlist: Netlist, num_fillers: int = 0) -> None:
        self.netlist = netlist
        self.num_fillers = num_fillers
        movable = netlist.movable_index
        fence_of = netlist.cell_fence[movable]
        self._groups: List[Tuple[int, np.ndarray]] = []
        for g in range(len(netlist.fences)):
            members = np.flatnonzero(fence_of == g)
            if len(members):
                self._groups.append((g, members))
        self._free = np.flatnonzero(fence_of < 0)
        self._hw = netlist.cell_w[movable] / 2
        self._hh = netlist.cell_h[movable] / 2
        self._num_movable = len(movable)

    @property
    def active(self) -> bool:
        return bool(self._groups)

    # ------------------------------------------------------------------
    def project(self, pos_x: np.ndarray, pos_y: np.ndarray):
        """Return projected copies of optimizer-layout position vectors.

        Fillers (tail entries) are left untouched: they model whitespace
        globally and carry no region assignment.
        """
        if not self.active:
            return pos_x, pos_y
        x = pos_x.copy()
        y = pos_y.copy()
        nm = self._num_movable
        for g, members in self._groups:
            fence = self.netlist.fences[g]
            px, py = fence.clamp_into(
                x[members], y[members], self._hw[members], self._hh[members]
            )
            x[members] = px
            y[members] = py
        if len(self._free):
            x_free, y_free = self._push_out(
                x[self._free], y[self._free],
                self._hw[self._free], self._hh[self._free],
            )
            x[self._free] = x_free
            y[self._free] = y_free
        return x, y

    # ------------------------------------------------------------------
    def _push_out(self, x, y, hw, hh):
        """Move unconstrained cells out of any fence box they overlap.

        Each offender moves along the cheapest axis to the nearest box
        edge (plus its half extent).
        """
        for fence in self.netlist.fences:
            for (xl, yl, xh, yh) in fence.boxes:
                inside = (
                    (x + hw > xl) & (x - hw < xh) & (y + hh > yl) & (y - hh < yh)
                )
                if not inside.any():
                    continue
                idx = np.flatnonzero(inside)
                # Candidate exits: left, right, down, up.
                exits = np.stack(
                    [
                        np.abs(x[idx] - (xl - hw[idx])),
                        np.abs((xh + hw[idx]) - x[idx]),
                        np.abs(y[idx] - (yl - hh[idx])),
                        np.abs((yh + hh[idx]) - y[idx]),
                    ]
                )
                choice = np.argmin(exits, axis=0)
                x_new = x[idx].copy()
                y_new = y[idx].copy()
                x_new[choice == 0] = xl - hw[idx][choice == 0]
                x_new[choice == 1] = xh + hw[idx][choice == 1]
                y_new[choice == 2] = yl - hh[idx][choice == 2]
                y_new[choice == 3] = yh + hh[idx][choice == 3]
                x[idx] = x_new
                y[idx] = y_new
        return x, y
