"""The gradient engine (Figure 1): positions + parameters → cell gradient.

Computes the wirelength gradient through the fused WA operator, the
density gradient through the extracted density system (with early-stage
skipping), optionally blends in a neural field prediction (Eq. 14), and
preconditions the combined gradient.

``compute`` produces the raw components so λ can be initialised from the
first iteration's gradient norms; ``assemble`` folds the components into
the final preconditioned descent direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.analysis.sanitizer import active as _sanitizer_active
from repro.core.params import PlacementParams
from repro.density import DensitySystem
from repro.netlist import Netlist
from repro.ops import DensitySkipController, profiled
from repro.optim import Preconditioner
from repro.perf.workspace import Workspace, maybe_workspace
from repro.wirelength import WirelengthOp

# predictor(total_density_map) -> (field_x_map, field_y_map)
FieldPredictor = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]


def sigma_of_omega(omega: float) -> float:
    """Neural blending weight σ(ω) of Eq. 14.

    Implemented as the decaying logistic σ(ω) = 1 − 1/(1 + 5·e^{−(ω/0.05 − 0.5)})
    (the sign inside the printed formula is corrected so that σ ≈ 0.9 in
    the wirelength-dominated stage and decays to 0 as spreading starts,
    matching the paper's description of ∇_nn dominating early).
    """
    return 1.0 - 1.0 / (1.0 + 5.0 * np.exp(-(omega / 0.05 - 0.5)))


@dataclass
class GradientResult:
    """Raw gradient components of one iteration (pre-λ, pre-precondition).

    All arrays cover the optimizer layout: ``[movable cells; fillers]``.
    """

    wl_grad_x: np.ndarray
    wl_grad_y: np.ndarray
    density_grad_x: np.ndarray
    density_grad_y: np.ndarray
    wa: float
    hpwl: float
    overflow: float
    energy: float
    density_map: np.ndarray
    density_computed: bool
    wl_grad_norm: float
    density_grad_norm: float


class GradientEngine:
    """Stateful gradient computation for one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        density: DensitySystem,
        params: PlacementParams,
        field_predictor: Optional[FieldPredictor] = None,
    ) -> None:
        self.netlist = netlist
        self.density = density
        self.params = params
        self.field_predictor = field_predictor
        if params.operator_reduction:
            self.wirelength = WirelengthOp(
                netlist, combined=params.combined_wirelength
            )
        else:
            # OR off: spell the objective as autograd ops and invoke the
            # tape every iteration (the configuration Table 3 starts from).
            from repro.wirelength.wa_autograd import AutogradWirelengthOp

            self.wirelength = AutogradWirelengthOp(netlist)
        self.skip = DensitySkipController(
            ratio_threshold=params.skip_ratio_threshold,
            max_iteration=params.skip_max_iteration,
            period=params.skip_period,
            enabled=params.operator_skipping,
        )
        self.preconditioner = Preconditioner(netlist, density.fillers)
        self._mov_idx = netlist.movable_index
        self._num_movable = len(self._mov_idx)
        self._num_fillers = density.fillers.count
        self._cache: Optional[GradientResult] = None
        # The buffer arena the hot operators share (repro.perf).  The
        # engine owns it; operators receive it via attach_workspace so
        # ablation configs without the hook (e.g. the autograd op, the
        # duck-typed multi-electrostatics system) simply stay allocating.
        self.workspace: Optional[Workspace] = maybe_workspace(params.workspace)
        if self.workspace is not None:
            for op in (self.wirelength, density):
                attach = getattr(op, "attach_workspace", None)
                if attach is not None:
                    attach(self.workspace)
        self._init_x, self._init_y = netlist.initial_positions()

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return self._num_movable + self._num_fillers

    def split(self, pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split an optimizer vector into (movable, filler) views."""
        return pos[: self._num_movable], pos[self._num_movable :]

    def full_positions(
        self, pos_x: np.ndarray, pos_y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All-cell position arrays from the optimizer layout.

        With a workspace the template copy lands in reused ``eng.*``
        buffers (safe: consumers read them within the iteration and the
        density system re-gathers what it keeps).
        """
        ws = self.workspace
        if ws is not None:
            x = ws.get("eng.full_x", self._init_x.shape)
            y = ws.get("eng.full_y", self._init_y.shape)
            np.copyto(x, self._init_x)
            np.copyto(y, self._init_y)
        else:
            x, y = self.netlist.initial_positions()
        x[self._mov_idx] = pos_x[: self._num_movable]
        y[self._mov_idx] = pos_y[: self._num_movable]
        return x, y

    # ------------------------------------------------------------------
    def compute(
        self,
        iteration: int,
        pos_x: np.ndarray,
        pos_y: np.ndarray,
        gamma: float,
        lam_for_skip: float,
    ) -> GradientResult:
        """Evaluate gradient components at the given optimizer positions.

        ``lam_for_skip`` is only used to judge the skip ratio r; the
        returned density gradient is unscaled.
        """
        mov_x, filler_x = self.split(pos_x)
        mov_y, filler_y = self.split(pos_y)
        x, y = self.full_positions(pos_x, pos_y)
        ws = self.workspace
        nm, nv = self._num_movable, self.num_variables

        wl = self.wirelength(x, y, gamma)
        if ws is not None:
            # Same [movable; fillers] layout as the concatenations below,
            # assembled into reused eng.* buffers.  Safe to recycle: the
            # cached GradientResult's wirelength half is never read on
            # the skip path, and checkpoints copy what they keep.
            wl_grad_x = ws.get("eng.wl_gx", nv)
            wl_grad_y = ws.get("eng.wl_gy", nv)
            np.take(wl.grad_x, self._mov_idx, out=wl_grad_x[:nm])
            np.take(wl.grad_y, self._mov_idx, out=wl_grad_y[:nm])
            wl_grad_x[nm:] = 0.0
            wl_grad_y[nm:] = 0.0
            norm_cat = ws.get("eng.norm_cat", 2 * nv)
            norm_cat[:nv] = wl_grad_x
            norm_cat[nv:] = wl_grad_y
            wl_norm = float(np.linalg.norm(norm_cat))
        else:
            wl_grad_x = np.concatenate(
                [wl.grad_x[self._mov_idx], np.zeros(self._num_fillers)]
            )
            wl_grad_y = np.concatenate(
                [wl.grad_y[self._mov_idx], np.zeros(self._num_fillers)]
            )
            wl_norm = float(
                np.linalg.norm(np.concatenate([wl_grad_x, wl_grad_y]))
            )

        if self.skip.should_compute(iteration) or self._cache is None:
            dres = self.density.evaluate(x, y, filler_x, filler_y)
            if ws is not None:
                # These buffers ARE the skip cache between density
                # recomputes — nothing else writes eng.d_g* until the
                # next computed iteration replaces their contents.
                density_grad_x = ws.get("eng.d_gx", nv)
                density_grad_y = ws.get("eng.d_gy", nv)
                np.take(dres.grad_x, self._mov_idx, out=density_grad_x[:nm])
                np.take(dres.grad_y, self._mov_idx, out=density_grad_y[:nm])
                density_grad_x[nm:] = dres.filler_grad_x
                density_grad_y[nm:] = dres.filler_grad_y
            else:
                density_grad_x = np.concatenate(
                    [dres.grad_x[self._mov_idx], dres.filler_grad_x]
                )
                density_grad_y = np.concatenate(
                    [dres.grad_y[self._mov_idx], dres.filler_grad_y]
                )
            overflow = dres.overflow
            energy = dres.energy
            density_map = dres.total_map
            density_computed = True
            self.skip.notify_computed(iteration)
        else:
            profiled("density_skip_reuse")
            cached = self._cache
            density_grad_x = cached.density_grad_x
            density_grad_y = cached.density_grad_y
            overflow = cached.overflow
            energy = cached.energy
            density_map = cached.density_map
            density_computed = False

        if ws is not None:
            norm_cat = ws.get("eng.norm_cat", 2 * nv)
            norm_cat[:nv] = density_grad_x
            norm_cat[nv:] = density_grad_y
            density_norm = float(np.linalg.norm(norm_cat))
        else:
            density_norm = float(
                np.linalg.norm(np.concatenate([density_grad_x, density_grad_y]))
            )
        result = GradientResult(
            wl_grad_x=wl_grad_x,
            wl_grad_y=wl_grad_y,
            density_grad_x=density_grad_x,
            density_grad_y=density_grad_y,
            wa=wl.wa,
            hpwl=wl.hpwl,
            overflow=overflow,
            energy=energy,
            density_map=density_map,
            density_computed=density_computed,
            wl_grad_norm=wl_norm,
            density_grad_norm=density_norm,
        )
        self._cache = result
        sanitizer = _sanitizer_active()
        if sanitizer is not None:
            self._sanitize(sanitizer, result, iteration)
        ratio = (
            lam_for_skip * density_norm / wl_norm if wl_norm > 1e-20 else float("inf")
        )
        self.skip.observe_ratio(ratio)
        return result

    @staticmethod
    def _sanitize(sanitizer, result: GradientResult, iteration: int) -> None:
        """Validate the closed-form gradient components (sanitize mode).

        Names the offending operator so a fault points at the kernel
        that produced it, not at the optimizer step that consumed it.
        """
        checks = (
            ("wirelength.wa", result.wa),
            ("wirelength.hpwl", result.hpwl),
            ("wirelength.grad_x", result.wl_grad_x),
            ("wirelength.grad_y", result.wl_grad_y),
            ("density.overflow", result.overflow),
            ("density.grad_x", result.density_grad_x),
            ("density.grad_y", result.density_grad_y),
        )
        for op, value in checks:
            sanitizer.check_array(
                op, value, stage="gradient-engine", iteration=iteration
            )

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable snapshot of the engine's cross-iteration state.

        Captures the skip controller's decision state and the *density*
        half of the cached :class:`GradientResult` — exactly the fields
        a skipped iteration reuses — so that a restored run makes the
        same skip/recompute decisions, on the same cached gradients, as
        an uninterrupted one.  Wirelength fields are recomputed every
        iteration and need no snapshot.  Flat layout (arrays + scalars
        only) so the checkpoint spill can split it across npz/json.
        """
        state: Dict[str, Any] = {"cached": self._cache is not None}
        for key, value in self.skip.state_dict().items():
            state[f"skip_{key}"] = value
        if self._cache is not None:
            cache = self._cache
            state["cache_density_grad_x"] = cache.density_grad_x.copy()
            state["cache_density_grad_y"] = cache.density_grad_y.copy()
            state["cache_density_map"] = cache.density_map.copy()
            state["cache_overflow"] = float(cache.overflow)
            state["cache_energy"] = float(cache.energy)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (bit-exact restore).

        The rebuilt cache carries zeroed wirelength fields: the skip
        branch of :meth:`compute` only ever reads the density fields,
        and every other path recomputes before reading.
        """
        self.skip.load_state_dict(
            {
                "last_computed": state["skip_last_computed"],
                "last_ratio": state["skip_last_ratio"],
            }
        )
        if not state.get("cached"):
            self._cache = None
            return
        dgx = np.asarray(state["cache_density_grad_x"]).copy()
        dgy = np.asarray(state["cache_density_grad_y"]).copy()
        zeros = np.zeros_like(dgx)
        self._cache = GradientResult(
            wl_grad_x=zeros,
            wl_grad_y=zeros,
            density_grad_x=dgx,
            density_grad_y=dgy,
            wa=0.0,
            hpwl=0.0,
            overflow=float(state["cache_overflow"]),
            energy=float(state["cache_energy"]),
            density_map=np.asarray(state["cache_density_map"]).copy(),
            density_computed=False,
            wl_grad_norm=0.0,
            density_grad_norm=0.0,
        )

    # ------------------------------------------------------------------
    def assemble(
        self,
        result: GradientResult,
        pos_x: np.ndarray,
        pos_y: np.ndarray,
        lam: float,
        sigma: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Combine components into the preconditioned descent gradient.

        When ``sigma > 0`` and a field predictor is attached, the density
        gradient is blended with the neural prediction per Eq. 14:
        ∇'D = (1−σ)·∇D + σ·∇_nn D.
        """
        dgx, dgy = result.density_grad_x, result.density_grad_y
        if sigma > 0.0 and self.field_predictor is not None:
            nn_gx, nn_gy = self._neural_density_grad(result.density_map, pos_x, pos_y)
            profiled("nn_blend", 2)
            dgx = (1.0 - sigma) * dgx + sigma * nn_gx
            dgy = (1.0 - sigma) * dgy + sigma * nn_gy
        ws = self.workspace
        if ws is not None:
            grad_x = ws.get("eng.asm_x", result.wl_grad_x.shape)
            grad_y = ws.get("eng.asm_y", result.wl_grad_y.shape)
            np.multiply(dgx, lam, out=grad_x)
            np.add(grad_x, result.wl_grad_x, out=grad_x)
            np.multiply(dgy, lam, out=grad_y)
            np.add(grad_y, result.wl_grad_y, out=grad_y)
        else:
            grad_x = result.wl_grad_x + lam * dgx
            grad_y = result.wl_grad_y + lam * dgy
        return self.preconditioner.apply(grad_x, grad_y, lam, workspace=ws)

    def _neural_density_grad(
        self, density_map: np.ndarray, pos_x: np.ndarray, pos_y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-variable density gradient from the NN field prediction.

        The prediction is cached per density-map object: when the density
        operator was skipped this iteration (Section 3.1.4) the same map
        instance comes back and the forward pass is reused for free.
        """
        cached = getattr(self, "_nn_cache", None)
        if cached is not None and cached[0] is density_map:
            fx, fy = cached[1], cached[2]
        else:
            fx, fy = self.field_predictor(density_map)
            self._nn_cache = (density_map, fx, fy)
        scatter = self.density.scatter
        mov_x, filler_x = self.split(pos_x)
        mov_y, filler_y = self.split(pos_y)
        mov_w = self.netlist.cell_w[self._mov_idx]
        mov_h = self.netlist.cell_h[self._mov_idx]
        fillers = self.density.fillers
        gx = np.concatenate(
            [
                -scatter.gather(fx, mov_x, mov_y, mov_w, mov_h),
                -scatter.gather(fx, filler_x, filler_y, fillers.w, fillers.h),
            ]
        )
        gy = np.concatenate(
            [
                -scatter.gather(fy, mov_x, mov_y, mov_w, mov_h),
                -scatter.gather(fy, filler_x, filler_y, fillers.w, fillers.h),
            ]
        )
        return gx, gy
