"""Initial placement for global placement.

DREAMPlace-style initialisation: movable cells start at the die center
(slightly biased toward the centroid of fixed pins, which carries IO
information) with a small Gaussian spread, which gives the wirelength
gradient a symmetric, well-conditioned starting point.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.netlist import Netlist


def initial_positions(
    netlist: Netlist,
    rng: np.random.Generator = None,
    noise_fraction: float = 0.015,
) -> Tuple[np.ndarray, np.ndarray]:
    """Positions for *all* cells: fixed cells keep their location, movable
    cells cluster near the die center with σ = noise_fraction·die extent."""
    rng = rng or np.random.default_rng(0)
    region = netlist.region
    x, y = netlist.initial_positions()

    fixed = ~netlist.movable
    cx, cy = region.center
    if np.any(fixed):
        # Blend die center with the fixed-cell centroid (IO pull).
        fx = float(np.mean(netlist.fixed_x[fixed]))
        fy = float(np.mean(netlist.fixed_y[fixed]))
        cx, cy = 0.5 * (cx + fx), 0.5 * (cy + fy)

    movable = netlist.movable
    n = int(np.count_nonzero(movable))
    x[movable] = cx + rng.normal(0, noise_fraction * region.width, n)
    y[movable] = cy + rng.normal(0, noise_fraction * region.height, n)

    hw = netlist.cell_w / 2
    hh = netlist.cell_h / 2
    x[movable], y[movable] = (
        np.clip(x[movable], region.xl + hw[movable], region.xh - hw[movable]),
        np.clip(y[movable], region.yl + hh[movable], region.yh - hh[movable]),
    )
    return x, y
