"""Global placement parameters (defaults follow ePlace/DREAMPlace)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class PlacementParams:
    """Every knob of the GP engine, grouped by subsystem.

    Scheduling constants implement ePlace's published schedules:
    γ(OVFL) = γ₀·bin·10^(k·OVFL + b) shrinks the WA smoothing as cells
    spread; λ is multiplied each round by μ = μ₀^(1 − ΔHPWL/ΔHPWL_ref)
    clamped to [μ_min, μ_max].

    The four operator-level switches (``combined_wirelength``,
    ``density_extraction``, ``operator_skipping``, plus the baseline's
    autograd mode) and ``stage_aware_schedule`` are the paper's ablation
    axes (Tables 2–3).
    """

    # Density model
    target_density: float = 0.9
    grid_m: int = 0                    # 0 → auto from netlist size
    use_fillers: bool = True

    # Wirelength model
    gamma0: float = 8.0                # γ coefficient, in bin widths
    gamma_k: float = 20.0 / 9.0        # γ exponent slope vs overflow
    gamma_b: float = -11.0 / 9.0       # γ exponent offset

    # Density weight λ schedule
    initial_lambda: Optional[float] = None   # None → auto-balance at iter 0
    mu0: float = 1.1
    mu_min: float = 0.75
    mu_max: float = 1.1
    delta_hpwl_ref: float = 3.5e5

    # Loop control
    max_iterations: int = 1000
    min_iterations: int = 20
    stop_overflow: float = 0.07
    optimizer: str = "nesterov"        # or "adam"
    adam_lr: float = 1.0

    # Operator-level optimizations (Section 3.1)
    operator_reduction: bool = True    # OR: closed-form grads, no autograd
    combined_wirelength: bool = True   # OC
    density_extraction: bool = True    # OE
    operator_skipping: bool = True     # OS
    # Workspace buffer arena (repro.perf): thread preallocated scratch
    # through the hot operators.  Results are bit-identical either way;
    # False restores the plain allocating kernels.
    workspace: bool = True
    skip_ratio_threshold: float = 0.01
    skip_max_iteration: int = 100
    skip_period: int = 20

    # Placement-stage-aware scheduling (Section 3.2 / Algorithm 1)
    stage_aware_schedule: bool = True
    omega_slow_low: float = 0.5
    omega_slow_high: float = 0.95
    slow_update_period: int = 3

    # Fence handling: "projection" (constraint projection after every
    # step) or "multi" (DREAMPlace-3.0-style multi-electrostatics, one
    # field per cell group, plus projection as a safety clamp).
    fence_mode: str = "projection"

    # Neural guidance (Section 3.3); the placer wires the model in.
    neural_guidance: bool = False
    # Ceiling on the σ(ω) blend weight: the NN field is a global guide
    # for the early stage, not a replacement for the numerical field —
    # letting σ → 1 makes the spreading phase stall on NN error.
    neural_sigma_max: float = 0.5

    # Checkpoint/rollback recovery (repro.recovery).  ``checkpoint_every``
    # is the master switch: 0 disables recovery entirely; N > 0 snapshots
    # the loop state every N iterations and arms the divergence monitor.
    # The runtime also arms recovery when it supplies a spill directory
    # (``repro batch --resume``), defaulting the cadence if unset.
    checkpoint_every: int = 0
    checkpoint_keep: int = 4           # ring-buffer capacity
    rollback_budget: int = 3           # rollbacks before degrading
    rollback_step_cut: float = 0.5     # step-length factor per rollback
    rollback_perturb: float = 0.25     # movable-cell jitter, in bin sizes
    divergence_hpwl_factor: float = 50.0   # trip at k x best-seen HPWL
    divergence_plateau_window: int = 0     # 0 → plateau check off

    # Misc
    seed: int = 0
    verbose: bool = False

    @property
    def recovery_enabled(self) -> bool:
        """Whether the GP loop should checkpoint and self-heal."""
        return self.checkpoint_every > 0

    def __post_init__(self) -> None:
        if not 0 < self.target_density <= 1:
            raise ValueError("target_density must be in (0, 1]")
        if self.stop_overflow <= 0:
            raise ValueError("stop_overflow must be positive")
        if self.max_iterations < self.min_iterations:
            raise ValueError("max_iterations < min_iterations")
        if self.optimizer not in ("nesterov", "adam"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.slow_update_period < 1:
            raise ValueError("slow_update_period must be >= 1")
        if self.fence_mode not in ("projection", "multi"):
            raise ValueError(f"unknown fence_mode {self.fence_mode!r}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables)")
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        if self.rollback_budget < 0:
            raise ValueError("rollback_budget must be >= 0")
        if not 0.0 < self.rollback_step_cut <= 1.0:
            raise ValueError("rollback_step_cut must be in (0, 1]")
        if self.rollback_perturb < 0.0:
            raise ValueError("rollback_perturb must be >= 0")
        if self.divergence_hpwl_factor <= 1.0:
            raise ValueError("divergence_hpwl_factor must be > 1")
        if self.divergence_plateau_window < 0:
            raise ValueError("divergence_plateau_window must be >= 0")

    def gamma(self, overflow: float, bin_size: float) -> float:
        """WA smoothing parameter for the current overflow level."""
        exponent = self.gamma_k * min(max(overflow, 0.0), 1.0) + self.gamma_b
        return self.gamma0 * bin_size * 10.0**exponent
