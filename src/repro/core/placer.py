"""XPlacer: the global placement main loop (core engine of Figure 1)."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitizer import NumericalFault, install_from_env
from repro.core.callbacks import (
    CallbackList,
    Diagnostic,
    IterationCallback,
    LoopStart,
    LoopStop,
    RecorderCallback,
    VerboseCallback,
)
from repro.core.evaluator import Evaluator
from repro.core.gradient_engine import FieldPredictor, GradientEngine, sigma_of_omega
from repro.core.initializer import initial_positions
from repro.core.params import PlacementParams
from repro.core.recorder import IterationRecord, Recorder
from repro.core.scheduler import Scheduler
from repro.density import BinGrid, DensitySystem
from repro.netlist import Netlist
from repro.optim import AdamOptimizer, NesterovOptimizer


@dataclass
class PlacementResult:
    """Output of one global placement run.

    The recovery fields record how eventful the run was: ``rollbacks``
    and ``checkpoints`` count self-healing actions, ``degraded`` flags
    that the rollback budget ran out and the best-seen snapshot was
    returned instead of a converged solution, and ``resumed_from`` is
    the checkpoint iteration a restarted process picked up from (None
    for a fresh run).
    """

    x: np.ndarray              # final cell centers (all cells)
    y: np.ndarray
    hpwl: float                # HPWL of the returned solution
    overflow: float
    iterations: int
    gp_seconds: float
    recorder: Recorder
    converged: bool
    rollbacks: int = 0
    checkpoints: int = 0
    degraded: bool = False
    resumed_from: Optional[int] = None
    checkpoint_stats: Optional[dict] = None

    def positions(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.x, self.y


class XPlacer:
    """Analytical global placer: Xplace configuration by default.

    Toggling :class:`~repro.core.params.PlacementParams` switches turns
    off individual operator optimizations (for the Table 3 ablation) or
    the stage-aware schedule.  A trained neural field model is attached
    via ``field_predictor`` to obtain Xplace-NN.
    """

    def __init__(
        self,
        netlist: Netlist,
        params: Optional[PlacementParams] = None,
        field_predictor: Optional[FieldPredictor] = None,
    ) -> None:
        self.netlist = netlist
        self.params = params or PlacementParams()
        rng = np.random.default_rng(self.params.seed)
        grid = BinGrid.for_netlist(netlist, self.params.grid_m)
        if netlist.fences and self.params.fence_mode == "multi":
            from repro.density.multi import MultiRegionDensitySystem

            self.density = MultiRegionDensitySystem(
                netlist,
                target_density=self.params.target_density,
                grid=grid,
                extraction=self.params.density_extraction,
                use_fillers=self.params.use_fillers,
                rng=rng,
            )
        else:
            self.density = DensitySystem(
                netlist,
                target_density=self.params.target_density,
                grid=grid,
                extraction=self.params.density_extraction,
                use_fillers=self.params.use_fillers,
                rng=rng,
            )
        # The predictor reaches the engine only when guidance is enabled.
        predictor = field_predictor if self.params.neural_guidance else None
        self.engine = GradientEngine(netlist, self.density, self.params, predictor)
        self.evaluator = Evaluator(netlist, self.density)
        self._rng = rng

    # ------------------------------------------------------------------
    def run(
        self,
        callbacks: Optional[Sequence[IterationCallback]] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        final_checkpoint: bool = False,
    ) -> PlacementResult:
        """Run global placement to convergence and return the solution.

        ``callbacks`` observe the loop through the
        :class:`~repro.core.callbacks.IterationCallback` protocol; the
        recorder trace and the ``verbose`` console line are themselves
        stock callbacks attached here.

        Recovery (checkpoint/rollback, :mod:`repro.recovery`) arms when
        ``params.checkpoint_every > 0`` or a ``checkpoint_dir`` is given;
        ``checkpoint_dir`` additionally spills each snapshot to disk so a
        fresh process can pick the run up mid-flight with ``resume=True``.

        ``final_checkpoint=True`` treats the ``max_iterations`` wall as a
        *segment boundary* rather than the end of the run: the loop
        state is checkpointed there (after replaying the end-of-iteration
        γ/λ bookkeeping a continuing run would have done) and the spill
        is kept, so a forked continuation replays a longer run
        bit-for-bit.  A convergence stop is still terminal — the spill
        is cleared as usual.
        """
        params = self.params
        netlist = self.netlist
        start = time.perf_counter()
        install_from_env()  # REPRO_SANITIZE=1 → per-op numerical checks

        recorder_cb = RecorderCallback()
        events = CallbackList([recorder_cb])
        if params.verbose:
            events.add(VerboseCallback(netlist.name, extended=True))
        for callback in callbacks or ():
            events.add(callback)

        x0, y0 = initial_positions(netlist, rng=self._rng)
        mov = netlist.movable_index
        pos_x = np.concatenate([x0[mov], self.density.fillers.x])
        pos_y = np.concatenate([y0[mov], self.density.fillers.y])

        bin_size = min(self.density.grid.bin_w, self.density.grid.bin_h)
        if params.optimizer == "nesterov":
            optimizer = NesterovOptimizer(pos_x, pos_y)
        else:
            optimizer = AdamOptimizer(pos_x, pos_y, lr=params.adam_lr * bin_size)

        scheduler = Scheduler(params, bin_size)
        recorder = recorder_cb.recorder
        engine = self.engine
        clamp = self._make_clamp()

        recovery = None
        if params.recovery_enabled or checkpoint_dir is not None:
            from repro.recovery import CheckpointManager
            from repro.recovery.controller import (
                DEFAULT_CHECKPOINT_EVERY,
                RecoveryController,
            )

            recovery = RecoveryController(
                params=params,
                manager=CheckpointManager(
                    keep=params.checkpoint_keep, spill_dir=checkpoint_dir
                ),
                events=events,
                design=netlist.name,
                bin_size=bin_size,
                num_movable=len(mov),
                every=params.checkpoint_every or DEFAULT_CHECKPOINT_EVERY,
            )

        events.on_start(
            LoopStart(
                design=netlist.name,
                placer="xplace-nn" if params.neural_guidance else "xplace",
                params=params,
                num_movable=len(mov),
                num_fillers=self.density.fillers.count,
            )
        )

        start_iteration = 0
        if recovery is not None and resume:
            start_iteration = recovery.maybe_resume(optimizer, scheduler, engine)

        result = None
        if start_iteration == 0:
            # Bootstrap: evaluate once to balance λ0 against gradient norms.
            vx, vy = optimizer.positions
            result = engine.compute(0, vx, vy, scheduler.gamma, lam_for_skip=0.0)
            lam = scheduler.initialize_lambda(
                result.wl_grad_norm, result.density_grad_norm
            )
        else:
            # Restored runs carry λ (and the engine's gradient cache) in
            # the snapshot; re-bootstrapping would fork the trajectory.
            lam = scheduler.lam

        converged = False
        degraded = False
        boundary_checkpoint = False
        best_hpwl = math.inf
        best_iteration = -1
        last_iteration = start_iteration - 1
        iteration = start_iteration
        while iteration < params.max_iterations:
            try:
                omega = engine.preconditioner.omega(lam)
                sigma = (
                    params.neural_sigma_max * sigma_of_omega(omega)
                    if params.neural_guidance and engine.field_predictor is not None
                    else 0.0
                )
                if sigma < 0.02:
                    sigma = 0.0  # predictor cost isn't worth a ~0 blend weight
                vx, vy = optimizer.positions
                if iteration > 0:
                    result = engine.compute(
                        iteration, vx, vy, scheduler.gamma, lam
                    )
                grad_x, grad_y = engine.assemble(result, vx, vy, lam, sigma)

                if iteration == 0:
                    # Bound the very first step to a fraction of a bin.
                    max_grad = max(
                        float(np.abs(grad_x).max(initial=0.0)),
                        float(np.abs(grad_y).max(initial=0.0)),
                    )
                    if max_grad > 0 and isinstance(optimizer, NesterovOptimizer):
                        optimizer.bound_first_step(0.1 * bin_size / max_grad)

                optimizer.step(grad_x, grad_y)
                optimizer.clamp(clamp)
                self._guard_finite(
                    events,
                    iteration,
                    optimizer,
                    grad_x,
                    grad_y,
                    result,
                    best_hpwl,
                    best_iteration,
                )

                ratio = (
                    lam * result.density_grad_norm / result.wl_grad_norm
                    if result.wl_grad_norm > 1e-20
                    else float("inf")
                )
                events.on_iteration(
                    IterationRecord(
                        iteration=iteration,
                        hpwl=result.hpwl,
                        wa=result.wa,
                        overflow=result.overflow,
                        gamma=scheduler.gamma,
                        lam=lam,
                        omega=omega,
                        grad_ratio=ratio,
                        density_computed=result.density_computed,
                        step_length=optimizer.step_length,
                    )
                )
            except NumericalFault as fault:
                if recovery is not None:
                    reason = f"numerical-fault: {fault.op}"
                    resume_at = recovery.rollback(
                        reason, iteration, optimizer, scheduler, engine, clamp
                    )
                    if resume_at is not None:
                        iteration = resume_at
                        lam = scheduler.lam
                        continue
                    if recovery.degrade(
                        reason, iteration, optimizer, scheduler, engine
                    ):
                        degraded = True
                        break
                raise

            last_iteration = iteration
            if math.isfinite(result.hpwl) and result.hpwl < best_hpwl:
                best_hpwl = result.hpwl
                best_iteration = iteration

            if scheduler.should_stop(iteration, result.overflow):
                converged = result.overflow < params.stop_overflow
                if final_checkpoint and not converged and recovery is not None:
                    # Segment boundary (max_iterations wall): replay the
                    # end-of-iteration bookkeeping a continuing run
                    # would have done — γ/λ update, divergence
                    # observation — then pin the state, so that a forked
                    # continuation is bit-identical to a run whose
                    # max_iterations had simply been larger.
                    if scheduler.should_update_params(omega):
                        scheduler.update(result.overflow, result.hpwl)
                        lam = scheduler.lam
                    recovery.observe(iteration, result.hpwl, result.overflow)
                    recovery.checkpoint(
                        iteration,
                        lam,
                        result.hpwl,
                        result.overflow,
                        optimizer,
                        scheduler,
                        engine,
                    )
                    boundary_checkpoint = True
                break

            if scheduler.should_update_params(omega):
                scheduler.update(result.overflow, result.hpwl)
                lam = scheduler.lam

            if recovery is not None:
                trip = recovery.observe(iteration, result.hpwl, result.overflow)
                if trip is not None:
                    resume_at = recovery.rollback(
                        trip, iteration, optimizer, scheduler, engine, clamp
                    )
                    if resume_at is not None:
                        iteration = resume_at
                        lam = scheduler.lam
                        continue
                    if recovery.degrade(
                        trip, iteration, optimizer, scheduler, engine
                    ):
                        degraded = True
                        break
                    # Nothing restorable: press on with what we have.
                elif recovery.should_checkpoint(iteration):
                    recovery.checkpoint(
                        iteration,
                        lam,
                        result.hpwl,
                        result.overflow,
                        optimizer,
                        scheduler,
                        engine,
                    )

            iteration += 1

        if recovery is not None and not boundary_checkpoint:
            # The run ended on its own terms — a stale spill must not
            # hijack the next resume.  (A killed run never reaches this,
            # which is exactly what keeps its spill resumable; a
            # boundary checkpoint keeps its spill so forks can read it.)
            recovery.manager.clear_spill()

        sol_x, sol_y = optimizer.solution
        x, y = engine.full_positions(sol_x, sol_y)
        x, y = self._clamp_real_cells(x, y)
        elapsed = time.perf_counter() - start
        final = self.evaluator.evaluate(x, y)
        events.on_stop(
            LoopStop(
                design=netlist.name,
                iterations=last_iteration + 1,
                converged=converged,
                gp_seconds=elapsed,
                hpwl=final.hpwl,
                overflow=final.overflow,
            )
        )
        return PlacementResult(
            x=x,
            y=y,
            hpwl=final.hpwl,
            overflow=final.overflow,
            iterations=last_iteration + 1,
            gp_seconds=elapsed,
            recorder=recorder,
            converged=converged,
            rollbacks=recovery.rollbacks if recovery is not None else 0,
            checkpoints=recovery.checkpoints if recovery is not None else 0,
            degraded=degraded,
            resumed_from=recovery.resumed_from if recovery is not None else None,
            checkpoint_stats=(
                recovery.manager.stats() if recovery is not None else None
            ),
        )

    # ------------------------------------------------------------------
    def _guard_finite(
        self,
        events,
        iteration,
        optimizer,
        grad_x,
        grad_y,
        result,
        best_hpwl=float("inf"),
        best_iteration=-1,
    ) -> None:
        """Abort on non-finite positions instead of silently diverging.

        Attributes the fault to the gradient component (wirelength,
        density, preconditioner) or the optimizer step that produced
        it, then surfaces a :class:`Diagnostic` through the callback
        seam before raising — so runtime consumers (batch events,
        recorders) see the provenance, not just a dead worker.  The
        best-seen HPWL and its iteration ride along so consumers can
        tell how far back a recovery would have to reach.
        """
        vx, vy = optimizer.positions
        if np.isfinite(vx).all() and np.isfinite(vy).all():
            return
        if not (np.isfinite(grad_x).all() and np.isfinite(grad_y).all()):
            if not (
                np.isfinite(result.wl_grad_x).all()
                and np.isfinite(result.wl_grad_y).all()
            ):
                op = "wirelength.grad"
            elif not (
                np.isfinite(result.density_grad_x).all()
                and np.isfinite(result.density_grad_y).all()
            ):
                op = "density.grad"
            else:
                op = "preconditioner.apply"
        else:
            op = f"optimizer.step(alpha={optimizer.step_length:.3g})"
        message = (
            "non-finite cell positions after the optimizer step "
            f"(overflow {result.overflow:.3f}); offending component: {op}"
        )
        events.on_diagnostic(
            Diagnostic(
                design=self.netlist.name,
                iteration=iteration,
                stage="global-place",
                op=op,
                message=message,
                best_hpwl=best_hpwl,
                best_iteration=best_iteration,
            )
        )
        raise NumericalFault(
            op=op, stage="global-place", detail=message, iteration=iteration
        )

    # ------------------------------------------------------------------
    def _make_clamp(self):
        """Clamp for the optimizer's [movable; filler] layout."""
        netlist = self.netlist
        region = netlist.region
        mov = netlist.movable_index
        fillers = self.density.fillers
        hw = np.concatenate(
            [netlist.cell_w[mov] / 2, np.full(fillers.count, fillers.width / 2)]
        )
        hh = np.concatenate(
            [netlist.cell_h[mov] / 2, np.full(fillers.count, fillers.height / 2)]
        )
        from repro.core.fences import FenceProjector

        projector = FenceProjector(netlist, fillers.count)

        def clamp(px: np.ndarray, py: np.ndarray):
            px, py = region.clamp(px, py, hw, hh)
            if projector.active:
                px, py = projector.project(px, py)
            return px, py

        return clamp

    def _clamp_real_cells(self, x: np.ndarray, y: np.ndarray):
        netlist = self.netlist
        mov = netlist.movable_index
        hw = netlist.cell_w[mov] / 2
        hh = netlist.cell_h[mov] / 2
        x = x.copy()
        y = y.copy()
        x[mov], y[mov] = netlist.region.clamp(x[mov], y[mov], hw, hh)
        if netlist.fences:
            from repro.core.fences import FenceProjector

            projector = FenceProjector(netlist)
            x[mov], y[mov] = projector.project(x[mov], y[mov])
        return x, y
