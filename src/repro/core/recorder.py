"""Per-iteration metric recording (the Recorder block of Figure 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """Metrics of one GP iteration."""

    iteration: int
    hpwl: float
    wa: float
    overflow: float
    gamma: float
    lam: float
    omega: float
    grad_ratio: float          # r = λ‖∇D‖ / ‖∇WL‖ (Section 3.1.4)
    density_computed: bool     # False when the skip controller reused cache
    step_length: float


class Recorder:
    """Append-only store of :class:`IterationRecord` with trace queries."""

    def __init__(self) -> None:
        self.records: List[IterationRecord] = []

    def log(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def last(self) -> Optional[IterationRecord]:
        return self.records[-1] if self.records else None

    def trace(self, name: str) -> np.ndarray:
        """Array of one metric over iterations, e.g. ``trace('hpwl')``."""
        return np.array([getattr(r, name) for r in self.records])

    def best_hpwl(self) -> float:
        if not self.records:
            return float("inf")
        return float(min(r.hpwl for r in self.records))

    def density_skip_count(self) -> int:
        """Iterations that reused a cached density gradient."""
        return sum(1 for r in self.records if not r.density_computed)

    def summary(self) -> str:
        if not self.records:
            return "no iterations recorded"
        last = self.records[-1]
        return (
            f"iterations={last.iteration + 1} hpwl={last.hpwl:.4g} "
            f"overflow={last.overflow:.4f} omega={last.omega:.3f} "
            f"density_skips={self.density_skip_count()}"
        )
