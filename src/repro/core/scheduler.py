"""Parameter scheduling and stopping (Scheduler block of Figure 1).

Implements the ePlace γ/λ schedules plus the paper's contribution,
placement-stage-aware scheduling (Algorithm 1): in the intermediate
stage 0.5 < ω < 0.95 the parameter update slows down to once every
``slow_update_period`` iterations, letting the optimizer exploit each
penalty level before the weights move again.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.core.params import PlacementParams


class Scheduler:
    """Owns γ, λ and the stop decision for one GP run."""

    def __init__(self, params: PlacementParams, bin_size: float) -> None:
        self.params = params
        self.bin_size = float(bin_size)
        self.gamma = params.gamma(1.0, self.bin_size)
        self.lam: Optional[float] = params.initial_lambda
        self._prev_hpwl: Optional[float] = None
        self._iterations_since_update = 0

    # ------------------------------------------------------------------
    def initialize_lambda(self, wl_grad_norm: float, density_grad_norm: float) -> float:
        """Auto-balance λ₀ so the initial density force is a small fraction
        of the wirelength force (ePlace's gradient-norm balancing)."""
        if self.lam is None:
            if density_grad_norm <= 1e-20:
                self.lam = 1e-6
            else:
                # Start with the density force at 1e-3 of the wirelength
                # force: small enough that r = λ‖∇D‖/‖∇WL‖ < 0.01 early
                # (the skipping premise of §3.1.4), large enough that λ's
                # geometric ramp carries ω across the full [0, 1] range.
                self.lam = float(wl_grad_norm / density_grad_norm) * 1e-3
        return self.lam

    # ------------------------------------------------------------------
    def should_update_params(self, omega: float) -> bool:
        """Algorithm 1: slow the update cadence mid-flight."""
        params = self.params
        self._iterations_since_update += 1
        if (
            params.stage_aware_schedule
            and params.omega_slow_low < omega < params.omega_slow_high
        ):
            if self._iterations_since_update < params.slow_update_period:
                return False
        self._iterations_since_update = 0
        return True

    def update(self, overflow: float, hpwl: float) -> None:
        """Advance γ (from overflow) and λ (from HPWL progress)."""
        params = self.params
        self.gamma = params.gamma(overflow, self.bin_size)
        if self.lam is None:
            raise RuntimeError("initialize_lambda() must run before update()")
        if self._prev_hpwl is None:
            mu = params.mu_max
        else:
            delta = hpwl - self._prev_hpwl
            mu = params.mu0 ** (1.0 - delta / params.delta_hpwl_ref)
            mu = float(np.clip(mu, params.mu_min, params.mu_max))
        self.lam *= mu
        self._prev_hpwl = hpwl

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable snapshot of the γ/λ schedule state."""
        return {
            "gamma": float(self.gamma),
            "lam": None if self.lam is None else float(self.lam),
            "prev_hpwl": self._prev_hpwl,
            "iterations_since_update": int(self._iterations_since_update),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (bit-exact restore)."""
        self.gamma = float(state["gamma"])
        lam = state["lam"]
        self.lam = None if lam is None else float(lam)
        prev = state["prev_hpwl"]
        self._prev_hpwl = None if prev is None else float(prev)
        self._iterations_since_update = int(state["iterations_since_update"])

    # ------------------------------------------------------------------
    def should_stop(self, iteration: int, overflow: float) -> bool:
        params = self.params
        if iteration + 1 >= params.max_iterations:
            return True
        if iteration + 1 < params.min_iterations:
            return False
        return overflow < params.stop_overflow
