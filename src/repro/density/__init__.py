"""Electrostatic density system (ePlace model, Eq. 5–10).

Cell area is rasterised onto an M×M bin grid (Eq. 8), whitespace is
balanced by filler cells (Eq. 9–10), the resulting charge distribution is
fed to a spectral Poisson solver with Neumann boundaries (Eq. 5), and the
returned electric field yields per-cell density gradients.  The overflow
ratio (Eq. 7) measures spreading progress.

:class:`DensitySystem` wires these together and implements the paper's
*operator extraction* (Section 3.1.2): the movable density map D is
computed once and shared between the overflow operator and the solver
input D̃ = D + D_fl.
"""

from repro.density.bins import BinGrid
from repro.density.scatter import DensityScatter, rasterize_exact
from repro.density.fillers import FillerCells
from repro.density.electrostatics import ElectrostaticSolver
from repro.density.overflow import overflow_ratio
from repro.density.system import DensitySystem

__all__ = [
    "BinGrid",
    "DensityScatter",
    "rasterize_exact",
    "FillerCells",
    "ElectrostaticSolver",
    "overflow_ratio",
    "DensitySystem",
]
