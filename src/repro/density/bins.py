"""Uniform bin grid over the placement region."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from repro.dtypes import FLOAT, INT

from repro.netlist import Netlist, PlacementRegion


@dataclass(frozen=True)
class BinGrid:
    """An ``m × m`` uniform grid over the region (paper: M×M grid B).

    Index convention: bin (i, j) covers
    ``[xl + i·bin_w, xl + (i+1)·bin_w) × [yl + j·bin_h, yl + (j+1)·bin_h)``,
    and density maps are arrays of shape ``(m, m)`` indexed ``[i, j]``
    (x-major), matching the solver's axis-0 = x convention.
    """

    region: PlacementRegion
    m: int

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ValueError("bin grid needs at least 2x2 bins")

    @property
    def bin_w(self) -> float:
        return self.region.width / self.m

    @property
    def bin_h(self) -> float:
        return self.region.height / self.m

    @property
    def bin_area(self) -> float:
        return self.bin_w * self.bin_h

    @property
    def shape(self) -> tuple:
        return (self.m, self.m)

    def centers(self):
        """(x centers (m,), y centers (m,)) of the bin rows/columns."""
        xs = self.region.xl + (np.arange(self.m, dtype=FLOAT) + 0.5) * self.bin_w
        ys = self.region.yl + (np.arange(self.m, dtype=FLOAT) + 0.5) * self.bin_h
        return xs, ys

    def bin_index(self, x: np.ndarray, y: np.ndarray):
        """Clamped (i, j) bin indices of points."""
        i = np.clip(((x - self.region.xl) / self.bin_w).astype(INT), 0, self.m - 1)
        j = np.clip(((y - self.region.yl) / self.bin_h).astype(INT), 0, self.m - 1)
        return i, j

    @staticmethod
    def for_netlist(netlist: Netlist, m: int = 0) -> "BinGrid":
        """Grid sized from the movable cell count (power of two, 16..512).

        Roughly targets a handful of movable cells per bin, the regime the
        ePlace density model is tuned for.
        """
        if m:
            return BinGrid(netlist.region, m)
        n = max(netlist.num_movable, 1)
        target = int(2 ** round(math.log2(max(16.0, math.sqrt(n) * 1.4))))
        return BinGrid(netlist.region, int(np.clip(target, 16, 512)))
