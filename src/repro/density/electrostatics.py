"""Spectral Poisson solver for the electrostatic system (Eq. 5).

The density model treats cells as positive charge; the potential ψ solves
∇·∇ψ = -ρ with zero-flux (Neumann) boundaries and zero-mean ρ and ψ.  On
a uniform M×M grid the Neumann eigenbasis is the product cosine basis

    cos(w_u (x + ½)π-scaled) · cos(w_v (y + ½)),   w_u = πu / W,

so the solve is: DCT-II of ρ → divide by (w_u² + w_v²) → inverse DCT for
ψ, and mixed inverse sine/cosine transforms for the field E = -∇ψ (the
IDSCT/IDCST pair of ePlace).  Everything runs through ``scipy.fft``; the
sine-series evaluation helpers are validated against a brute-force
spectral sum in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import fft as sfft

from repro.density.bins import BinGrid
from repro.dtypes import FLOAT
from repro.ops import profiled, timed
from repro.perf.workspace import Workspace


def _eval_cos(coef: np.ndarray, axis: int, inplace: bool = False) -> np.ndarray:
    """Evaluate f_i = Σ_u coef_u cos(πu(2i+1)/2M) along ``axis``.

    scipy's DCT-III gives y_k = x_0 + 2 Σ_{n≥1} x_n cos(πn(2k+1)/2N), so
    the plain cosine series is (y + x_0) / 2.  ``inplace`` finalises on
    the (always freshly allocated) transform output instead of building
    two more temporaries — same additions, same products, bit-identical.
    """
    y = sfft.dct(coef, type=3, axis=axis, norm=None)
    lead = np.take(coef, [0], axis=axis)
    if inplace:
        np.add(y, lead, out=y)
        np.multiply(y, 0.5, out=y)
        return y
    return 0.5 * (y + lead)


def _eval_sin(
    coef: np.ndarray,
    axis: int,
    scratch: Optional[np.ndarray] = None,
    inplace: bool = False,
) -> np.ndarray:
    """Evaluate f_i = Σ_u coef_u sin(πu(2i+1)/2M) along ``axis``.

    The u=0 term vanishes; shifting coefficients down by one aligns the
    rest with scipy's DST-III: y_k = (-1)^k x_{N-1} + 2 Σ_{n<N-1} x_n
    sin(π(n+1)(2k+1)/2N).  With x_{N-1} = 0 the series is y / 2.

    ``scratch`` supplies a reusable buffer for the shifted coefficients
    (zero-filled here, so contents match ``np.zeros_like`` exactly).
    """
    if scratch is None:
        shifted = np.zeros_like(coef)
    else:
        shifted = scratch
        shifted.fill(0.0)
    src = [slice(None)] * coef.ndim
    dst = [slice(None)] * coef.ndim
    src[axis] = slice(1, None)
    dst[axis] = slice(0, coef.shape[axis] - 1)
    shifted[tuple(dst)] = coef[tuple(src)]
    y = sfft.dst(shifted, type=3, axis=axis, norm=None)
    if inplace:
        np.multiply(y, 0.5, out=y)
        return y
    return 0.5 * y


@dataclass
class FieldSolution:
    """Potential and field maps on the bin grid (axis 0 = x, axis 1 = y)."""

    potential: np.ndarray
    field_x: np.ndarray
    field_y: np.ndarray
    energy: float


class ElectrostaticSolver:
    """DCT-based solver mapping a density map to potential and field.

    The scipy transforms always allocate their outputs (so the returned
    potential/field maps are safe to retain), but the spectral
    intermediates — shifted ρ, scaled coefficient maps, the DST shift
    scratch — are grid-sized temporaries rebuilt every solve.  With an
    attached workspace they live in reused ``es.*`` buffers instead,
    bit-identically.
    """

    def __init__(
        self, grid: BinGrid, workspace: Optional[Workspace] = None
    ) -> None:
        self.grid = grid
        self.workspace = workspace
        m = grid.m
        # Angular frequencies in physical units: w_u = π u / extent.
        self._wu = np.pi * np.arange(m, dtype=FLOAT) / grid.region.width
        self._wv = np.pi * np.arange(m, dtype=FLOAT) / grid.region.height
        wu2 = self._wu[:, None] ** 2
        wv2 = self._wv[None, :] ** 2
        denom = wu2 + wv2
        denom[0, 0] = 1.0  # the DC mode is projected out, value irrelevant
        self._inv_denom = 1.0 / denom
        # Orthonormal DCT-II scale factors per axis.
        beta = np.full(m, np.sqrt(2.0 / m), dtype=FLOAT)
        beta[0] = np.sqrt(1.0 / m)
        self._beta2d = beta[:, None] * beta[None, :]

    def attach_workspace(self, workspace: Optional[Workspace]) -> None:
        """Switch the solver onto (or off) an arena after construction."""
        self.workspace = workspace

    # ------------------------------------------------------------------
    def solve(self, density: np.ndarray) -> FieldSolution:
        """Solve Eq. 5 for a dimensionless density map (shape (m, m)).

        The mean of ``density`` is removed first (Neumann compatibility /
        the ∬ρ = 0 condition); ψ is returned zero-mean as well.
        """
        grid = self.grid
        if density.shape != grid.shape:
            raise ValueError(f"density shape {density.shape} != grid {grid.shape}")
        with timed("field_solve"):
            if self.workspace is not None:
                return self._solve_ws(density)
            return self._solve_alloc(density)

    def _solve_alloc(self, density: np.ndarray) -> FieldSolution:
        grid = self.grid
        profiled("dct_forward")
        rho = density - density.mean()
        coef = sfft.dctn(rho, type=2, norm="ortho")
        phi = coef * self._inv_denom
        phi[0, 0] = 0.0

        profiled("idct_potential")
        potential = sfft.idctn(phi, type=2, norm="ortho")

        # Field: E = -∇ψ;  ψ = Σ φ_uv β_u β_v cos(w_u x) cos(w_v y)
        #   E_x = Σ φ_uv β_u β_v w_u sin(w_u x) cos(w_v y)   (IDSCT)
        #   E_y = Σ φ_uv β_u β_v w_v cos(w_u x) sin(w_v y)   (IDCST)
        profiled("idsct_field", 2)
        c = phi * self._beta2d
        field_x = _eval_sin(c * self._wu[:, None], axis=0)
        field_x = _eval_cos(field_x, axis=1)
        field_y = _eval_cos(c * self._wv[None, :], axis=0)
        field_y = _eval_sin(field_y, axis=1)

        energy = float(np.sum(rho * potential) * grid.bin_area)
        return FieldSolution(potential, field_x, field_y, energy)

    def _solve_ws(self, density: np.ndarray) -> FieldSolution:
        """Workspace twin of :meth:`_solve_alloc` (``es.*`` buffers)."""
        grid = self.grid
        ws = self.workspace
        shape = grid.shape
        profiled("dct_forward")
        rho = ws.get("es.rho", shape)
        np.subtract(density, density.mean(), out=rho)
        coef = sfft.dctn(rho, type=2, norm="ortho")
        phi = ws.get("es.phi", shape)
        np.multiply(coef, self._inv_denom, out=phi)
        phi[0, 0] = 0.0

        profiled("idct_potential")
        potential = sfft.idctn(phi, type=2, norm="ortho")

        profiled("idsct_field", 2)
        c = ws.get("es.c", shape)
        np.multiply(phi, self._beta2d, out=c)
        cw = ws.get("es.cw", shape)
        shift = ws.get("es.shift", shape)
        np.multiply(c, self._wu[:, None], out=cw)
        field_x = _eval_sin(cw, axis=0, scratch=shift, inplace=True)
        field_x = _eval_cos(field_x, axis=1, inplace=True)
        np.multiply(c, self._wv[None, :], out=cw)
        field_y = _eval_cos(cw, axis=0, inplace=True)
        field_y = _eval_sin(field_y, axis=1, scratch=shift, inplace=True)

        etmp = ws.get("es.etmp", shape)
        np.multiply(rho, potential, out=etmp)
        energy = float(np.sum(etmp) * grid.bin_area)
        return FieldSolution(potential, field_x, field_y, energy)

    # ------------------------------------------------------------------
    def solve_reference(self, density: np.ndarray) -> FieldSolution:
        """O(M⁴) brute-force spectral sum — the test oracle for solve()."""
        grid = self.grid
        m = grid.m
        rho = density - density.mean()
        coef = sfft.dctn(rho, type=2, norm="ortho")
        phi = coef * self._inv_denom
        phi[0, 0] = 0.0
        beta = np.full(m, np.sqrt(2.0 / m), dtype=FLOAT)
        beta[0] = np.sqrt(1.0 / m)
        xs = (np.arange(m, dtype=FLOAT) + 0.5) * np.pi / m  # w_u x in grid angle units
        cos_u = np.cos(np.outer(np.arange(m, dtype=FLOAT), xs))  # [u, i]
        sin_u = np.sin(np.outer(np.arange(m, dtype=FLOAT), xs))
        c = phi * beta[:, None] * beta[None, :]
        potential = np.einsum("uv,ui,vj->ij", c, cos_u, cos_u)
        field_x = np.einsum("uv,ui,vj->ij", c * self._wu[:, None], sin_u, cos_u)
        field_y = np.einsum("uv,ui,vj->ij", c * self._wv[None, :], cos_u, sin_u)
        energy = float(np.sum(rho * potential) * grid.bin_area)
        return FieldSolution(potential, field_x, field_y, energy)
