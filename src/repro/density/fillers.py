"""Filler cell insertion (Eq. 9, following ePlace / NTUPlace whitespace
handling).

Fillers are fake movable cells that occupy whitespace inside the
electrostatic system only: they stop the density force from spreading
real cells into every corner of free space.  Their total area is chosen
so that real + filler area equals the target density times the free area;
their size is the typical standard-cell size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np
from repro.dtypes import FLOAT

from repro.netlist import Netlist


@dataclass
class FillerCells:
    """Geometry and (mutable) positions of the filler population."""

    width: float
    height: float
    x: np.ndarray
    y: np.ndarray

    @property
    def count(self) -> int:
        return int(self.x.shape[0])

    @property
    def w(self) -> np.ndarray:
        return np.full(self.count, self.width, dtype=FLOAT)

    @property
    def h(self) -> np.ndarray:
        return np.full(self.count, self.height, dtype=FLOAT)

    @property
    def total_area(self) -> float:
        return self.count * self.width * self.height

    @staticmethod
    def for_netlist(
        netlist: Netlist,
        target_density: float,
        rng: np.random.Generator = None,
    ) -> "FillerCells":
        """Size and seed the filler population for ``netlist``.

        Filler area = target_density · free area − movable area (clamped
        at 0); free area excludes fixed-cell area.  Positions start
        uniformly random inside the die.
        """
        rng = rng or np.random.default_rng(0)
        region = netlist.region
        fixed = ~netlist.movable
        fixed_area = float(np.sum(netlist.cell_area[fixed]))
        free_area = max(region.area - fixed_area, 0.0)
        movable_area = netlist.movable_area
        filler_area = max(target_density * free_area - movable_area, 0.0)

        movable_widths = netlist.cell_w[netlist.movable]
        movable_heights = netlist.cell_h[netlist.movable]
        if movable_widths.size:
            width = float(np.mean(movable_widths))
            height = float(np.mean(movable_heights))
        else:
            width = height = 1.0
        width = max(width, 1e-6)
        height = max(height, 1e-6)
        count = int(filler_area / (width * height))
        x = rng.uniform(region.xl + width / 2, region.xh - width / 2, count)
        y = rng.uniform(region.yl + height / 2, region.yh - height / 2, count)
        return FillerCells(width=width, height=height, x=x, y=y)
