"""Multi-electrostatics for fence regions (DREAMPlace 3.0 style).

One electrostatic system per cell group: each fence's members see a
die-sized field in which everything *outside* their fence boxes is a
static obstruction at target density, and the unconstrained group sees
the fence interiors as obstructions.  Fields therefore push every group
toward (and spread it within) exactly its allowed area, instead of
relying on hard projection alone.

Duck-type compatible with :class:`repro.density.DensitySystem`, so the
gradient engine and placer work unchanged
(``PlacementParams.fence_mode = "multi"`` selects it).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.density.bins import BinGrid
from repro.density.electrostatics import ElectrostaticSolver, FieldSolution
from repro.density.fillers import FillerCells
from repro.density.overflow import overflow_ratio
from repro.density.scatter import DensityScatter, rasterize_exact
from repro.density.system import DensityResult
from repro.dtypes import FLOAT
from repro.netlist import Netlist


class _Group:
    """Per-group static data: member cells, obstruction map, fillers."""

    def __init__(
        self,
        netlist: Netlist,
        grid: BinGrid,
        group_id: int,
        members: np.ndarray,
        fixed_density: np.ndarray,
        target_density: float,
        rng: np.random.Generator,
    ) -> None:
        self.group_id = group_id
        self.members = members          # indices into movable_index order
        region = netlist.region
        xs, ys = grid.centers()
        cx, cy = np.meshgrid(xs, ys, indexing="ij")
        if group_id >= 0:
            fence = netlist.fences[group_id]
            allowed = fence.contains(cx, cy)
        else:
            allowed = np.ones(grid.shape, dtype=bool)
            for fence in netlist.fences:
                allowed &= ~fence.contains(cx, cy)
        # Outside the allowed area: solid obstruction at target density.
        self.obstruction = np.where(allowed, fixed_density, target_density)
        self.allowed = allowed

        # Filler budget: fill this group's free allowed area to target.
        mov = netlist.movable_index
        member_cells = mov[members]
        member_area = float(np.sum(netlist.cell_area[member_cells]))
        free = float(
            np.sum((target_density - self.obstruction)[allowed])
        ) * grid.bin_area
        filler_area = max(free - member_area, 0.0)
        if member_cells.size:
            fw = float(np.mean(netlist.cell_w[member_cells]))
            fh = float(np.mean(netlist.cell_h[member_cells]))
        else:
            fw = fh = 1.0
        fw, fh = max(fw, 1e-6), max(fh, 1e-6)
        count = int(filler_area / (fw * fh))
        # Seed fillers uniformly over allowed bins.
        allowed_bins = np.argwhere(allowed)
        if count and len(allowed_bins):
            picks = allowed_bins[rng.integers(0, len(allowed_bins), count)]
            jitter = rng.uniform(0, 1, (count, 2))
            fx = region.xl + (picks[:, 0] + jitter[:, 0]) * grid.bin_w
            fy = region.yl + (picks[:, 1] + jitter[:, 1]) * grid.bin_h
        else:
            fx = np.empty(0, dtype=FLOAT)
            fy = np.empty(0, dtype=FLOAT)
        self.fillers = FillerCells(width=fw, height=fh, x=fx, y=fy)


class MultiRegionDensitySystem:
    """Drop-in DensitySystem replacement with one system per group."""

    def __init__(
        self,
        netlist: Netlist,
        target_density: float = 1.0,
        grid: Optional[BinGrid] = None,
        extraction: bool = True,   # accepted for interface parity
        use_fillers: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0 < target_density <= 1.0:
            raise ValueError("target_density must be in (0, 1]")
        if not netlist.fences:
            raise ValueError(
                "MultiRegionDensitySystem needs fence regions; use "
                "DensitySystem otherwise"
            )
        self.netlist = netlist
        self.target_density = target_density
        self.grid = grid or BinGrid.for_netlist(netlist)
        self.extraction = extraction
        self.scatter = DensityScatter(self.grid)
        self.solver = ElectrostaticSolver(self.grid)
        rng = rng or np.random.default_rng(1)

        movable = netlist.movable
        self._mov_idx = np.flatnonzero(movable)
        self._mov_w = netlist.cell_w[self._mov_idx]
        self._mov_h = netlist.cell_h[self._mov_idx]
        self.movable_area = netlist.movable_area

        fixed = ~movable
        self._fixed_density = np.minimum(
            rasterize_exact(
                self.grid,
                netlist.fixed_x[fixed],
                netlist.fixed_y[fixed],
                netlist.cell_w[fixed],
                netlist.cell_h[fixed],
            )
            / self.grid.bin_area,
            target_density,
        )

        fence_of = netlist.cell_fence[self._mov_idx]
        group_ids = [-1] + list(range(len(netlist.fences)))
        self.groups: List[_Group] = []
        for g in group_ids:
            members = np.flatnonzero(fence_of == g)
            self.groups.append(
                _Group(
                    netlist,
                    self.grid,
                    g,
                    members,
                    self._fixed_density,
                    target_density,
                    rng,
                )
            )
        if not use_fillers:
            for group in self.groups:
                group.fillers = FillerCells(
                    1.0, 1.0, np.empty(0, dtype=FLOAT), np.empty(0, dtype=FLOAT)
                )
        # Aggregate filler view for the engine/preconditioner: sizes vary
        # per group, so expose explicit per-filler extents.
        self._filler_slices: List[Tuple[int, int]] = []
        xs, ys, ws, hs = [], [], [], []
        cursor = 0
        for group in self.groups:
            f = group.fillers
            self._filler_slices.append((cursor, cursor + f.count))
            cursor += f.count
            xs.append(f.x)
            ys.append(f.y)
            ws.append(np.full(f.count, f.width, dtype=FLOAT))
            hs.append(np.full(f.count, f.height, dtype=FLOAT))
        self.fillers = _AggregateFillers(
            np.concatenate(xs) if xs else np.empty(0, dtype=FLOAT),
            np.concatenate(ys) if ys else np.empty(0, dtype=FLOAT),
            np.concatenate(ws) if ws else np.empty(0, dtype=FLOAT),
            np.concatenate(hs) if hs else np.empty(0, dtype=FLOAT),
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        filler_x: Optional[np.ndarray] = None,
        filler_y: Optional[np.ndarray] = None,
    ) -> DensityResult:
        if filler_x is None:
            filler_x, filler_y = self.fillers.x, self.fillers.y
        netlist = self.netlist
        bin_area = self.grid.bin_area
        mov_x = x[self._mov_idx]
        mov_y = y[self._mov_idx]

        grad_x = np.zeros(netlist.num_cells, dtype=FLOAT)
        grad_y = np.zeros(netlist.num_cells, dtype=FLOAT)
        filler_grad_x = np.zeros(len(filler_x), dtype=FLOAT)
        filler_grad_y = np.zeros(len(filler_y), dtype=FLOAT)

        # Global movable map (shared by overflow; operator extraction).
        global_mov = self.scatter.scatter(mov_x, mov_y, self._mov_w, self._mov_h)
        density = global_mov / bin_area + self._fixed_density
        ovfl = overflow_ratio(
            density, self.grid, self.target_density, self.movable_area
        )

        energy = 0.0
        total = density.copy()
        for gi, group in enumerate(self.groups):
            f_lo, f_hi = self._filler_slices[gi]
            cells = self._mov_idx[group.members]
            gx = mov_x[group.members]
            gy = mov_y[group.members]
            gw = self._mov_w[group.members]
            gh = self._mov_h[group.members]
            fx = filler_x[f_lo:f_hi]
            fy = filler_y[f_lo:f_hi]
            fw = self.fillers.w[f_lo:f_hi]
            fh = self.fillers.h[f_lo:f_hi]

            group_map = self.scatter.scatter(gx, gy, gw, gh)
            self.scatter.scatter(fx, fy, fw, fh, out=group_map)
            group_density = group_map / bin_area + group.obstruction
            solution = self.solver.solve(group_density)
            energy += solution.energy
            total += group_map / bin_area / max(len(self.groups), 1)

            grad_x[cells] = -self.scatter.gather(solution.field_x, gx, gy, gw, gh)
            grad_y[cells] = -self.scatter.gather(solution.field_y, gx, gy, gw, gh)
            filler_grad_x[f_lo:f_hi] = -self.scatter.gather(
                solution.field_x, fx, fy, fw, fh
            )
            filler_grad_y[f_lo:f_hi] = -self.scatter.gather(
                solution.field_y, fx, fy, fw, fh
            )
            last_solution = solution

        return DensityResult(
            overflow=ovfl,
            energy=energy,
            grad_x=grad_x,
            grad_y=grad_y,
            filler_grad_x=filler_grad_x,
            filler_grad_y=filler_grad_y,
            density_map=density,
            total_map=total,
            field=last_solution,
        )

    # ------------------------------------------------------------------
    def density_map_only(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        mov_map = self.scatter.scatter(
            x[self._mov_idx], y[self._mov_idx], self._mov_w, self._mov_h
        )
        return mov_map / self.grid.bin_area + self._fixed_density


class _AggregateFillers:
    """FillerCells-like view over heterogeneous per-group fillers."""

    def __init__(self, x, y, w, h) -> None:
        self.x = x
        self.y = y
        self._w = w
        self._h = h
        # Representative extents for the preconditioner.
        self.width = float(np.mean(w)) if len(w) else 1.0
        self.height = float(np.mean(h)) if len(h) else 1.0

    @property
    def count(self) -> int:
        return int(len(self.x))

    @property
    def w(self) -> np.ndarray:
        return self._w

    @property
    def h(self) -> np.ndarray:
        return self._h

    @property
    def total_area(self) -> float:
        return float(np.sum(self._w * self._h))
