"""Overflow ratio operator (Eq. 7)."""

from __future__ import annotations

import numpy as np

from repro.density.bins import BinGrid
from repro.ops import profiled


def overflow_ratio(
    density: np.ndarray,
    grid: BinGrid,
    target_density: float,
    movable_area: float,
) -> float:
    """OVFL = Σ_b max(D_b − D_t, 0)·A_b / Σ_{i∈V_mov} A_i.

    ``density`` is the dimensionless cell-density map D (movable + fixed,
    no fillers).  Values near 0 mean the density constraint (1b) is met
    everywhere; analytical placers stop GP when OVFL drops below ~0.07.
    """
    profiled("overflow")
    if movable_area <= 0:
        return 0.0
    excess = np.clip(density - target_density, 0.0, None)
    return float(np.sum(excess) * grid.bin_area / movable_area)
