"""Overflow ratio operator (Eq. 7)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.density.bins import BinGrid
from repro.ops import profiled


def overflow_ratio(
    density: np.ndarray,
    grid: BinGrid,
    target_density: float,
    movable_area: float,
    scratch: Optional[np.ndarray] = None,
) -> float:
    """OVFL = Σ_b max(D_b − D_t, 0)·A_b / Σ_{i∈V_mov} A_i.

    ``density`` is the dimensionless cell-density map D (movable + fixed,
    no fillers).  Values near 0 mean the density constraint (1b) is met
    everywhere; analytical placers stop GP when OVFL drops below ~0.07.
    ``scratch`` reuses a map-sized buffer for the clipped excess instead
    of allocating one (same subtract/clip, bit-identical result).
    """
    profiled("overflow")
    if movable_area <= 0:
        return 0.0
    if scratch is None:
        excess = np.clip(density - target_density, 0.0, None)
    else:
        np.subtract(density, target_density, out=scratch)
        np.clip(scratch, 0.0, None, out=scratch)
        excess = scratch
    return float(np.sum(excess) * grid.bin_area / movable_area)
