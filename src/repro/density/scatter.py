"""Area-accumulation density scatter (Eq. 8) and its adjoint gather.

Standard cells are inflated to at least √2× the bin extents with an
area-preserving scale factor (ePlace "density smoothing"), which bounds
the bin window each cell touches and lets the scatter run as a handful of
vectorised ``np.add.at`` passes — the CPU analogue of the GPU area
accumulation kernel.  The gather is the exact adjoint: the electric force
on a cell is the overlap-weighted average of the field over the bins the
cell's charge was scattered into, so energy gradients are consistent.

``rasterize_exact`` is the unsmoothed exact rasteriser, used for fixed
macros (computed once) and as the brute-force reference in tests.

With an attached :class:`~repro.perf.workspace.Workspace` both scatter
and gather run through preallocated ``sc.*`` buffers: the per-axis
overlap/validity rows are computed once per offset into ``(k, n)``
arenas (instead of once per ``(dx, dy)`` pair), window passes compress
into reused scratch, and a fresh scatter with an all-zero destination
accumulates every pass through a single flat ``np.bincount`` — all
bit-identical to the allocating fallback because the same values are
combined in the same order.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.density.bins import BinGrid
from repro.dtypes import BOOL, FLOAT, INT
from repro.ops import profiled, timed
from repro.perf.workspace import Workspace

_SQRT2 = math.sqrt(2.0)


def _overlap_matrix(
    lo: np.ndarray,
    hi: np.ndarray,
    m: int,
    bin_size: float,
    edges: Optional[np.ndarray] = None,
) -> np.ndarray:
    """(N, m) overlap lengths of the intervals ``[lo, hi]`` with all bins.

    One broadcasted min/max against the full bin-edge vector; the basis
    of the einsum paths that handle cells spanning many bins without
    per-cell Python iteration.  ``edges`` lets callers pass a cached
    bin-edge vector instead of recomputing it.
    """
    if edges is None:
        edges = np.arange(m + 1, dtype=FLOAT) * bin_size
    ov = np.minimum(hi[:, None], edges[None, 1:]) - np.maximum(
        lo[:, None], edges[None, :-1]
    )
    return np.clip(ov, 0.0, None)


class DensityScatter:
    """Vectorised scatter/gather between cells and a :class:`BinGrid`.

    Parameters
    ----------
    grid : target bin grid
    smooth : inflate cells below √2·bin size (area preserved).  Disable
        only for exact-accounting tests.
    workspace : optional buffer arena for allocation-free window passes
        (``None`` keeps the plain allocating behaviour, bit-for-bit).
    """

    def __init__(
        self,
        grid: BinGrid,
        smooth: bool = True,
        workspace: Optional[Workspace] = None,
    ) -> None:
        self.grid = grid
        self.smooth = smooth
        self.workspace = workspace
        # Cached bin-edge vectors for the (L, m) overlap-matrix paths.
        self._edges_x = np.arange(grid.m + 1, dtype=FLOAT) * grid.bin_w
        self._edges_y = np.arange(grid.m + 1, dtype=FLOAT) * grid.bin_h

    def attach_workspace(self, workspace: Optional[Workspace]) -> None:
        """Switch the operator onto (or off) an arena after construction."""
        self.workspace = workspace

    # ------------------------------------------------------------------
    def _effective_boxes(self, w: np.ndarray, h: np.ndarray):
        """Smoothed extents and the area-preserving density scale."""
        if self.smooth:
            we = np.maximum(w, _SQRT2 * self.grid.bin_w)
            he = np.maximum(h, _SQRT2 * self.grid.bin_h)
        else:
            we, he = w, h
        area = w * h
        eff_area = we * he
        scale = np.divide(
            area, eff_area, out=np.zeros_like(area), where=eff_area > 0
        )
        return we, he, scale

    def _effective_boxes_ws(self, ws: Workspace, w: np.ndarray, h: np.ndarray,
                            tag: str = ""):
        """Workspace twin of :meth:`_effective_boxes` (``sc.*`` buffers).

        ``tag`` namespaces the returned ``scale`` buffer so externally
        held window handles for different populations never alias even
        when the populations have the same size.
        """
        n = w.shape[0]
        if self.smooth:
            we = ws.get("sc.we", n)
            he = ws.get("sc.he", n)
            np.maximum(w, _SQRT2 * self.grid.bin_w, out=we)
            np.maximum(h, _SQRT2 * self.grid.bin_h, out=he)
        else:
            we, he = w, h
        area = ws.get("sc.area", n)
        eff = ws.get("sc.eff", n)
        np.multiply(w, h, out=area)
        np.multiply(we, he, out=eff)
        emask = ws.get("sc.emask", n, BOOL)
        np.greater(eff, 0.0, out=emask)
        scale = ws.get(f"sc.scale{tag}", n)
        scale.fill(0.0)
        np.divide(area, eff, out=scale, where=emask)
        return we, he, scale

    def _partition_large(self, w: np.ndarray, h: np.ndarray, limit: int = 6):
        """Split cells into vectorised-window (small) and per-cell (large)
        populations; movable macros would otherwise blow up the window
        loop of the vectorised path."""
        bw, bh = self.grid.bin_w, self.grid.bin_h
        large = (w > limit * bw) | (h > limit * bh)
        return ~large, large

    # ------------------------------------------------------------------
    def _axis_overlaps_ws(
        self,
        ws: Workspace,
        tag: str,
        lo: np.ndarray,
        hi: np.ndarray,
        i0: np.ndarray,
        k: int,
        bin_size: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-offset overlap and validity rows for one axis.

        Row ``d`` holds exactly the ``ov``/``valid`` vectors the fallback
        recomputes inside the window loop for offset ``d`` — computed
        once here instead of once per (dx, dy) pair.
        """
        n = lo.shape[0]
        m = self.grid.m
        ov = ws.get(f"sc.ov{tag}", (k, n))
        vv = ws.get(f"sc.vv{tag}", (k, n), BOOL)
        ci = ws.get("sc.ci", n, INT)
        ftmp = ws.get("sc.ftmp", n)
        btmp = ws.get("sc.btmp", n, BOOL)
        for d in range(k):
            row = ov[d]
            vrow = vv[d]
            np.add(i0, d, out=ci)
            np.multiply(ci, bin_size, out=ftmp)
            np.maximum(lo, ftmp, out=ftmp)
            np.add(ci, 1, out=ci)
            np.multiply(ci, bin_size, out=row)
            np.minimum(hi, row, out=row)
            np.subtract(row, ftmp, out=row)
            np.clip(row, 0.0, None, out=row)
            np.subtract(ci, 1, out=ci)
            np.greater_equal(ci, 0, out=vrow)
            np.less(ci, m, out=btmp)
            np.logical_and(vrow, btmp, out=vrow)
            np.greater(row, 0.0, out=btmp)
            np.logical_and(vrow, btmp, out=vrow)
        return ov, vv

    def _prepare_windows_ws(
        self,
        ws: Workspace,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        tag: str = "",
    ):
        """Boxes, base bin indices and per-axis overlap rows (arena-backed).

        ``tag`` namespaces the buffers that outlive this call (scale,
        base indices, overlap/validity rows) for externally held
        handles; scratch buffers stay shared.
        """
        grid = self.grid
        n = x.shape[0]
        we, he, scale = self._effective_boxes_ws(ws, w, h, tag)
        bw, bh = grid.bin_w, grid.bin_h

        xl = ws.get("sc.xl", n)
        np.divide(we, 2, out=xl)
        np.subtract(x, xl, out=xl)
        np.subtract(xl, grid.region.xl, out=xl)
        xh = ws.get("sc.xh", n)
        np.add(xl, we, out=xh)
        yl = ws.get("sc.yl", n)
        np.divide(he, 2, out=yl)
        np.subtract(y, yl, out=yl)
        np.subtract(yl, grid.region.yl, out=yl)
        yh = ws.get("sc.yh", n)
        np.add(yl, he, out=yh)

        ftmp = ws.get("sc.ftmp", n)
        ix0 = ws.get(f"sc.ix0{tag}", n, INT)
        np.divide(xl, bw, out=ftmp)
        np.floor(ftmp, out=ftmp)
        np.copyto(ix0, ftmp, casting="unsafe")
        iy0 = ws.get(f"sc.iy0{tag}", n, INT)
        np.divide(yl, bh, out=ftmp)
        np.floor(ftmp, out=ftmp)
        np.copyto(iy0, ftmp, casting="unsafe")

        kx = int(np.ceil(we.max() / bw)) + 1
        ky = int(np.ceil(he.max() / bh)) + 1
        ovx, vvx = self._axis_overlaps_ws(ws, f"x{tag}", xl, xh, ix0, kx, bw)
        ovy, vvy = self._axis_overlaps_ws(ws, f"y{tag}", yl, yh, iy0, ky, bh)
        return scale, ix0, iy0, ovx, vvx, ovy, vvy, kx, ky

    def prepare_windows(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        tag: str = "",
    ):
        """Precompute the shared window state for one cell population.

        A scatter and its adjoint gathers over the *same* positions and
        sizes recompute identical boxes, bin indices and overlap rows;
        the density system computes them once per population per
        iteration and passes the handle to :meth:`scatter` /
        :meth:`gather_pair` via ``windows=``.

        The handle references arena buffers: it is only valid until the
        next ``prepare_windows`` call with the same ``tag`` for a
        same-shaped population (give concurrently live handles distinct
        tags), and the caller must not mutate ``x, y, w, h`` while it
        is live.
        Returns ``None`` (callers fall back to self-prepared windows)
        when there is no arena, the population is empty, or it contains
        large cells that take the per-cell exact path.
        """
        if self.workspace is None or x.size == 0:
            return None
        _small, large = self._partition_large(w, h)
        if large.any():
            return None
        return self._prepare_windows_ws(self.workspace, x, y, w, h, tag)

    # ------------------------------------------------------------------
    def scatter(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        out: Optional[np.ndarray] = None,
        windows=None,
    ) -> np.ndarray:
        """Accumulate cell areas into a density map of bin *areas*.

        Returns a map of summed overlap areas (divide by ``bin_area`` for
        the dimensionless density D_b of Eq. 8).  ``out`` accumulates in
        place when given (in-place operators, Section 3.1.3).  Cells much
        larger than a bin (movable macros) take an exact per-cell path.
        ``windows`` is an optional :meth:`prepare_windows` handle for
        these exact cells (skips recomputing the overlap rows).
        """
        with timed("density_scatter"):
            if self.workspace is not None and x.size > 0:
                return self._scatter_ws(x, y, w, h, out, windows)
            return self._scatter_alloc(x, y, w, h, out)

    def _scatter_alloc(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        out: Optional[np.ndarray],
    ) -> np.ndarray:
        grid = self.grid
        density = out if out is not None else np.zeros(grid.shape, dtype=FLOAT)
        if x.size == 0:
            return density
        small, large = self._partition_large(w, h)
        if large.any():
            density += rasterize_exact(
                grid, x[large], y[large], w[large], h[large]
            )
            if not small.any():
                return density
            x, y, w, h = x[small], y[small], w[small], h[small]
        we, he, scale = self._effective_boxes(w, h)
        xl = x - we / 2 - grid.region.xl
        yl = y - he / 2 - grid.region.yl
        bw, bh = grid.bin_w, grid.bin_h
        ix0 = np.floor(xl / bw).astype(INT)
        iy0 = np.floor(yl / bh).astype(INT)
        # Window sizes derived from the largest cell this call sees.
        kx = int(np.ceil(we.max() / bw)) + 1
        ky = int(np.ceil(he.max() / bh)) + 1
        profiled("density_scatter", kx * ky)
        # Work metric: cells processed per window pass (operator
        # extraction saves duplicated passes over the same cells).
        profiled("density_scatter_cells", int(x.size) * kx * ky)
        for dx in range(kx):
            cols = ix0 + dx
            # Overlap of [xl, xl+we] with bin column [cols·bw, (cols+1)·bw].
            ov_x = np.minimum(xl + we, (cols + 1) * bw) - np.maximum(xl, cols * bw)
            ov_x = np.clip(ov_x, 0.0, None)
            valid_x = (cols >= 0) & (cols < grid.m) & (ov_x > 0)
            if not valid_x.any():
                continue
            for dy in range(ky):
                rows = iy0 + dy
                ov_y = np.minimum(yl + he, (rows + 1) * bh) - np.maximum(yl, rows * bh)
                ov_y = np.clip(ov_y, 0.0, None)
                valid = valid_x & (rows >= 0) & (rows < grid.m) & (ov_y > 0)
                if not valid.any():
                    continue
                np.add.at(
                    density,
                    (cols[valid], rows[valid]),
                    ov_x[valid] * ov_y[valid] * scale[valid],
                )
        return density

    def _scatter_ws(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        out: Optional[np.ndarray],
        windows=None,
    ) -> np.ndarray:
        ws = self.workspace
        grid = self.grid
        m = grid.m
        density = out
        if windows is None:
            small, large = self._partition_large(w, h)
            if large.any():
                if density is None:
                    density = np.zeros(grid.shape, dtype=FLOAT)
                density += rasterize_exact(
                    grid, x[large], y[large], w[large], h[large]
                )
                if not small.any():
                    return density
                ns = int(np.count_nonzero(small))
                xs = ws.get("sc.xs", ns)
                ys = ws.get("sc.ys", ns)
                wsz = ws.get("sc.wsz", ns)
                hsz = ws.get("sc.hsz", ns)
                np.compress(small, x, out=xs)
                np.compress(small, y, out=ys)
                np.compress(small, w, out=wsz)
                np.compress(small, h, out=hsz)
                x, y, w, h = xs, ys, wsz, hsz
            windows = self._prepare_windows_ws(ws, x, y, w, h)

        n = x.shape[0]
        scale, ix0, iy0, ovx, vvx, ovy, vvy, kx, ky = windows
        profiled("density_scatter", kx * ky)
        profiled("density_scatter_cells", n * kx * ky)

        vbuf = ws.get("sc.valid", n, BOOL)
        cb = ws.get("sc.cb", n)
        itmp = ws.get("sc.itmp", n, INT)

        if density is None:
            # Fresh all-zero destination: collect every window pass and
            # accumulate them in one flat bincount.  Bit-identical to the
            # per-pass np.add.at because the per-bin addends arrive in the
            # same (pass, element) order and both accumulators start at 0.
            cap = n * kx * ky
            flat = ws.get("sc.flat", cap, INT)
            vals = ws.get("sc.vals", cap)
            total = 0
            for dx in range(kx):
                vxrow = vvx[dx]
                if not vxrow.any():
                    continue
                for dy in range(ky):
                    np.logical_and(vxrow, vvy[dy], out=vbuf)
                    k = int(np.count_nonzero(vbuf))
                    if k == 0:
                        continue
                    seg = vals[total:total + k]
                    np.compress(vbuf, ovx[dx], out=seg)
                    np.compress(vbuf, ovy[dy], out=cb[:k])
                    np.multiply(seg, cb[:k], out=seg)
                    np.compress(vbuf, scale, out=cb[:k])
                    np.multiply(seg, cb[:k], out=seg)
                    iseg = flat[total:total + k]
                    np.compress(vbuf, ix0, out=iseg)
                    np.add(iseg, dx, out=iseg)
                    np.multiply(iseg, m, out=iseg)
                    np.compress(vbuf, iy0, out=itmp[:k])
                    np.add(itmp[:k], dy, out=itmp[:k])
                    np.add(iseg, itmp[:k], out=iseg)
                    total += k
            return np.bincount(
                flat[:total], weights=vals[:total], minlength=m * m
            ).reshape(grid.shape)

        # Pre-populated destination (caller out= or large-cell raster):
        # accumulate per pass so the floating-point grouping matches the
        # fallback exactly.
        ci = ws.get("sc.cols", n, INT)
        for dx in range(kx):
            vxrow = vvx[dx]
            if not vxrow.any():
                continue
            for dy in range(ky):
                np.logical_and(vxrow, vvy[dy], out=vbuf)
                k = int(np.count_nonzero(vbuf))
                if k == 0:
                    continue
                seg = ws.get("sc.pass", n)[:k]
                np.compress(vbuf, ovx[dx], out=seg)
                np.compress(vbuf, ovy[dy], out=cb[:k])
                np.multiply(seg, cb[:k], out=seg)
                np.compress(vbuf, scale, out=cb[:k])
                np.multiply(seg, cb[:k], out=seg)
                np.compress(vbuf, ix0, out=ci[:k])
                np.add(ci[:k], dx, out=ci[:k])
                np.compress(vbuf, iy0, out=itmp[:k])
                np.add(itmp[:k], dy, out=itmp[:k])
                np.add.at(density, (ci[:k], itmp[:k]), seg)
        return density

    # ------------------------------------------------------------------
    def gather(
        self,
        field: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        windows=None,
    ) -> np.ndarray:
        """Adjoint of :meth:`scatter`: overlap-weighted field per cell.

        ``field`` is per-bin; the result is Σ_b overlap(i,b)·field_b with
        the same smoothing/scaling as the scatter, i.e. the force on cell
        i whose charge q_i was distributed by :meth:`scatter`.
        ``windows`` is an optional :meth:`prepare_windows` handle for
        these exact cells.
        """
        with timed("density_gather"):
            if windows is not None:
                result = np.zeros(x.shape, dtype=FLOAT)
                return self._gather_small_ws(field, x, y, w, h, result,
                                             windows)
            return self._gather_impl(field, x, y, w, h)

    def gather_pair(
        self,
        field_a: np.ndarray,
        field_b: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        windows=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather two per-bin fields over one shared window computation.

        The x- and y-axis force gathers in the density system use
        identical cell geometry — only the field differs.  Sharing the
        boxes, bin indices and overlap rows between the two halves the
        gather bookkeeping (one window pass instead of two).  Each
        per-cell result is bit-identical to the corresponding single
        :meth:`gather` call: the per-field multiply chain keeps the
        exact same order, only the loop-invariant overlap values are
        reused.  ``windows`` is an optional :meth:`prepare_windows`
        handle for these exact cells.
        """
        with timed("density_gather"):
            if self.workspace is None or x.size == 0:
                return (
                    self._gather_impl(field_a, x, y, w, h),
                    self._gather_impl(field_b, x, y, w, h),
                )
            return self._gather_pair_ws(field_a, field_b, x, y, w, h,
                                        windows)

    def _gather_pair_ws(
        self,
        field_a: np.ndarray,
        field_b: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        windows=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        grid = self.grid
        result_a = np.zeros(x.shape, dtype=FLOAT)
        result_b = np.zeros(x.shape, dtype=FLOAT)
        small, large = (None, None) if windows is not None else \
            self._partition_large(w, h)
        if windows is None and large.any():
            idx = np.flatnonzero(large)
            xl = x[idx] - w[idx] / 2 - grid.region.xl
            yl = y[idx] - h[idx] / 2 - grid.region.yl
            ov_x = _overlap_matrix(xl, xl + w[idx], grid.m, grid.bin_w,
                                   edges=self._edges_x)
            ov_y = _overlap_matrix(yl, yl + h[idx], grid.m, grid.bin_h,
                                   edges=self._edges_y)
            result_a[idx] = np.einsum("im,in,mn->i", ov_x, ov_y, field_a)
            result_b[idx] = np.einsum("im,in,mn->i", ov_x, ov_y, field_b)
            if not small.any():
                return result_a, result_b
            small_idx = np.flatnonzero(small)
            sub_a, sub_b = self._gather_pair_ws(
                field_a, field_b, x[small], y[small], w[small], h[small]
            )
            result_a[small_idx] = sub_a
            result_b[small_idx] = sub_b
            return result_a, result_b

        ws = self.workspace
        m = grid.m
        n = x.shape[0]
        if windows is None:
            windows = self._prepare_windows_ws(ws, x, y, w, h)
        scale, ix0, iy0, ovx, vvx, ovy, vvy, kx, ky = windows
        profiled("density_gather", kx * ky)
        fa_flat = np.ascontiguousarray(field_a).reshape(-1)
        fb_flat = np.ascontiguousarray(field_b).reshape(-1)
        vbuf = ws.get("sc.valid", n, BOOL)
        cb = ws.get("sc.cb", n)
        fva = ws.get("sc.fv", n)
        fvb = ws.get("sc.fv2", n)
        ci = ws.get("sc.cols", n, INT)
        itmp = ws.get("sc.itmp", n, INT)
        for dx in range(kx):
            vxrow = vvx[dx]
            if not vxrow.any():
                continue
            for dy in range(ky):
                np.logical_and(vxrow, vvy[dy], out=vbuf)
                k = int(np.count_nonzero(vbuf))
                if k == 0:
                    continue
                np.compress(vbuf, ix0, out=ci[:k])
                np.add(ci[:k], dx, out=ci[:k])
                np.multiply(ci[:k], m, out=ci[:k])
                np.compress(vbuf, iy0, out=itmp[:k])
                np.add(itmp[:k], dy, out=itmp[:k])
                np.add(ci[:k], itmp[:k], out=ci[:k])
                np.take(fa_flat, ci[:k], out=fva[:k])
                np.take(fb_flat, ci[:k], out=fvb[:k])
                np.compress(vbuf, ovx[dx], out=cb[:k])
                np.multiply(fva[:k], cb[:k], out=fva[:k])
                np.multiply(fvb[:k], cb[:k], out=fvb[:k])
                np.compress(vbuf, ovy[dy], out=cb[:k])
                np.multiply(fva[:k], cb[:k], out=fva[:k])
                np.multiply(fvb[:k], cb[:k], out=fvb[:k])
                np.compress(vbuf, scale, out=cb[:k])
                np.multiply(fva[:k], cb[:k], out=fva[:k])
                np.multiply(fvb[:k], cb[:k], out=fvb[:k])
                result_a[vbuf] += fva[:k]
                result_b[vbuf] += fvb[:k]
        return result_a, result_b

    def _gather_impl(
        self,
        field: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
    ) -> np.ndarray:
        grid = self.grid
        result = np.zeros(x.shape, dtype=FLOAT)
        if x.size == 0:
            return result
        small, large = self._partition_large(w, h)
        if large.any():
            # Large cells (movable macros) span many bins: build the full
            # (L, m) overlap matrices and contract against the field in
            # one einsum instead of iterating cells in Python.
            idx = np.flatnonzero(large)
            xl = x[idx] - w[idx] / 2 - grid.region.xl
            yl = y[idx] - h[idx] / 2 - grid.region.yl
            ov_x = _overlap_matrix(xl, xl + w[idx], grid.m, grid.bin_w,
                                   edges=self._edges_x)
            ov_y = _overlap_matrix(yl, yl + h[idx], grid.m, grid.bin_h,
                                   edges=self._edges_y)
            result[idx] = np.einsum("im,in,mn->i", ov_x, ov_y, field)
            if not small.any():
                return result
            small_idx = np.flatnonzero(small)
            result[small_idx] = self._gather_impl(
                field, x[small], y[small], w[small], h[small]
            )
            return result
        if self.workspace is not None:
            return self._gather_small_ws(field, x, y, w, h, result)
        return self._gather_small_alloc(field, x, y, w, h, result)

    def _gather_small_alloc(
        self,
        field: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        result: np.ndarray,
    ) -> np.ndarray:
        grid = self.grid
        we, he, scale = self._effective_boxes(w, h)
        xl = x - we / 2 - grid.region.xl
        yl = y - he / 2 - grid.region.yl
        bw, bh = grid.bin_w, grid.bin_h
        ix0 = np.floor(xl / bw).astype(INT)
        iy0 = np.floor(yl / bh).astype(INT)
        kx = int(np.ceil(we.max() / bw)) + 1
        ky = int(np.ceil(he.max() / bh)) + 1
        profiled("density_gather", kx * ky)
        for dx in range(kx):
            cols = ix0 + dx
            ov_x = np.minimum(xl + we, (cols + 1) * bw) - np.maximum(xl, cols * bw)
            ov_x = np.clip(ov_x, 0.0, None)
            valid_x = (cols >= 0) & (cols < grid.m) & (ov_x > 0)
            if not valid_x.any():
                continue
            for dy in range(ky):
                rows = iy0 + dy
                ov_y = np.minimum(yl + he, (rows + 1) * bh) - np.maximum(yl, rows * bh)
                ov_y = np.clip(ov_y, 0.0, None)
                valid = valid_x & (rows >= 0) & (rows < grid.m) & (ov_y > 0)
                if not valid.any():
                    continue
                # Masked accumulation: O(valid) work per pass instead of a
                # full zeros_like temporary and an O(N) dense add.
                result[valid] += (
                    field[cols[valid], rows[valid]]
                    * ov_x[valid]
                    * ov_y[valid]
                    * scale[valid]
                )
        return result

    def _gather_small_ws(
        self,
        field: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        result: np.ndarray,
        windows=None,
    ) -> np.ndarray:
        ws = self.workspace
        m = self.grid.m
        n = x.shape[0]
        if windows is None:
            windows = self._prepare_windows_ws(ws, x, y, w, h)
        scale, ix0, iy0, ovx, vvx, ovy, vvy, kx, ky = windows
        profiled("density_gather", kx * ky)
        field_flat = np.ascontiguousarray(field).reshape(-1)
        vbuf = ws.get("sc.valid", n, BOOL)
        cb = ws.get("sc.cb", n)
        fv = ws.get("sc.fv", n)
        ci = ws.get("sc.cols", n, INT)
        itmp = ws.get("sc.itmp", n, INT)
        for dx in range(kx):
            vxrow = vvx[dx]
            if not vxrow.any():
                continue
            for dy in range(ky):
                np.logical_and(vxrow, vvy[dy], out=vbuf)
                k = int(np.count_nonzero(vbuf))
                if k == 0:
                    continue
                np.compress(vbuf, ix0, out=ci[:k])
                np.add(ci[:k], dx, out=ci[:k])
                np.multiply(ci[:k], m, out=ci[:k])
                np.compress(vbuf, iy0, out=itmp[:k])
                np.add(itmp[:k], dy, out=itmp[:k])
                np.add(ci[:k], itmp[:k], out=ci[:k])
                np.take(field_flat, ci[:k], out=fv[:k])
                np.compress(vbuf, ovx[dx], out=cb[:k])
                np.multiply(fv[:k], cb[:k], out=fv[:k])
                np.compress(vbuf, ovy[dy], out=cb[:k])
                np.multiply(fv[:k], cb[:k], out=fv[:k])
                np.compress(vbuf, scale, out=cb[:k])
                np.multiply(fv[:k], cb[:k], out=fv[:k])
                result[vbuf] += fv[:k]
        return result


def rasterize_exact(
    grid: BinGrid,
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    h: np.ndarray,
    window_limit: int = 6,
) -> np.ndarray:
    """Exact (unsmoothed) overlap-area rasterisation, fully vectorised.

    Cells at most ``window_limit`` bins wide take the windowed
    ``np.add.at`` path (a bounded number of all-cell passes — exact here
    because nothing is smoothed); wider cells (fixed macros spanning the
    die) are rasterised through full (L, m) overlap matrices contracted
    in one einsum.  Used for fixed macros at setup and as the reference
    implementation in tests.
    """
    density = np.zeros(grid.shape, dtype=FLOAT)
    if x.size == 0:
        return density
    bw, bh = grid.bin_w, grid.bin_h
    m = grid.m
    alive = (w > 0) & (h > 0)
    wide = alive & ((w > window_limit * bw) | (h > window_limit * bh))
    narrow = alive & ~wide

    if wide.any():
        xl = x[wide] - w[wide] / 2 - grid.region.xl
        yl = y[wide] - h[wide] / 2 - grid.region.yl
        ov_x = _overlap_matrix(xl, xl + w[wide], m, bw)
        ov_y = _overlap_matrix(yl, yl + h[wide], m, bh)
        density += np.einsum("im,in->mn", ov_x, ov_y)
    if not narrow.any():
        return density

    cw, ch = w[narrow], h[narrow]
    xl = x[narrow] - cw / 2 - grid.region.xl
    yl = y[narrow] - ch / 2 - grid.region.yl
    ix0 = np.floor(xl / bw).astype(INT)
    iy0 = np.floor(yl / bh).astype(INT)
    kx = int(np.ceil(cw.max() / bw)) + 1
    ky = int(np.ceil(ch.max() / bh)) + 1
    for dx in range(kx):
        cols = ix0 + dx
        ov_x = np.minimum(xl + cw, (cols + 1) * bw) - np.maximum(xl, cols * bw)
        ov_x = np.clip(ov_x, 0.0, None)
        valid_x = (cols >= 0) & (cols < m) & (ov_x > 0)
        if not valid_x.any():
            continue
        for dy in range(ky):
            rows = iy0 + dy
            ov_y = np.minimum(yl + ch, (rows + 1) * bh) - np.maximum(yl, rows * bh)
            ov_y = np.clip(ov_y, 0.0, None)
            valid = valid_x & (rows >= 0) & (rows < m) & (ov_y > 0)
            if not valid.any():
                continue
            np.add.at(
                density,
                (cols[valid], rows[valid]),
                ov_x[valid] * ov_y[valid],
            )
    return density
