"""Area-accumulation density scatter (Eq. 8) and its adjoint gather.

Standard cells are inflated to at least √2× the bin extents with an
area-preserving scale factor (ePlace "density smoothing"), which bounds
the bin window each cell touches and lets the scatter run as a handful of
vectorised ``np.add.at`` passes — the CPU analogue of the GPU area
accumulation kernel.  The gather is the exact adjoint: the electric force
on a cell is the overlap-weighted average of the field over the bins the
cell's charge was scattered into, so energy gradients are consistent.

``rasterize_exact`` is the unsmoothed exact rasteriser, used for fixed
macros (computed once) and as the brute-force reference in tests.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.density.bins import BinGrid
from repro.dtypes import FLOAT, INT
from repro.ops import profiled

_SQRT2 = math.sqrt(2.0)


def _overlap_matrix(
    lo: np.ndarray, hi: np.ndarray, m: int, bin_size: float
) -> np.ndarray:
    """(N, m) overlap lengths of the intervals ``[lo, hi]`` with all bins.

    One broadcasted min/max against the full bin-edge vector; the basis
    of the einsum paths that handle cells spanning many bins without
    per-cell Python iteration.
    """
    edges = np.arange(m + 1, dtype=FLOAT) * bin_size
    ov = np.minimum(hi[:, None], edges[None, 1:]) - np.maximum(
        lo[:, None], edges[None, :-1]
    )
    return np.clip(ov, 0.0, None)


class DensityScatter:
    """Vectorised scatter/gather between cells and a :class:`BinGrid`.

    Parameters
    ----------
    grid : target bin grid
    smooth : inflate cells below √2·bin size (area preserved).  Disable
        only for exact-accounting tests.
    """

    def __init__(self, grid: BinGrid, smooth: bool = True) -> None:
        self.grid = grid
        self.smooth = smooth

    # ------------------------------------------------------------------
    def _effective_boxes(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, h: np.ndarray
    ):
        """Smoothed extents and the area-preserving density scale."""
        if self.smooth:
            we = np.maximum(w, _SQRT2 * self.grid.bin_w)
            he = np.maximum(h, _SQRT2 * self.grid.bin_h)
        else:
            we, he = w, h
        area = w * h
        eff_area = we * he
        scale = np.where(eff_area > 0, area / np.where(eff_area > 0, eff_area, 1.0), 0.0)
        return we, he, scale

    def _partition_large(self, w: np.ndarray, h: np.ndarray, limit: int = 6):
        """Split cells into vectorised-window (small) and per-cell (large)
        populations; movable macros would otherwise blow up the window
        loop of the vectorised path."""
        bw, bh = self.grid.bin_w, self.grid.bin_h
        large = (w > limit * bw) | (h > limit * bh)
        return ~large, large

    def scatter(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Accumulate cell areas into a density map of bin *areas*.

        Returns a map of summed overlap areas (divide by ``bin_area`` for
        the dimensionless density D_b of Eq. 8).  ``out`` accumulates in
        place when given (in-place operators, Section 3.1.3).  Cells much
        larger than a bin (movable macros) take an exact per-cell path.
        """
        grid = self.grid
        density = out if out is not None else np.zeros(grid.shape, dtype=FLOAT)
        if x.size == 0:
            return density
        small, large = self._partition_large(w, h)
        if large.any():
            density += rasterize_exact(
                grid, x[large], y[large], w[large], h[large]
            )
            if not small.any():
                return density
            x, y, w, h = x[small], y[small], w[small], h[small]
        we, he, scale = self._effective_boxes(x, y, w, h)
        xl = x - we / 2 - grid.region.xl
        yl = y - he / 2 - grid.region.yl
        bw, bh = grid.bin_w, grid.bin_h
        ix0 = np.floor(xl / bw).astype(INT)
        iy0 = np.floor(yl / bh).astype(INT)
        # Window sizes derived from the largest cell this call sees.
        kx = int(np.ceil(we.max() / bw)) + 1
        ky = int(np.ceil(he.max() / bh)) + 1
        profiled("density_scatter", kx * ky)
        # Work metric: cells processed per window pass (operator
        # extraction saves duplicated passes over the same cells).
        profiled("density_scatter_cells", int(x.size) * kx * ky)
        for dx in range(kx):
            cols = ix0 + dx
            # Overlap of [xl, xl+we] with bin column [cols·bw, (cols+1)·bw].
            ov_x = np.minimum(xl + we, (cols + 1) * bw) - np.maximum(xl, cols * bw)
            ov_x = np.clip(ov_x, 0.0, None)
            valid_x = (cols >= 0) & (cols < grid.m) & (ov_x > 0)
            if not valid_x.any():
                continue
            for dy in range(ky):
                rows = iy0 + dy
                ov_y = np.minimum(yl + he, (rows + 1) * bh) - np.maximum(yl, rows * bh)
                ov_y = np.clip(ov_y, 0.0, None)
                valid = valid_x & (rows >= 0) & (rows < grid.m) & (ov_y > 0)
                if not valid.any():
                    continue
                np.add.at(
                    density,
                    (cols[valid], rows[valid]),
                    ov_x[valid] * ov_y[valid] * scale[valid],
                )
        return density

    def gather(
        self,
        field: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
    ) -> np.ndarray:
        """Adjoint of :meth:`scatter`: overlap-weighted field per cell.

        ``field`` is per-bin; the result is Σ_b overlap(i,b)·field_b with
        the same smoothing/scaling as the scatter, i.e. the force on cell
        i whose charge q_i was distributed by :meth:`scatter`.
        """
        grid = self.grid
        result = np.zeros(x.shape, dtype=FLOAT)
        if x.size == 0:
            return result
        small, large = self._partition_large(w, h)
        if large.any():
            # Large cells (movable macros) span many bins: build the full
            # (L, m) overlap matrices and contract against the field in
            # one einsum instead of iterating cells in Python.
            idx = np.flatnonzero(large)
            xl = x[idx] - w[idx] / 2 - grid.region.xl
            yl = y[idx] - h[idx] / 2 - grid.region.yl
            ov_x = _overlap_matrix(xl, xl + w[idx], grid.m, grid.bin_w)
            ov_y = _overlap_matrix(yl, yl + h[idx], grid.m, grid.bin_h)
            result[idx] = np.einsum("im,in,mn->i", ov_x, ov_y, field)
            if not small.any():
                return result
            small_idx = np.flatnonzero(small)
            result[small_idx] = self.gather(
                field, x[small], y[small], w[small], h[small]
            )
            return result
        we, he, scale = self._effective_boxes(x, y, w, h)
        xl = x - we / 2 - grid.region.xl
        yl = y - he / 2 - grid.region.yl
        bw, bh = grid.bin_w, grid.bin_h
        ix0 = np.floor(xl / bw).astype(INT)
        iy0 = np.floor(yl / bh).astype(INT)
        kx = int(np.ceil(we.max() / bw)) + 1
        ky = int(np.ceil(he.max() / bh)) + 1
        profiled("density_gather", kx * ky)
        for dx in range(kx):
            cols = ix0 + dx
            ov_x = np.minimum(xl + we, (cols + 1) * bw) - np.maximum(xl, cols * bw)
            ov_x = np.clip(ov_x, 0.0, None)
            valid_x = (cols >= 0) & (cols < grid.m) & (ov_x > 0)
            if not valid_x.any():
                continue
            for dy in range(ky):
                rows = iy0 + dy
                ov_y = np.minimum(yl + he, (rows + 1) * bh) - np.maximum(yl, rows * bh)
                ov_y = np.clip(ov_y, 0.0, None)
                valid = valid_x & (rows >= 0) & (rows < grid.m) & (ov_y > 0)
                if not valid.any():
                    continue
                contrib = np.zeros_like(result)
                contrib[valid] = (
                    field[cols[valid], rows[valid]]
                    * ov_x[valid]
                    * ov_y[valid]
                    * scale[valid]
                )
                result += contrib
        return result


def rasterize_exact(
    grid: BinGrid,
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    h: np.ndarray,
    window_limit: int = 6,
) -> np.ndarray:
    """Exact (unsmoothed) overlap-area rasterisation, fully vectorised.

    Cells at most ``window_limit`` bins wide take the windowed
    ``np.add.at`` path (a bounded number of all-cell passes — exact here
    because nothing is smoothed); wider cells (fixed macros spanning the
    die) are rasterised through full (L, m) overlap matrices contracted
    in one einsum.  Used for fixed macros at setup and as the reference
    implementation in tests.
    """
    density = np.zeros(grid.shape, dtype=FLOAT)
    if x.size == 0:
        return density
    bw, bh = grid.bin_w, grid.bin_h
    m = grid.m
    alive = (w > 0) & (h > 0)
    wide = alive & ((w > window_limit * bw) | (h > window_limit * bh))
    narrow = alive & ~wide

    if wide.any():
        xl = x[wide] - w[wide] / 2 - grid.region.xl
        yl = y[wide] - h[wide] / 2 - grid.region.yl
        ov_x = _overlap_matrix(xl, xl + w[wide], m, bw)
        ov_y = _overlap_matrix(yl, yl + h[wide], m, bh)
        density += np.einsum("im,in->mn", ov_x, ov_y)
    if not narrow.any():
        return density

    cw, ch = w[narrow], h[narrow]
    xl = x[narrow] - cw / 2 - grid.region.xl
    yl = y[narrow] - ch / 2 - grid.region.yl
    ix0 = np.floor(xl / bw).astype(INT)
    iy0 = np.floor(yl / bh).astype(INT)
    kx = int(np.ceil(cw.max() / bw)) + 1
    ky = int(np.ceil(ch.max() / bh)) + 1
    for dx in range(kx):
        cols = ix0 + dx
        ov_x = np.minimum(xl + cw, (cols + 1) * bw) - np.maximum(xl, cols * bw)
        ov_x = np.clip(ov_x, 0.0, None)
        valid_x = (cols >= 0) & (cols < m) & (ov_x > 0)
        if not valid_x.any():
            continue
        for dy in range(ky):
            rows = iy0 + dy
            ov_y = np.minimum(yl + ch, (rows + 1) * bh) - np.maximum(yl, rows * bh)
            ov_y = np.clip(ov_y, 0.0, None)
            valid = valid_x & (rows >= 0) & (rows < m) & (ov_y > 0)
            if not valid.any():
                continue
            np.add.at(
                density,
                (cols[valid], rows[valid]),
                ov_x[valid] * ov_y[valid],
            )
    return density
