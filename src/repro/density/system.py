"""The assembled density subsystem with operator extraction (Section 3.1.2).

One :class:`DensitySystem` owns the bin grid, the scatter/gather kernels,
the spectral solver, the static fixed-cell map and the filler population,
and turns positions into (overflow, energy, density gradients).

Operator extraction: the movable-cell density map D is the heavy shared
sub-expression of Eq. 8 (overflow input) and Eq. 10 (solver input
D̃ = D + D_fl).  With ``extraction=True`` D is computed once and reused;
with ``extraction=False`` (ablation / DREAMPlace-style fused kernel) the
solver input is scattered in one fused pass and the overflow map is
scattered *again*, duplicating the dominant workload.

Fixed cells are rasterised once at construction; following ePlace's
macro-density scaling, their per-bin contribution is clamped to the
target density so a legal placement can reach zero overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.density.bins import BinGrid
from repro.density.electrostatics import ElectrostaticSolver, FieldSolution
from repro.density.fillers import FillerCells
from repro.density.overflow import overflow_ratio
from repro.density.scatter import DensityScatter, rasterize_exact
from repro.dtypes import FLOAT
from repro.netlist import Netlist
from repro.ops import profiled
from repro.perf.workspace import Workspace


@dataclass
class DensityResult:
    """Everything the gradient engine needs from one density evaluation."""

    overflow: float
    energy: float
    grad_x: np.ndarray        # d(energy)/dx per real cell (0 for fixed)
    grad_y: np.ndarray
    filler_grad_x: np.ndarray
    filler_grad_y: np.ndarray
    density_map: np.ndarray   # dimensionless D (movable + clamped fixed)
    total_map: np.ndarray     # D̃ fed to the solver (includes fillers)
    field: FieldSolution


class DensitySystem:
    """Electrostatic density penalty for one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        target_density: float = 1.0,
        grid: Optional[BinGrid] = None,
        extraction: bool = True,
        use_fillers: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0 < target_density <= 1.0:
            raise ValueError("target_density must be in (0, 1]")
        self.netlist = netlist
        self.target_density = target_density
        self.grid = grid or BinGrid.for_netlist(netlist)
        self.extraction = extraction
        self.workspace: Optional[Workspace] = None
        self.scatter = DensityScatter(self.grid)
        self.solver = ElectrostaticSolver(self.grid)

        movable = netlist.movable
        self._mov_idx = np.flatnonzero(movable)
        self._mov_w = netlist.cell_w[self._mov_idx]
        self._mov_h = netlist.cell_h[self._mov_idx]
        self.movable_area = netlist.movable_area

        # Static fixed-cell map, exact rasterisation, clamped to target.
        fixed = ~movable
        self._fixed_area_map = rasterize_exact(
            self.grid,
            netlist.fixed_x[fixed],
            netlist.fixed_y[fixed],
            netlist.cell_w[fixed],
            netlist.cell_h[fixed],
        )
        self._fixed_density = np.minimum(
            self._fixed_area_map / self.grid.bin_area, target_density
        )

        if use_fillers:
            self.fillers = FillerCells.for_netlist(
                netlist, target_density, rng=rng or np.random.default_rng(1)
            )
        else:
            self.fillers = FillerCells(
                width=1.0, height=1.0, x=np.empty(0, dtype=FLOAT), y=np.empty(0, dtype=FLOAT)
            )

    def attach_workspace(self, workspace: Optional[Workspace]) -> None:
        """Thread a buffer arena through the scatter and solver kernels.

        The maps and gradients placed in :class:`DensityResult` stay
        freshly allocated either way — the gradient engine caches them by
        object identity across iterations, so they must never live in
        reused arena buffers.  Only true scratch goes through the arena.
        """
        self.workspace = workspace
        self.scatter.attach_workspace(workspace)
        self.solver.attach_workspace(workspace)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        filler_x: Optional[np.ndarray] = None,
        filler_y: Optional[np.ndarray] = None,
    ) -> DensityResult:
        """Density penalty at cell centers ``(x, y)`` (+ filler positions)."""
        if filler_x is None:
            filler_x, filler_y = self.fillers.x, self.fillers.y
        ws = self.workspace
        bin_area = self.grid.bin_area
        if ws is not None:
            mov_x = ws.get("ds.mov_x", self._mov_idx.shape[0])
            mov_y = ws.get("ds.mov_y", self._mov_idx.shape[0])
            np.take(x, self._mov_idx, out=mov_x)
            np.take(y, self._mov_idx, out=mov_y)
        else:
            mov_x = x[self._mov_idx]
            mov_y = y[self._mov_idx]

        # Shared window handles: the scatter and the force gathers below
        # run over the same cell geometry, so the boxes/overlap rows are
        # computed once per population per iteration.
        win_mov = win_fil = None
        if ws is not None:
            win_mov = self.scatter.prepare_windows(
                mov_x, mov_y, self._mov_w, self._mov_h, tag="@mov"
            )

        if self.extraction and ws is not None:
            # Same dataflow as below, but the fresh scatter outputs are
            # finalised in place: D = map/A_b + fixed needs no extra
            # temporaries because the scatter already returned new arrays.
            mov_map = self.scatter.scatter(
                mov_x, mov_y, self._mov_w, self._mov_h, windows=win_mov
            )
            np.divide(mov_map, bin_area, out=mov_map)
            np.add(mov_map, self._fixed_density, out=mov_map)
            density = mov_map
            win_fil = self.scatter.prepare_windows(
                filler_x, filler_y, self.fillers.w, self.fillers.h,
                tag="@fil",
            )
            filler_map = self.scatter.scatter(
                filler_x, filler_y, self.fillers.w, self.fillers.h,
                windows=win_fil,
            )
            profiled("density_add")
            np.divide(filler_map, bin_area, out=filler_map)
            np.add(density, filler_map, out=filler_map)
            total = filler_map
        elif self.extraction:
            # D computed once, shared by overflow and D̃ (Fig. 2a).
            mov_map = self.scatter.scatter(mov_x, mov_y, self._mov_w, self._mov_h)
            density = mov_map / bin_area + self._fixed_density
            filler_map = self.scatter.scatter(
                filler_x, filler_y, self.fillers.w, self.fillers.h
            )
            profiled("density_add")
            total = density + filler_map / bin_area
        else:
            # Fused scatter for the solver input...
            all_x = np.concatenate([mov_x, filler_x])
            all_y = np.concatenate([mov_y, filler_y])
            all_w = np.concatenate([self._mov_w, self.fillers.w])
            all_h = np.concatenate([self._mov_h, self.fillers.h])
            fused = self.scatter.scatter(all_x, all_y, all_w, all_h)
            total = fused / bin_area + self._fixed_density
            # ...and a second, duplicated scatter for the overflow map.
            mov_map = self.scatter.scatter(
                mov_x, mov_y, self._mov_w, self._mov_h, windows=win_mov
            )
            density = mov_map / bin_area + self._fixed_density

        ovfl = overflow_ratio(
            density,
            self.grid,
            self.target_density,
            self.movable_area,
            scratch=None if ws is None else ws.get("ds.ovfl", self.grid.shape),
        )
        field = self.solver.solve(total)

        # Force on charge q is qE; the descent gradient of the energy is -qE.
        # gather() returns a fresh array, so the negation can run in place
        # (the result arrays below are cached by the engine and must not
        # alias arena storage).
        grad_x = np.zeros(self.netlist.num_cells, dtype=FLOAT)
        grad_y = np.zeros(self.netlist.num_cells, dtype=FLOAT)
        if ws is not None:
            # Paired gather: both field axes share one window computation
            # (identical cell geometry) — bit-identical per-cell values.
            # The windows themselves are reused from the scatter above.
            if win_fil is None:
                win_fil = self.scatter.prepare_windows(
                    filler_x, filler_y, self.fillers.w, self.fillers.h,
                    tag="@fil",
                )
            mgx, mgy = self.scatter.gather_pair(
                field.field_x, field.field_y,
                mov_x, mov_y, self._mov_w, self._mov_h,
                windows=win_mov,
            )
            filler_grad_x, filler_grad_y = self.scatter.gather_pair(
                field.field_x, field.field_y,
                filler_x, filler_y, self.fillers.w, self.fillers.h,
                windows=win_fil,
            )
        else:
            mgx = self.scatter.gather(
                field.field_x, mov_x, mov_y, self._mov_w, self._mov_h
            )
            mgy = self.scatter.gather(
                field.field_y, mov_x, mov_y, self._mov_w, self._mov_h
            )
            filler_grad_x = self.scatter.gather(
                field.field_x, filler_x, filler_y, self.fillers.w, self.fillers.h
            )
            filler_grad_y = self.scatter.gather(
                field.field_y, filler_x, filler_y, self.fillers.w, self.fillers.h
            )
        np.negative(mgx, out=mgx)
        grad_x[self._mov_idx] = mgx
        np.negative(mgy, out=mgy)
        grad_y[self._mov_idx] = mgy
        np.negative(filler_grad_x, out=filler_grad_x)
        np.negative(filler_grad_y, out=filler_grad_y)
        return DensityResult(
            overflow=ovfl,
            energy=field.energy,
            grad_x=grad_x,
            grad_y=grad_y,
            filler_grad_x=filler_grad_x,
            filler_grad_y=filler_grad_y,
            density_map=density,
            total_map=total,
            field=field,
        )

    # ------------------------------------------------------------------
    def density_map_only(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Dimensionless D (movable + clamped fixed) without solving."""
        mov_map = self.scatter.scatter(
            x[self._mov_idx], y[self._mov_idx], self._mov_w, self._mov_h
        )
        return mov_map / self.grid.bin_area + self._fixed_density
