"""Detailed placement: legal-to-legal HPWL refinement.

Implements the operator set of ABCDPlace (the paper's ISPD-2015 DP
engine) in simplified sequential form:

* **local reordering** — exhaustive permutation of small windows of
  consecutive cells in a row;
* **global swap** — pairwise swap of a cell with a cell near its optimal
  region;
* **independent-set matching** — optimal re-assignment of batches of
  mutually net-disjoint, same-width cells via bipartite matching.

:class:`DetailedPlacer` runs passes of these operators until HPWL stops
improving; it both requires and preserves legality.
"""

from repro.detail.rows import PlacementRows
from repro.detail.engine import DetailedPlacer, DetailedPlacementResult

__all__ = ["PlacementRows", "DetailedPlacer", "DetailedPlacementResult"]
