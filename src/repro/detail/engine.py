"""The detailed placement engine and its three operators."""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.detail.rows import PlacementRows
from repro.netlist import Netlist
from repro.wirelength import hpwl as hpwl_fn


@dataclass
class DetailedPlacementResult:
    """Output of one detailed placement run."""

    x: np.ndarray
    y: np.ndarray
    hpwl_before: float
    hpwl_after: float
    dp_seconds: float
    passes: int
    moves_applied: int

    @property
    def improvement(self) -> float:
        if self.hpwl_before == 0:
            return 0.0
        return 1.0 - self.hpwl_after / self.hpwl_before


class DetailedPlacer:
    """Sequential ABCDPlace-style detailed placer.

    Runs passes of (local reordering → global swap → independent-set
    matching) until a pass improves HPWL by less than ``min_gain`` or
    ``max_passes`` is reached.  Requires a legal input placement and
    keeps it legal.
    """

    def __init__(
        self,
        netlist: Netlist,
        max_passes: int = 2,
        window: int = 3,
        swap_candidates: int = 8,
        swap_radius_rows: int = 3,
        ism_batch: int = 8,
        min_gain: float = 1e-4,
    ) -> None:
        self.netlist = netlist
        self.max_passes = max_passes
        self.window = window
        self.swap_candidates = swap_candidates
        self.swap_radius_rows = swap_radius_rows
        self.ism_batch = ism_batch
        self.min_gain = min_gain
        self._build_adjacency()

    def _fence_ok(self, cell: int, new_x: float, new_y: float) -> bool:
        """True if a fenced cell's box at (new_x, new_y) stays inside its
        fence (always True for unconstrained cells)."""
        nl = self.netlist
        g = nl.cell_fence[cell]
        if g < 0:
            return True
        fence = nl.fences[g]
        hw = np.array([nl.cell_w[cell] / 2])
        hh = np.array([nl.cell_h[cell] / 2])
        return bool(
            fence.contains_box(
                np.array([new_x]), np.array([new_y]), hw, hh
            )[0]
        )

    def _build_adjacency(self) -> None:
        nl = self.netlist
        # cell -> distinct nets CSR.
        pairs = np.unique(
            nl.pin2cell.astype(np.int64) * np.int64(nl.num_nets) + nl.pin2net
        )
        cells = (pairs // nl.num_nets).astype(np.int64)
        nets = (pairs % nl.num_nets).astype(np.int64)
        counts = np.bincount(cells, minlength=nl.num_cells)
        self._cell_net_start = np.concatenate(([0], np.cumsum(counts)))
        self._cell_nets = nets
        # Per-net pin index slices for fast HPWL-of-nets.
        self._net_pins = [
            np.arange(nl.net_start[e], nl.net_start[e + 1]) for e in range(nl.num_nets)
        ]

    # ------------------------------------------------------------------
    def nets_of(self, cells: Sequence[int]) -> np.ndarray:
        pieces = [
            self._cell_nets[self._cell_net_start[c] : self._cell_net_start[c + 1]]
            for c in cells
        ]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces))

    def _nets_hpwl(self, nets: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        """HPWL restricted to ``nets`` — one fused segment reduction."""
        nl = self.netlist
        groups = [self._net_pins[e] for e in nets if len(self._net_pins[e]) >= 2]
        if not groups:
            return 0.0
        pins = np.concatenate(groups)
        starts = np.cumsum([0] + [len(g) for g in groups[:-1]])
        owners = nl.pin2cell[pins]
        px = x[owners] + nl.pin_dx[pins]
        py = y[owners] + nl.pin_dy[pins]
        spans = (
            np.maximum.reduceat(px, starts)
            - np.minimum.reduceat(px, starts)
            + np.maximum.reduceat(py, starts)
            - np.minimum.reduceat(py, starts)
        )
        weights = np.array(
            [nl.net_weight[e] for e in nets if len(self._net_pins[e]) >= 2]
        )
        return float(np.dot(spans, weights))

    # ------------------------------------------------------------------
    def place(self, x: np.ndarray, y: np.ndarray) -> DetailedPlacementResult:
        start = time.perf_counter()
        rows = PlacementRows(self.netlist, x, y)
        before = hpwl_fn(self.netlist, rows.x, rows.y)
        current = before
        moves = 0
        passes = 0
        for passes in range(1, self.max_passes + 1):
            moves += self._local_reorder_pass(rows)
            moves += self._global_swap_pass(rows)
            moves += self._ism_pass(rows)
            after = hpwl_fn(self.netlist, rows.x, rows.y)
            gain = (current - after) / max(current, 1e-12)
            current = after
            if gain < self.min_gain:
                break
        return DetailedPlacementResult(
            x=rows.x,
            y=rows.y,
            hpwl_before=before,
            hpwl_after=current,
            dp_seconds=time.perf_counter() - start,
            passes=passes,
            moves_applied=moves,
        )

    # ------------------------------------------------------------------
    # Operator 1: local reordering
    # ------------------------------------------------------------------
    def _local_reorder_pass(self, rows: PlacementRows) -> int:
        nl = self.netlist
        applied = 0
        for row_i, seg_i, window in rows.iter_windows(self.window):
            window = list(window)
            # Fence guard: reordering across groups could leak a cell out
            # of (or into) a fence; same-group windows are always safe.
            groups = {int(nl.cell_fence[c]) for c in window}
            if len(groups) > 1:
                continue
            nets = self.nets_of(window)
            widths = nl.cell_w[window]
            left0 = rows.x[window[0]] - widths[0] / 2
            # Right bound: next neighbour or segment end.
            cells = rows.members[row_i][seg_i]
            last_pos = cells.index(window[-1])
            if last_pos + 1 < len(cells):
                nxt = cells[last_pos + 1]
                right_bound = rows.x[nxt] - nl.cell_w[nxt] / 2
            else:
                right_bound = rows.space.segments[row_i][seg_i].xh
            base = self._nets_hpwl(nets, rows.x, rows.y)
            original_x = [rows.x[c] for c in window]
            best_perm = None
            best_cost = base - 1e-9
            for perm in itertools.permutations(range(len(window))):
                if perm == tuple(range(len(window))):
                    continue
                cursor = left0
                ok = True
                for k in perm:
                    c = window[k]
                    rows.x[c] = cursor + nl.cell_w[c] / 2
                    cursor += nl.cell_w[c]
                if cursor > right_bound + 1e-9:
                    ok = False
                if ok:
                    cost = self._nets_hpwl(nets, rows.x, rows.y)
                    if cost < best_cost:
                        best_cost = cost
                        best_perm = perm
                for c, ox in zip(window, original_x):
                    rows.x[c] = ox
            if best_perm is not None:
                cursor = left0
                for k in best_perm:
                    c = window[k]
                    rows.x[c] = cursor + nl.cell_w[c] / 2
                    cursor += nl.cell_w[c]
                # Restore sorted order inside the segment.
                cells.sort(key=lambda c: rows.x[c])
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # Operator 2: global swap
    # ------------------------------------------------------------------
    def _optimal_point(self, cell: int, rows: PlacementRows) -> Tuple[float, float]:
        """Median of the other-pin bounding boxes of the cell's nets."""
        nl = self.netlist
        xs: List[float] = []
        ys: List[float] = []
        for e in self.nets_of([cell]):
            pins = self._net_pins[e]
            owner = nl.pin2cell[pins]
            others = pins[owner != cell]
            if len(others) == 0:
                continue
            px = rows.x[nl.pin2cell[others]] + nl.pin_dx[others]
            py = rows.y[nl.pin2cell[others]] + nl.pin_dy[others]
            xs.extend((px.min(), px.max()))
            ys.extend((py.min(), py.max()))
        if not xs:
            return rows.x[cell], rows.y[cell]
        return float(np.median(xs)), float(np.median(ys))

    def _global_swap_pass(self, rows: PlacementRows) -> int:
        nl = self.netlist
        applied = 0
        radius_x = 4 * float(np.mean(nl.cell_w[nl.movable_index])) * self.swap_candidates
        for a in nl.movable_index:
            opt_x, opt_y = self._optimal_point(int(a), rows)
            if abs(opt_x - rows.x[a]) + abs(opt_y - rows.y[a]) < 1e-9:
                continue
            candidates = rows.cells_near(
                opt_x, opt_y, self.swap_radius_rows, radius_x
            )
            candidates = [
                b
                for b in candidates
                if b != a and nl.cell_fence[b] == nl.cell_fence[a]
            ][: self.swap_candidates]
            if not candidates:
                continue
            la, ra = rows.span(int(a))
            nets_a = self.nets_of([int(a)])
            best = None
            best_delta = -1e-9
            for b in candidates:
                lb, rb = rows.span(b)
                wa, wb = nl.cell_w[a], nl.cell_w[b]
                if rb - lb < wa - 1e-9 or ra - la < wb - 1e-9:
                    continue
                ax_new = min(max(rows.x[b], lb + wa / 2), rb - wa / 2)
                bx_new = min(max(rows.x[a], la + wb / 2), ra - wb / 2)
                if nl.cell_fence[a] >= 0:
                    ya_trial = rows.row_y_center(b) - nl.cell_h[b] / 2 + nl.cell_h[a] / 2
                    yb_trial = rows.y[a] - nl.cell_h[a] / 2 + nl.cell_h[b] / 2
                    if not (
                        self._fence_ok(int(a), ax_new, ya_trial)
                        and self._fence_ok(b, bx_new, yb_trial)
                    ):
                        continue
                if rows.cell_slot[int(a)] == rows.cell_slot[b]:
                    # Same segment: the exchanged intervals must stay disjoint.
                    lx, lw, rx, rw = (
                        (ax_new, wa, bx_new, wb)
                        if ax_new <= bx_new
                        else (bx_new, wb, ax_new, wa)
                    )
                    if lx + lw / 2 > rx - rw / 2 + 1e-9:
                        continue
                nets = np.union1d(nets_a, self.nets_of([b]))
                base = self._nets_hpwl(nets, rows.x, rows.y)
                old = (rows.x[a], rows.y[a], rows.x[b], rows.y[b])
                rows.x[a], rows.x[b] = ax_new, bx_new
                ya_new = rows.row_y_center(b) - nl.cell_h[b] / 2 + nl.cell_h[a] / 2
                yb_new = old[1] - nl.cell_h[a] / 2 + nl.cell_h[b] / 2
                rows.y[a], rows.y[b] = ya_new, yb_new
                cost = self._nets_hpwl(nets, rows.x, rows.y)
                rows.x[a], rows.y[a], rows.x[b], rows.y[b] = old
                delta = base - cost
                if delta > best_delta:
                    best_delta = delta
                    best = (b, ax_new, bx_new)
            if best is not None:
                b, ax_new, bx_new = best
                slot_a = rows.cell_slot[int(a)]
                slot_b = rows.cell_slot[b]
                rows.members[slot_a[0]][slot_a[1]].remove(int(a))
                rows.members[slot_b[0]][slot_b[1]].remove(b)
                rows.x[a] = ax_new
                rows.y[a] = rows.space.rows[slot_b[0]].y + nl.cell_h[a] / 2
                rows.x[b] = bx_new
                rows.y[b] = rows.space.rows[slot_a[0]].y + nl.cell_h[b] / 2
                rows.cell_slot[int(a)] = slot_b
                rows.cell_slot[b] = slot_a
                rows._sorted_insert(slot_b, int(a))
                rows._sorted_insert(slot_a, b)
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # Operator 3: independent-set matching
    # ------------------------------------------------------------------
    def _ism_pass(self, rows: PlacementRows) -> int:
        nl = self.netlist
        applied = 0
        movable = nl.movable_index
        widths = nl.cell_w[movable]
        fences = nl.cell_fence[movable]
        # Batches mix neither widths (slot compatibility) nor fence
        # groups (slot exchange would cross fence boundaries).
        keys = [(w, g) for w, g in zip(widths, fences)]
        for key in sorted(set(keys)):
            width, fence_group = key
            group = movable[(widths == width) & (fences == fence_group)]
            if len(group) < 3:
                continue
            batch: List[int] = []
            batch_nets: set = set()
            for cell in group:
                cell_nets = set(self.nets_of([int(cell)]).tolist())
                if batch_nets & cell_nets:
                    continue
                batch.append(int(cell))
                batch_nets |= cell_nets
                if len(batch) == self.ism_batch:
                    applied += self._match_batch(batch, rows)
                    batch = []
                    batch_nets = set()
            if len(batch) >= 3:
                applied += self._match_batch(batch, rows)
        return applied

    def _match_batch(self, batch: List[int], rows: PlacementRows) -> int:
        """Optimally permute net-disjoint equal-width cells over their
        current slots (costs decompose exactly by independence)."""
        k = len(batch)
        slots = [(rows.x[c], rows.y[c], rows.cell_slot[c]) for c in batch]
        cost = np.zeros((k, k))
        for i, cell in enumerate(batch):
            nets = self.nets_of([cell])
            old = (rows.x[cell], rows.y[cell])
            for j, (sx, sy, __) in enumerate(slots):
                rows.x[cell], rows.y[cell] = sx, sy
                cost[i, j] = self._nets_hpwl(nets, rows.x, rows.y)
            rows.x[cell], rows.y[cell] = old
        row_ind, col_ind = linear_sum_assignment(cost)
        baseline = float(np.trace(cost))
        optimal = float(cost[row_ind, col_ind].sum())
        if optimal >= baseline - 1e-9:
            return 0
        # Apply the permutation (equal widths ⇒ slots interchangeable).
        for i, j in zip(row_ind, col_ind):
            if i == j:
                continue
            cell = batch[i]
            sx, sy, slot = slots[j]
            old_slot = rows.cell_slot[cell]
            rows.members[old_slot[0]][old_slot[1]].remove(cell)
            rows.x[cell] = sx
            rows.y[cell] = sy
            rows.cell_slot[cell] = slot
            rows._sorted_insert(slot, cell)
        return 1
