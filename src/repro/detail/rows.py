"""Row/segment occupancy model for detailed placement."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.legalize.rows import RowSpace, build_row_space
from repro.netlist import Netlist


class PlacementRows:
    """Cells organised by (row, segment), kept sorted by x.

    Provides the slot geometry the DP operators need: for any placed cell,
    the free span between its neighbours; for any coordinate, the nearby
    cells.  Mutations keep the structure consistent.
    """

    def __init__(self, netlist: Netlist, x: np.ndarray, y: np.ndarray) -> None:
        self.netlist = netlist
        self.space: RowSpace = self._build_space(netlist)
        self.x = x.copy()
        self.y = y.copy()
        # cell -> (row, segment); segment cell lists sorted by x.
        self.cell_slot: Dict[int, Tuple[int, int]] = {}
        self.members: List[List[List[int]]] = [
            [[] for __ in row_segs] for row_segs in self.space.segments
        ]
        self._assign_all()

    # ------------------------------------------------------------------
    @staticmethod
    def _build_space(netlist: Netlist) -> RowSpace:
        """Row space partitioned at fence boundaries.

        Fence boxes split every row they cross: the outside parts come
        from treating the boxes as blockages, the inside parts from
        clipping to them.  Members and non-members therefore never share
        a segment, so segment-local DP moves can't cross a fence edge.
        """
        if not netlist.fences:
            return build_row_space(netlist)
        boxes = tuple(box for fence in netlist.fences for box in fence.boxes)
        outside = build_row_space(netlist, extra_blockages=boxes)
        merged = [list(segs) for segs in outside.segments]
        for fence in netlist.fences:
            inside = build_row_space(netlist, clip_boxes=fence.boxes)
            for row_i, segs in enumerate(inside.segments):
                merged[row_i].extend(segs)
        for segs in merged:
            segs.sort(key=lambda s: s.xl)
        return RowSpace(
            rows=outside.rows, segments=merged, site_width=outside.site_width
        )

    def _assign_all(self) -> None:
        netlist = self.netlist
        region = netlist.region
        row_height = region.row_height
        for cell in netlist.movable_index:
            yl = self.y[cell] - netlist.cell_h[cell] / 2
            row_i = int(round((yl - region.yl) / row_height))
            row_i = min(max(row_i, 0), self.space.num_rows - 1)
            seg_i = self._segment_of(row_i, self.x[cell])
            if seg_i is None:
                raise ValueError(
                    f"cell {netlist.cell_name[cell]} lies outside every free "
                    f"segment of row {row_i}; run legalization first"
                )
            self.cell_slot[cell] = (row_i, seg_i)
            self.members[row_i][seg_i].append(cell)
        for row_segs in self.members:
            for cells in row_segs:
                cells.sort(key=lambda c: self.x[c])

    def _segment_of(self, row_i: int, x_center: float) -> Optional[int]:
        for seg_i, seg in enumerate(self.space.segments[row_i]):
            if seg.xl - 1e-6 <= x_center <= seg.xh + 1e-6:
                return seg_i
        return None

    # ------------------------------------------------------------------
    def span(self, cell: int) -> Tuple[float, float]:
        """Free span available to ``cell``: (left bound, right bound) set by
        its neighbours / segment ends (cell excluded)."""
        row_i, seg_i = self.cell_slot[cell]
        seg = self.space.segments[row_i][seg_i]
        cells = self.members[row_i][seg_i]
        k = cells.index(cell)
        netlist = self.netlist
        left = seg.xl
        if k > 0:
            prev = cells[k - 1]
            left = self.x[prev] + netlist.cell_w[prev] / 2
        right = seg.xh
        if k + 1 < len(cells):
            nxt = cells[k + 1]
            right = self.x[nxt] - netlist.cell_w[nxt] / 2
        return left, right

    def row_y_center(self, cell: int) -> float:
        row_i, __ = self.cell_slot[cell]
        row = self.space.rows[row_i]
        return row.y + self.netlist.cell_h[cell] / 2

    def move(self, cell: int, new_x: float, row_i: int, seg_i: int) -> None:
        """Relocate a cell (caller guarantees the target span fits)."""
        old_row, old_seg = self.cell_slot[cell]
        self.members[old_row][old_seg].remove(cell)
        self.x[cell] = new_x
        self.y[cell] = (
            self.space.rows[row_i].y + self.netlist.cell_h[cell] / 2
        )
        self.cell_slot[cell] = (row_i, seg_i)
        cells = self.members[row_i][seg_i]
        lo, hi = 0, len(cells)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.x[cells[mid]] < new_x:
                lo = mid + 1
            else:
                hi = mid
        cells.insert(lo, cell)

    def swap_positions(self, a: int, b: int) -> None:
        """Exchange two cells' (x, row) placements (widths may differ as
        long as both spans fit, which the caller has verified)."""
        ax, ay = self.x[a], self.y[a]
        bx, by = self.x[b], self.y[b]
        slot_a = self.cell_slot[a]
        slot_b = self.cell_slot[b]
        # Remove both, then re-insert at exchanged coordinates.
        self.members[slot_a[0]][slot_a[1]].remove(a)
        self.members[slot_b[0]][slot_b[1]].remove(b)
        self.x[a], self.y[a] = bx, self.space.rows[slot_b[0]].y + self.netlist.cell_h[a] / 2
        self.x[b], self.y[b] = ax, self.space.rows[slot_a[0]].y + self.netlist.cell_h[b] / 2
        self.cell_slot[a] = slot_b
        self.cell_slot[b] = slot_a
        self._sorted_insert(slot_b, a)
        self._sorted_insert(slot_a, b)

    def _sorted_insert(self, slot: Tuple[int, int], cell: int) -> None:
        cells = self.members[slot[0]][slot[1]]
        xc = self.x[cell]
        lo, hi = 0, len(cells)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.x[cells[mid]] < xc:
                lo = mid + 1
            else:
                hi = mid
        cells.insert(lo, cell)

    # ------------------------------------------------------------------
    def iter_windows(self, size: int):
        """Yield (row_i, seg_i, [cells]) windows of consecutive cells."""
        for row_i, row_segs in enumerate(self.members):
            for seg_i, cells in enumerate(row_segs):
                for start in range(0, len(cells) - size + 1):
                    yield row_i, seg_i, cells[start : start + size]

    def cells_near(self, x: float, y: float, radius_rows: int, radius_x: float):
        """Movable cells within a row/x window around (x, y)."""
        row_i = self.space.nearest_row(y)
        result = []
        for r in range(
            max(0, row_i - radius_rows),
            min(self.space.num_rows, row_i + radius_rows + 1),
        ):
            for cells in self.members[r]:
                for cell in cells:
                    if abs(self.x[cell] - x) <= radius_x:
                        result.append(cell)
        return result
