"""Canonical numeric dtype policy for kernel modules.

Every array kernel (density, wirelength, autograd, optim) allocates with
an explicit dtype drawn from this module instead of scattering
``np.float64`` literals or relying on NumPy's implicit defaults.  The
``dtype-drift`` lint rule (:mod:`repro.analysis.rules`) enforces this:
switching the whole placer to another precision is a one-line change
here, and accidental ``float64``/``float32`` mixtures — the silent
promotions that double kernel memory traffic — become machine-checked.
"""

from __future__ import annotations

import numpy as np

#: Working floating-point precision of all placement kernels.
FLOAT = np.float64

#: Index / count dtype (bin indices, CSR offsets, cell ids).
INT = np.int64

#: Mask dtype.
BOOL = np.bool_

#: Spectral (FFT) dtype matching :data:`FLOAT` precision.
COMPLEX = np.complex128
