"""repro.explore — population-based global exploration over checkpoint forks.

Analytical global placement is a non-convex descent: a single Nesterov
trajectory converges to one basin, and "Escaping Local Optima in Global
Placement" (PAPERS.md) shows meaningful HPWL is left on the table there.
This package is the search-orchestration layer that treats whole
placement runs as schedulable, forkable, comparable units:

:class:`PopulationController`
    Runs a cohort of GP trajectories in *segments* (bounded
    ``max_iterations`` windows whose boundary state is pinned by the
    GP loop's ``final_checkpoint`` mode).  At each synchronization
    round it ranks members on ``(HPWL, overflow)``, continues the
    top-k survivors via identity forks (bit-for-bit, as if their
    ``max_iterations`` had simply been larger), replaces the culled
    laggards with *perturbed* forks of the survivors (bounded position
    jitter + density-weight re-annealing, drawn from a seeded RNG that
    joins the fork job's content hash), and dispatches every segment
    through the :class:`~repro.service.scheduler.Scheduler` — so
    exploration respects tenant quotas, the result cache, and
    cohort-scoped cancellation (``cancel_group``).

:mod:`repro.explore.perturb`
    The deterministic perturbation model: ``(cohort seed, round, slot)``
    seeds the jitter radius, λ scale and fork seed, so a fixed cohort
    seed reproduces every fork point and cull bit-for-bit.

:mod:`repro.explore.policy`
    Ranking and survivor selection.  The *elite* member — the base-seed
    lineage, slot 0 — is never perturbed and never culled, so the
    cohort's best final HPWL is ≤ the single-run baseline by
    construction (its identity-fork chain replays the baseline
    exactly).

:mod:`repro.explore.report`
    The :class:`~repro.explore.report.ExploreReport` cohort record:
    per-round scores, lineage (who forked whom, with which
    perturbation), culls, and the core-seconds ledger used by the
    equal-compute comparison in :func:`repro.perf.bench.run_explore_bench`.
"""

from repro.explore.controller import ExploreConfig, PopulationController
from repro.explore.perturb import Perturbation, draw_perturbation
from repro.explore.policy import MemberScore, rank_members, select_survivors
from repro.explore.report import ExploreReport

__all__ = [
    "ExploreConfig",
    "ExploreReport",
    "MemberScore",
    "Perturbation",
    "PopulationController",
    "draw_perturbation",
    "rank_members",
    "select_survivors",
]
