"""The population controller: cohort orchestration over checkpoint forks.

A :class:`PopulationController` turns one placement job into a *cohort*
of GP trajectories explored in lock-step segments:

1. **Round 0** seeds ``population`` members (slot ``i`` runs the base
   job with placement seed ``base_seed + i``) through the first segment
   — a GP run capped at the segment's ``max_iterations`` with
   ``final_checkpoint=True``, so the loop pins its boundary state
   instead of clearing the spill.
2. At each **synchronization round** the members are ranked on
   ``(HPWL, overflow)`` (:mod:`repro.explore.policy`).  The top-k
   survivors continue through *identity forks* — bit-for-bit
   continuations, as if their iteration budget had simply been larger
   (the GP loop's boundary emulation replays the γ/λ update a
   continuing run would have done).  The culled laggards' slots are
   refilled with *perturbed forks* of the survivors: bounded position
   jitter plus density-weight re-annealing, drawn deterministically
   from the cohort seed (:mod:`repro.explore.perturb`).
3. Every segment is an ordinary :class:`~repro.runtime.job.PlacementJob`
   dispatched through the :class:`~repro.service.scheduler.Scheduler` —
   fork jobs hash their parent checkpoint and perturbation seed into
   their content hash, so the result cache replays a re-run cohort
   without recompute, tenant quotas apply, and the whole cohort can be
   cancelled as a group (:meth:`PopulationController.cancel`).

Member slot 0 is the **elite**: the base-seed lineage, never perturbed
and never culled.  Its identity-fork chain replays the single-run
baseline bit-for-bit, so the cohort's best final HPWL can never be
worse than the baseline — the invariant the equal-core-seconds bench
gates on.

Determinism: with a fixed cohort seed (and no core-seconds budget) the
full trajectory — every segment job hash, ranking, cull and fork — is
reproducible bit-for-bit.  ``budget_core_seconds`` trades that away:
it is checked against measured wall-clock at round boundaries, so a
budget-stopped cohort is *result*-correct but not round-deterministic.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.explore.perturb import (
    DEFAULT_JITTER_RANGE,
    DEFAULT_LAMBDA_RANGE,
    IDENTITY,
    Perturbation,
    draw_perturbation,
)
from repro.explore.policy import (
    MemberScore,
    assign_parents,
    rank_members,
    select_survivors,
)
from repro.explore.report import ExploreReport
from repro.recovery.fork import ForkSpec
from repro.runtime.events import EventLog
from repro.runtime.job import (
    JobResult,
    PlacementJob,
    execute_job,
    job_checkpoint_dir,
)
from repro.runtime.pool import WorkerPool

#: The pipeline factory every segment job names — GP only, importable
#: from worker processes.
PIPELINE_FACTORY = "repro.explore.controller:gp_pipeline"

#: The slot that replays the single-run baseline (never perturbed).
ELITE_SLOT = 0


def gp_pipeline(job: PlacementJob):
    """Segment pipeline: global placement only.

    Exploration compares GP states at synchronization rounds;
    legalization/detailed placement of intermediate boundary states
    would be wasted work (only the winning lineage's final placement
    ever needs them).
    """
    from repro.pipeline import Pipeline
    from repro.pipeline.stages import GlobalPlaceStage

    return Pipeline([GlobalPlaceStage()], name="explore-gp")


def segment_schedule(
    max_iterations: int,
    rounds: int,
    segment_iters: Optional[int] = None,
) -> List[int]:
    """Iteration boundaries of the cohort's segments.

    Returns a strictly increasing list of segment *end* iterations whose
    last element is ``max_iterations``.  Without ``segment_iters`` the
    budget splits evenly; with it, every segment but the last is that
    long.  Fewer boundaries than ``rounds`` come back when the design's
    iteration budget cannot fit them (1-iteration segments are not
    worth a synchronization).
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if segment_iters is not None and segment_iters < 1:
        raise ValueError("segment_iters must be >= 1")
    if segment_iters is not None:
        raw = [min(max_iterations, segment_iters * (r + 1))
               for r in range(rounds)]
    else:
        raw = [max(1, (max_iterations * (r + 1)) // rounds)
               for r in range(rounds)]
    raw[-1] = max_iterations
    ends: List[int] = []
    for end in raw:
        if not ends or end > ends[-1]:
            ends.append(end)
    return ends


@dataclass
class ExploreConfig:
    """Knobs of one exploration cohort."""

    population: int = 4
    rounds: int = 3
    survivors: int = 2
    seed: int = 0                          # cohort seed (perturbation draws)
    segment_iters: Optional[int] = None    # fixed segment length override
    budget_core_seconds: Optional[float] = None
    jitter_range: Tuple[float, float] = DEFAULT_JITTER_RANGE
    lambda_range: Tuple[float, float] = DEFAULT_LAMBDA_RANGE
    workers: int = 1
    tenant: str = "explore"
    quota: Optional[int] = None            # max concurrently running
    group: Optional[str] = None            # cohort label (cancel scope)

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if not 1 <= self.survivors <= self.population:
            raise ValueError("survivors must be in [1, population]")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if (self.budget_core_seconds is not None
                and self.budget_core_seconds <= 0):
            raise ValueError("budget_core_seconds must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "population": self.population,
            "rounds": self.rounds,
            "survivors": self.survivors,
            "seed": self.seed,
            "segment_iters": self.segment_iters,
            "budget_core_seconds": self.budget_core_seconds,
            "jitter_range": list(self.jitter_range),
            "lambda_range": list(self.lambda_range),
            "workers": self.workers,
            "tenant": self.tenant,
            "quota": self.quota,
            "group": self.group,
        }


@dataclass
class _Member:
    """One population slot's live state."""

    slot: int
    job: PlacementJob
    result: Optional[JobResult] = None
    finished: bool = False      # converged (or ran the final segment)
    failed: bool = False        # last attempt failed; revivable by fork


class PopulationController:
    """Runs one exploration cohort to completion.

    Parameters
    ----------
    job : the base placement job (design + params + runtime policy).
        Its ``params.max_iterations`` is the per-lineage iteration
        budget; its effective seed is the elite lineage's placement
        seed.  The job's pipeline is replaced by the GP-only segment
        pipeline.
    config : cohort knobs (:class:`ExploreConfig`).
    cache : optional :class:`~repro.runtime.cache.ResultCache` — segment
        jobs are content-addressed, so a re-run cohort replays from it.
    events : event sink; cohort telemetry is emitted as ``explore``
        events keyed by the cohort group label.
    workdir : checkpoint root for segment spills (the fork fabric).
    """

    def __init__(
        self,
        job: PlacementJob,
        config: ExploreConfig,
        cache=None,
        events: Optional[EventLog] = None,
        workdir: Optional[str] = None,
    ) -> None:
        from repro.service.scheduler import Scheduler

        self.base = job
        self.config = config
        self.events = events if events is not None else EventLog()
        if workdir is None:
            import tempfile

            workdir = tempfile.mkdtemp(prefix="repro-explore-")
        self.workdir = workdir
        self.checkpoint_root = os.path.join(workdir, "checkpoints")
        design = job.design or os.path.basename(job.aux or "?")
        self.group = config.group or f"explore:{design}:s{config.seed}"
        quotas = ({config.tenant: config.quota}
                  if config.quota is not None else None)
        self.scheduler = Scheduler(cache=cache, events=self.events,
                                   quotas=quotas, dedupe=False)
        self.pool = WorkerPool(max_workers=config.workers, cache=cache,
                               checkpoint_dir=self.checkpoint_root)
        self.best_result: Optional[JobResult] = None
        self.best_slot: Optional[int] = None

    # -- public API ----------------------------------------------------

    def cancel(self, reason: str = "cohort cancelled") -> Dict[str, int]:
        """Cancel every non-terminal segment job of this cohort."""
        return self.scheduler.cancel_group(self.group, reason=reason)

    def run(self) -> ExploreReport:
        """Run the cohort; returns the full :class:`ExploreReport`."""
        base = self.base
        config = self.config
        max_iters = base.params.max_iterations
        base_min = base.params.min_iterations
        ends = segment_schedule(max_iters, config.rounds,
                                config.segment_iters)
        design = base.design or os.path.basename(base.aux or "?")
        report = ExploreReport(design=design, config=config.to_dict())
        base_seed = base.effective_seed()

        members: Dict[int, _Member] = {}
        for slot in range(config.population):
            job = self._segment_job(
                base, seed=base_seed + slot, end=ends[0],
                last=(len(ends) == 1), base_min=base_min,
                tag=f"x{config.seed}-r0-m{slot}",
            )
            members[slot] = _Member(slot=slot, job=job)
            self._record_lineage(report, slot, round_index=0, job=job,
                                 parent_slot=None, parent_hash=None,
                                 perturbation=None, segment_end=ends[0])

        round_index = 0
        try:
            while round_index < len(ends):
                end = ends[round_index]
                last = round_index == len(ends) - 1
                live = [members[s] for s in sorted(members)
                        if not members[s].finished and not members[s].failed]
                if not live:
                    break
                round_rec = self._run_round(report, live, round_index, end,
                                            last)
                report.rounds.append(round_rec)
                if last:
                    break
                # A blown core-seconds budget collapses the remaining
                # schedule into one final segment (documented as not
                # round-deterministic: the check is wall-clock-based).
                if (config.budget_core_seconds is not None
                        and report.total_core_seconds
                        >= config.budget_core_seconds
                        and len(ends) > round_index + 2):
                    ends = ends[:round_index + 1] + [max_iters]
                    report.budget_stopped = True
                self._advance(report, members, round_rec, round_index,
                              end, ends, base_min)
                round_index += 1
        finally:
            self.scheduler.close()

        report.best_slot = self.best_slot
        if self.best_result is not None:
            report.best_hpwl = self.best_result.hpwl
            report.best_job_id = self.best_result.job_id
        self.events.emit(
            "explore", self.group, action="done",
            rounds=len(report.rounds), best_slot=report.best_slot,
            best_hpwl=report.best_hpwl, forks=report.forks,
            culls=report.culls,
            core_seconds=round(report.total_core_seconds, 4),
        )
        return report

    # -- one round -----------------------------------------------------

    def _run_round(self, report: ExploreReport, live: List[_Member],
                   round_index: int, end: int, last: bool) -> Dict[str, Any]:
        """Dispatch one segment for every live member and score it."""
        config = self.config
        self.events.emit(
            "explore", self.group, action="round", round=round_index,
            segment_end=end, members=[m.slot for m in live],
        )
        round_start = time.perf_counter()
        fresh_before = report.total_core_seconds
        entries = [
            self.scheduler.submit(m.job, tenant=config.tenant,
                                  group=self.group)
            for m in live
        ]
        self.pool.execute(self.scheduler, entries, self.events)

        scores: List[MemberScore] = []
        finished_now: List[int] = []
        failed_now: List[int] = []
        cached = 0
        for member, entry in zip(live, entries):
            result = entry.result
            member.result = result
            if result is None or not result.ok:
                member.failed = True
                failed_now.append(member.slot)
                if result is not None and not result.cached:
                    report.total_core_seconds += result.seconds
                continue
            if result.cached:
                report.cached_core_seconds += result.seconds
                cached += 1
            else:
                report.total_core_seconds += result.seconds
            metrics = result.report.metrics if result.report else {}
            converged = bool(metrics.get("gp_converged"))
            if converged or last:
                member.finished = True
                finished_now.append(member.slot)
                self._track_best(member)
            scores.append(MemberScore(
                slot=member.slot,
                hpwl=float(result.hpwl),
                overflow=float(metrics.get("gp_overflow", math.inf)),
            ))
        ranked = rank_members(scores)
        return {
            "round": round_index,
            "segment_end": end,
            "members": {str(m.slot): m.job.content_hash() for m in live},
            "scores": [s.to_dict() for s in ranked],
            "finished": finished_now,
            "failed": failed_now,
            "survivors": [],
            "culled": [],
            "forks": [],
            "cached": cached,
            "core_seconds": round(
                report.total_core_seconds - fresh_before, 6),
            "wall_seconds": round(time.perf_counter() - round_start, 6),
        }

    def _advance(self, report: ExploreReport, members: Dict[int, _Member],
                 round_rec: Dict[str, Any], round_index: int, end: int,
                 ends: List[int], base_min: int) -> None:
        """Select survivors, cull laggards, fork the next round's jobs."""
        config = self.config
        ranked = [MemberScore(**s) for s in round_rec["scores"]]
        continuable = [s for s in ranked
                       if not members[s.slot].finished
                       and not members[s.slot].failed]
        if not continuable:
            return
        survivor_slots, culled_slots = select_survivors(
            continuable, min(config.survivors, len(continuable)),
            elite_slot=ELITE_SLOT,
        )
        open_slots = culled_slots + sorted(
            s for s, m in members.items()
            if m.failed and s not in culled_slots
        )
        next_end = ends[round_index + 1]
        next_last = round_index + 1 == len(ends) - 1
        next_round = round_index + 1

        # Capture the parents' round-r jobs before slots are reassigned;
        # a cache-served parent has no spill on disk, so regenerate it
        # (deterministic recompute) before any child tries to fork it.
        parent_jobs = {s: members[s].job for s in survivor_slots}
        respilled = 0.0
        for slot in survivor_slots:
            respilled += self._ensure_spill(parent_jobs[slot])
        report.total_core_seconds += respilled
        round_rec["respill_seconds"] = round(respilled, 6)

        forks_rec: List[Dict[str, Any]] = []
        for slot, parent_slot in assign_parents(survivor_slots, open_slots):
            perturbation = draw_perturbation(
                config.seed, next_round, slot,
                jitter_range=config.jitter_range,
                lambda_range=config.lambda_range,
            )
            child = self._fork_child(
                parent_jobs[parent_slot], perturbation, end, next_end,
                next_last, base_min,
                tag=f"x{config.seed}-r{next_round}-m{slot}",
            )
            member = members[slot]
            member.job = child
            member.failed = False
            member.result = None
            report.forks += 1
            forks_rec.append({
                "slot": slot,
                "parent_slot": parent_slot,
                "perturbation": perturbation.to_dict(),
            })
            self.events.emit(
                "explore", self.group, action="fork", round=next_round,
                slot=slot, parent_slot=parent_slot,
                child_job_id=child.job_id, **perturbation.to_dict(),
            )
            self._record_lineage(
                report, slot, round_index=next_round, job=child,
                parent_slot=parent_slot,
                parent_hash=parent_jobs[parent_slot].content_hash(),
                perturbation=perturbation, segment_end=next_end,
            )
        for slot in survivor_slots:
            parent = parent_jobs[slot]
            child = self._fork_child(
                parent, IDENTITY, end, next_end, next_last, base_min,
                tag=f"x{config.seed}-r{next_round}-m{slot}",
            )
            members[slot].job = child
            self._record_lineage(
                report, slot, round_index=next_round, job=child,
                parent_slot=slot, parent_hash=parent.content_hash(),
                perturbation=None, segment_end=next_end,
            )
        for slot in culled_slots:
            report.culls += 1
            self.events.emit("explore", self.group, action="cull",
                             round=round_index, slot=slot)
        round_rec["survivors"] = survivor_slots
        round_rec["culled"] = culled_slots
        round_rec["forks"] = forks_rec

    # -- job construction ----------------------------------------------

    def _segment_job(self, like: PlacementJob, seed: int, end: int,
                     last: bool, base_min: int,
                     fork: Optional[ForkSpec] = None,
                     tag: Optional[str] = None) -> PlacementJob:
        """One segment of one lineage, as a schedulable job.

        ``min_iterations`` is clamped under the segment end (params
        validation rejects max < min); ``final_checkpoint`` pins the
        boundary state on every segment but the last.
        """
        params = dataclasses.replace(
            like.params,
            max_iterations=end,
            min_iterations=min(base_min, end),
        )
        return dataclasses.replace(
            like,
            params=params,
            seed=seed,
            pipeline=PIPELINE_FACTORY,
            fork=fork.to_dict() if fork is not None else None,
            final_checkpoint=not last,
            tag=tag,
        )

    def _fork_child(self, parent: PlacementJob,
                    perturbation: Perturbation, end: int, next_end: int,
                    next_last: bool, base_min: int,
                    tag: Optional[str] = None) -> PlacementJob:
        """The next-round continuation (or perturbed fork) of ``parent``.

        The child keeps the parent's *placement* seed — netlist filler
        construction must match the checkpointed arrays — and differs
        in content hash through its :class:`ForkSpec` alone.
        """
        spec = ForkSpec(
            parent=parent.content_hash(),
            iteration=end - 1,
            seed=perturbation.seed,
            jitter=perturbation.jitter,
            lambda_scale=perturbation.lambda_scale,
            fresh_momentum=perturbation.fresh_momentum,
        )
        return self._segment_job(
            parent, seed=parent.effective_seed(), end=next_end,
            last=next_last, base_min=base_min, fork=spec, tag=tag,
        )

    def _ensure_spill(self, job: PlacementJob) -> float:
        """Make sure ``job``'s boundary checkpoint exists on disk.

        A segment served from the result cache never ran here, so its
        spill may be missing; forking it needs the checkpoint, not the
        result.  Recompute inline (deterministic — same job, same
        checkpoint) and return the core-seconds spent.
        """
        spill = job_checkpoint_dir(self.checkpoint_root, job)
        if spill is None or os.path.isfile(
                os.path.join(spill, "checkpoint.json")):
            return 0.0
        start = time.perf_counter()
        execute_job(job, checkpoint_dir=self.checkpoint_root)
        return time.perf_counter() - start

    # -- bookkeeping ---------------------------------------------------

    def _track_best(self, member: _Member) -> None:
        """Track the best *final* result (converged or last-segment).

        Mid-cohort boundary HPWLs are not comparable — an unspread
        placement reads artificially short — so only finished members
        compete for the cohort's answer.
        """
        result = member.result
        if result is None or result.hpwl is None:
            return
        if (self.best_result is None or self.best_result.hpwl is None
                or result.hpwl < self.best_result.hpwl):
            self.best_result = result
            self.best_slot = member.slot

    @staticmethod
    def _record_lineage(report: ExploreReport, slot: int, round_index: int,
                        job: PlacementJob, parent_slot: Optional[int],
                        parent_hash: Optional[str],
                        perturbation: Optional[Perturbation],
                        segment_end: int) -> None:
        record: Dict[str, Any] = {
            "round": round_index,
            "segment_end": segment_end,
            "job_id": job.job_id,
            "hash": job.content_hash(),
            "parent_slot": parent_slot,
            "parent_hash": parent_hash,
        }
        if perturbation is not None:
            record["perturbation"] = perturbation.to_dict()
        report.lineage.setdefault(str(slot), []).append(record)
