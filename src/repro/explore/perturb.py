"""Deterministic perturbation model for exploration forks.

Every perturbed fork is fully determined by ``(cohort seed, round,
slot)``: those three integers seed a :class:`numpy.random.Generator`
from which the fork's jitter radius, λ re-annealing factor and fork
seed are drawn.  The drawn values go into the fork job's
:class:`~repro.recovery.fork.ForkSpec`, which joins the job content
hash — so a cohort re-run with the same seed replays the exact same
forks (and hits the result cache for every segment).

The two knobs mirror what escapes local optima in practice:

jitter
    A bounded uniform position perturbation (in bin units) of the
    movable cells — enough displacement to leave the current basin,
    small enough that the engine re-converges within a segment.

lambda_scale
    Scaling the density weight λ *down* re-opens the density schedule:
    the wirelength term dominates again for a while and the cell cloud
    can re-spread before λ grows back via the ordinary μ updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

#: Seed-stream tag separating exploration draws from every other
#: consumer of a seed (rollback perturbation: 0x7EC0, fork jitter:
#: 0xF04C).
_EXPLORE_SEED_TAG = 0xE590

#: Default jitter radius range, in bin units.
DEFAULT_JITTER_RANGE = (0.5, 2.0)

#: Default λ re-annealing range (scale-down re-opens the schedule).
DEFAULT_LAMBDA_RANGE = (0.4, 1.0)


@dataclass(frozen=True)
class Perturbation:
    """One drawn fork mutation (the semantic half of a ForkSpec)."""

    seed: int                  # RNG stream for the jitter noise itself
    jitter: float              # uniform radius, bin units
    lambda_scale: float        # density-weight re-annealing factor
    fresh_momentum: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": int(self.seed),
            "jitter": float(self.jitter),
            "lambda_scale": float(self.lambda_scale),
            "fresh_momentum": bool(self.fresh_momentum),
        }


#: The identity perturbation: survivors continue bit-for-bit.
IDENTITY = Perturbation(seed=0, jitter=0.0, lambda_scale=1.0,
                        fresh_momentum=False)


def draw_perturbation(
    cohort_seed: int,
    round_index: int,
    slot: int,
    jitter_range: Tuple[float, float] = DEFAULT_JITTER_RANGE,
    lambda_range: Tuple[float, float] = DEFAULT_LAMBDA_RANGE,
) -> Perturbation:
    """The perturbation assigned to ``slot`` at fork round ``round_index``.

    Deterministic: the same ``(cohort_seed, round_index, slot)`` always
    draws the same values, on every platform numpy supports (Philox/
    PCG64 streams are portable).
    """
    rng = np.random.default_rng(
        [int(cohort_seed), _EXPLORE_SEED_TAG, int(round_index), int(slot)]
    )
    return Perturbation(
        seed=int(rng.integers(0, 2**31 - 1)),
        jitter=float(rng.uniform(*jitter_range)),
        lambda_scale=float(rng.uniform(*lambda_range)),
        fresh_momentum=True,
    )
