"""Ranking and survivor-selection policy for exploration cohorts.

At every synchronization round the cohort's live members are ranked on
``(HPWL, overflow, slot)`` — HPWL first (the objective), overflow as
the tie-breaker (a spread-out placement of equal HPWL is worth more),
slot index last so ranking is a total order and therefore
deterministic.

Selection is (μ + λ)-style truncation with *elitism*: the elite slot
(the base-seed lineage, never perturbed) always survives, so the
cohort can never end worse than the single-run baseline — its
identity-fork chain replays the baseline bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class MemberScore:
    """One member's figure of merit at a synchronization round."""

    slot: int
    hpwl: float
    overflow: float

    @property
    def key(self) -> Tuple[float, float, int]:
        return (self.hpwl, self.overflow, self.slot)

    def to_dict(self) -> Dict[str, Any]:
        return {"slot": self.slot, "hpwl": self.hpwl,
                "overflow": self.overflow}


def rank_members(scores: Sequence[MemberScore]) -> List[MemberScore]:
    """Best-first total order on ``(hpwl, overflow, slot)``."""
    return sorted(scores, key=lambda s: s.key)


def select_survivors(
    ranked: Sequence[MemberScore],
    survivors: int,
    elite_slot: int = 0,
) -> Tuple[List[int], List[int]]:
    """Split a ranked field into (survivor slots, culled slots).

    ``survivors`` is the number of lineages that continue; the elite
    slot is forced into the survivor set when present in the field
    (displacing the worst ordinary survivor if needed).  Both returned
    lists preserve rank order.
    """
    if survivors < 1:
        raise ValueError("survivors must be >= 1")
    ranked = list(ranked)
    keep = [s.slot for s in ranked[:survivors]]
    field_slots = [s.slot for s in ranked]
    if elite_slot in field_slots and elite_slot not in keep:
        keep = keep[: survivors - 1] + [elite_slot]
    # Preserve rank order in both halves.
    survivor_slots = [s.slot for s in ranked if s.slot in keep]
    culled_slots = [s.slot for s in ranked if s.slot not in keep]
    return survivor_slots, culled_slots


def assign_parents(
    survivor_slots: Sequence[int],
    open_slots: Sequence[int],
) -> List[Tuple[int, int]]:
    """Pair each open slot with a fork parent, round-robin by rank.

    Better-ranked survivors parent more forks (the first survivor gets
    open slot 0, the second open slot 1, … wrapping around), which
    biases search toward the current best basins without collapsing
    diversity onto a single parent.
    """
    if not survivor_slots:
        raise ValueError("cannot assign fork parents without survivors")
    return [
        (slot, survivor_slots[i % len(survivor_slots)])
        for i, slot in enumerate(open_slots)
    ]
