"""The cohort record an exploration run leaves behind.

An :class:`ExploreReport` is the full, JSON-serializable account of one
:class:`~repro.explore.controller.PopulationController` run: the
configuration, every synchronization round (scores, survivors, culls,
fork assignments with their drawn perturbations), the per-slot lineage
(which segment jobs each lineage ran, and who forked whom), the
core-seconds ledger, and the winning member.  The equal-core-seconds
bench (:func:`repro.perf.bench.run_explore_bench`) embeds it next to
the single-run baseline in ``BENCH_explore.json``; the determinism CI
check re-runs a cohort and asserts two reports' trajectories are
identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Bump when the report layout changes meaning.
SCHEMA_VERSION = 1


@dataclass
class ExploreReport:
    """Everything one cohort run decided and measured."""

    design: str
    config: Dict[str, Any]
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    lineage: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    best_slot: Optional[int] = None
    best_hpwl: Optional[float] = None
    best_job_id: Optional[str] = None
    total_core_seconds: float = 0.0
    cached_core_seconds: float = 0.0     # served by the result cache
    forks: int = 0
    culls: int = 0
    budget_stopped: bool = False         # --budget-core-seconds tripped

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "design": self.design,
            "config": self.config,
            "rounds": self.rounds,
            "lineage": self.lineage,
            "best_slot": self.best_slot,
            "best_hpwl": self.best_hpwl,
            "best_job_id": self.best_job_id,
            "total_core_seconds": self.total_core_seconds,
            "cached_core_seconds": self.cached_core_seconds,
            "forks": self.forks,
            "culls": self.culls,
            "budget_stopped": self.budget_stopped,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExploreReport":
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported explore report schema {data.get('schema')!r}"
            )
        return cls(
            design=data["design"],
            config=dict(data.get("config") or {}),
            rounds=list(data.get("rounds") or []),
            lineage=dict(data.get("lineage") or {}),
            best_slot=data.get("best_slot"),
            best_hpwl=data.get("best_hpwl"),
            best_job_id=data.get("best_job_id"),
            total_core_seconds=float(data.get("total_core_seconds", 0.0)),
            cached_core_seconds=float(data.get("cached_core_seconds", 0.0)),
            forks=int(data.get("forks", 0)),
            culls=int(data.get("culls", 0)),
            budget_stopped=bool(data.get("budget_stopped", False)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExploreReport":
        return cls.from_dict(json.loads(text))

    def trajectory(self) -> List[Dict[str, Any]]:
        """The decision trace a determinism check compares.

        Everything the controller *decided* — rankings, survivor sets,
        fork assignments and their perturbations, per-segment job
        hashes — with the measurements stripped out (two identical
        runs differ in seconds and cache hits, never in decisions).
        """
        _measured = ("core_seconds", "wall_seconds", "respill_seconds",
                     "cached")
        trace: List[Dict[str, Any]] = []
        for rnd in self.rounds:
            entry = {k: v for k, v in rnd.items() if k not in _measured}
            trace.append(entry)
        return trace

    def summary(self) -> str:
        lines = [
            f"explore[{self.design}] population="
            f"{self.config.get('population')} rounds={len(self.rounds)} "
            f"survivors={self.config.get('survivors')}"
        ]
        for rnd in self.rounds:
            scores = rnd.get("scores") or []
            best = scores[0] if scores else None
            lines.append(
                f"  round {rnd.get('round')}: through iteration "
                f"{rnd.get('segment_end')}, "
                f"best hpwl={best['hpwl']:.6g} (slot {best['slot']}), "
                f"culled {len(rnd.get('culled') or [])}, "
                f"forked {len(rnd.get('forks') or [])}"
                if best is not None else
                f"  round {rnd.get('round')}: no finishers"
            )
        if self.best_hpwl is not None:
            lines.append(
                f"  winner: slot {self.best_slot} "
                f"hpwl={self.best_hpwl:.6g} "
                f"({self.total_core_seconds:.2f} core-seconds"
                + (", budget-stopped" if self.budget_stopped else "")
                + ")"
            )
        return "\n".join(lines)
