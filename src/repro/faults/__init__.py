"""repro.faults — deterministic fault injection for chaos testing.

Recovery code that is only exercised by real outages is recovery code
that does not work.  This package injects the failure modes the
:mod:`repro.recovery` and :mod:`repro.runtime` layers claim to survive
— NaN gradients mid-loop, worker crashes, pathological slowdowns,
corrupted cache entries — at *pinned, reproducible* points, so CI can
assert "a NaN at 80% progress recovers to within 5% of the fault-free
HPWL" as a regression test rather than folklore.

See :mod:`repro.faults.plan` for the fault vocabulary and
:mod:`repro.faults.inject` for how each kind is delivered.
:mod:`repro.faults.service` extends the vocabulary to the service
layer (hung workers, slow I/O, shm unlinks, journal corruption,
crash-on-attach) for the ``repro chaos`` soak harness.
"""

from repro.faults.inject import (
    FaultCallback,
    InjectedFault,
    corrupt_cache_entry,
    loop_fault_callback,
)
from repro.faults.plan import FAULT_KINDS, LOOP_KINDS, FaultPlan, FaultSpec
from repro.faults.service import (
    SERVICE_FAULT_KINDS,
    ServiceFaultPlan,
    ServiceFaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "LOOP_KINDS",
    "SERVICE_FAULT_KINDS",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "FaultCallback",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "corrupt_cache_entry",
    "loop_fault_callback",
]
