"""Fault injectors: turn a :class:`~repro.faults.plan.FaultPlan` into
actual failures at the seams the real system fails through.

Loop faults ride the :class:`~repro.core.callbacks.IterationCallback`
protocol (:class:`FaultCallback`), so they hit exactly the surface a
real NaN, hang or crash would — no special hooks inside the engine.
Cache corruption (:func:`corrupt_cache_entry`) writes garbage over a
stored entry the way a torn disk write would.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from repro.analysis.sanitizer import NumericalFault
from repro.core.callbacks import IterationCallback
from repro.faults.plan import FaultPlan, FaultSpec


class InjectedFault(RuntimeError):
    """An injected failure that must *not* be self-healed.

    Deliberately not a :class:`NumericalFault` subclass: the recovery
    controller lets it propagate, so ``abort`` faults kill the run the
    way an external SIGKILL would — leaving any on-disk checkpoint
    behind for a resume test to pick up.
    """


class FaultCallback(IterationCallback):
    """Fires a plan's loop faults at their pinned iterations.

    Each spec fires at most once per callback instance (one instance
    per process/attempt), so a ``nan-grad`` answered by a rollback does
    not re-fire when the loop replays its iteration — one fault, one
    recovery, exactly as a transient numerical glitch behaves.

    ``hard_exit`` selects the worker-process behaviour for ``crash``
    (``os._exit``); inline runs raise :class:`InjectedFault` instead so
    the test process survives.  ``resumed`` marks a run restored from a
    checkpoint: crash faults are skipped then, because the crash
    "already happened" to the previous attempt — without this a
    crash-retry would die at the same iteration forever.
    """

    def __init__(
        self,
        specs: List[FaultSpec],
        hard_exit: bool = False,
        resumed: bool = False,
    ) -> None:
        self.specs = list(specs)
        self.hard_exit = hard_exit
        self.resumed = resumed
        self.fired: List[FaultSpec] = []
        self._armed = set(range(len(self.specs)))

    def on_iteration(self, record) -> None:
        for index in sorted(self._armed):
            spec = self.specs[index]
            if record.iteration != spec.iteration:
                continue
            if spec.kind in ("crash", "hang") and self.resumed:
                continue  # the previous attempt already took this hit
            self._armed.discard(index)
            self.fired.append(spec)
            self._fire(spec, record.iteration)

    def _fire(self, spec: FaultSpec, iteration: int) -> None:
        if spec.kind in ("slow", "hang"):
            # Both hold the GP loop mid-iteration; "hang" is typically
            # sized past the liveness timeout so the supervisor must
            # preempt, while "slow" stays under it (deadline territory).
            time.sleep(spec.seconds)
        elif spec.kind == "nan-grad":
            raise NumericalFault(
                op="fault.nan-grad",
                stage="fault-injection",
                detail="injected non-finite gradient",
                iteration=iteration,
            )
        elif spec.kind == "abort":
            raise InjectedFault(
                f"injected abort at iteration {iteration} "
                f"(simulated external kill)"
            )
        elif spec.kind == "crash":
            if self.hard_exit:
                # A real crash gives no chance to flush or clean up.
                os._exit(spec.exitcode)
            raise InjectedFault(
                f"injected worker crash at iteration {iteration} "
                f"(exitcode {spec.exitcode})"
            )


def loop_fault_callback(
    plan: Optional[FaultPlan],
    job_id: str,
    hard_exit: bool = False,
    resumed: bool = False,
) -> Optional[FaultCallback]:
    """A :class:`FaultCallback` for this job, or None (nothing to do)."""
    if plan is None:
        return None
    specs = plan.loop_faults(job_id)
    if not specs:
        return None
    return FaultCallback(specs, hard_exit=hard_exit, resumed=resumed)


def corrupt_cache_entry(cache, job) -> Optional[str]:
    """Overwrite a cached result's positions file with garbage.

    Simulates a torn write / bit rot on the stored entry; returns the
    corrupted path, or None when the job has no cache entry.  The next
    :meth:`~repro.runtime.cache.ResultCache.get` detects the damage,
    evicts the entry and reports a miss.
    """
    entry = cache.path_for(job.content_hash())
    path = os.path.join(entry, "positions.npy")
    if not os.path.isfile(path):
        return None
    with open(path, "wb") as fh:
        fh.write(b"\x00corrupt\x00")
    return path
