"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultSpec` names one deterministic fault — *the* point of this
harness is that a chaos run is exactly reproducible, so faults are
pinned to a kind, an iteration and (optionally) a job rather than drawn
at runtime.  A :class:`FaultPlan` is an ordered collection of specs plus
the seed that generated it; it serializes to a flat JSON dict so it can
ride inside a :class:`~repro.runtime.job.PlacementJob` manifest across
the worker process boundary.

Fault kinds
-----------
``nan-grad``       raise a :class:`~repro.analysis.sanitizer.NumericalFault`
                   from the GP loop at the given iteration — the same
                   signal a real NaN gradient produces, so it exercises
                   the rollback path end to end.  Fires once per process.
``abort``          raise :class:`~repro.faults.inject.InjectedFault` at
                   the given iteration.  Deliberately *not* a
                   ``NumericalFault``: recovery does not catch it, so it
                   simulates an external kill (SIGKILL, OOM) for
                   resume-determinism tests.
``crash``          hard-exit the worker process (``os._exit``) at the
                   given iteration; inline runs raise ``InjectedFault``
                   instead.  Skipped when the run resumed from a
                   checkpoint, so a crash-retry cannot loop forever.
``slow``           sleep ``seconds`` at the given iteration (exercises
                   timeout enforcement, cooperative and hard).
``hang``           sleep ``seconds`` at the given iteration *without
                   heartbeating* — the worker holds its process and its
                   slot, exactly the straggler signature the
                   :class:`~repro.supervision.liveness.LivenessMonitor`
                   exists to preempt.  Like ``crash`` it is skipped when
                   the run resumed from a checkpoint: the hang "already
                   happened" to the preempted attempt, so the resumed
                   run completes bit-identically to a fault-free one.
``corrupt-cache``  not a loop fault: tests and the chaos harness apply
                   it to a :class:`~repro.runtime.cache.ResultCache`
                   entry via :func:`repro.faults.inject.corrupt_cache_entry`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

#: Kinds injected through the GP loop's iteration-callback seam.
LOOP_KINDS = ("nan-grad", "abort", "crash", "slow", "hang")

FAULT_KINDS = LOOP_KINDS + ("corrupt-cache",)


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault.

    ``job_id`` restricts the fault to jobs whose id starts with it
    (job ids embed a content-hash suffix callers usually cannot
    predict); None applies to every job.
    """

    kind: str
    iteration: int = 0
    job_id: Optional[str] = None
    seconds: float = 0.0           # "slow" only
    exitcode: int = 173            # "crash" only; distinctive on purpose

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")

    def applies_to(self, job_id: str) -> bool:
        return self.job_id is None or job_id.startswith(self.job_id)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": self.kind,
            "iteration": self.iteration,
            "job_id": self.job_id,
            "seconds": self.seconds,
            "exitcode": self.exitcode,
        }
        return {k: v for k, v in data.items() if v is not None}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            iteration=int(data.get("iteration", 0)),
            job_id=data.get("job_id"),
            seconds=float(data.get("seconds", 0.0)),
            exitcode=int(data.get("exitcode", 173)),
        )


@dataclass
class FaultPlan:
    """A reproducible set of faults for one run (or one batch)."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.faults = [
            f if isinstance(f, FaultSpec) else FaultSpec.from_dict(f)
            for f in self.faults
        ]

    def __len__(self) -> int:
        return len(self.faults)

    def for_job(self, job_id: str) -> List[FaultSpec]:
        """The subset of faults that apply to ``job_id``."""
        return [f for f in self.faults if f.applies_to(job_id)]

    def loop_faults(self, job_id: str) -> List[FaultSpec]:
        """The applicable faults injectable through the GP loop."""
        return [f for f in self.for_job(job_id) if f.kind in LOOP_KINDS]

    # -- (de)serialization -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", [])],
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- generation ---------------------------------------------------

    @classmethod
    def sample(
        cls,
        seed: int,
        max_iteration: int,
        kinds: tuple = ("nan-grad",),
        count: int = 1,
        slow_seconds: float = 0.5,
    ) -> "FaultPlan":
        """Draw a deterministic plan from a seed (chaos-testing helper).

        Iterations are drawn uniformly from ``[1, max_iteration)`` — the
        same ``(seed, kinds, count)`` always yields the same plan, which
        is what makes a failing chaos run replayable.
        """
        if max_iteration < 2:
            raise ValueError("max_iteration must be >= 2")
        rng = np.random.default_rng([seed, len(kinds), count])
        faults = []
        for index in range(count):
            kind = kinds[int(rng.integers(len(kinds)))]
            faults.append(
                FaultSpec(
                    kind=kind,
                    iteration=int(rng.integers(1, max_iteration)),
                    seconds=(slow_seconds if kind in ("slow", "hang")
                             else 0.0),
                )
            )
        return cls(faults=faults, seed=seed)
