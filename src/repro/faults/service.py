"""Service-level fault plans: the failure classes a GP-loop plan
cannot express.

A :class:`~repro.faults.plan.FaultPlan` breaks one placement run from
the inside (NaN gradients, crashes at an iteration).  A
:class:`ServiceFaultPlan` breaks the *service* around the runs: hung
workers holding their slot, slow or failing I/O on the result cache
and the journal, shared-memory segments unlinked under readers,
corrupted cache entries, workers that crash every time they pick a job
up, and journal corruption discovered at restart.  It is seeded from
the run id — the same id always produces the same schedule — and it
journals every fault it actually injects (:attr:`injected`), so a
chaos soak can assert that supervisor events match the schedule and a
failing run is replayable from its id alone.

Fault kinds
-----------
``hang``             loop fault (rides the job spec): stop heartbeating
                     but hold the process — the LivenessMonitor must
                     preempt it before the wall-clock deadline.
``crash``            loop fault (rides the job spec): hard-exit the
                     worker mid-iteration; the retry resumes from the
                     checkpoint bit-identically.
``slow-io``          seam fault: delay cache/journal writes (``target``
                     is ``cache-put``, ``cache-get`` or
                     ``journal-append``) for the first ``count``
                     operations — enough, by construction, to trip the
                     matching breaker into its degraded mode.
``shm-unlink``       unlink a published design's shared-memory segments
                     while workers may still attach — the next warm
                     dispatch falls back to a cold load.
``cache-corrupt``    overwrite a stored result entry with garbage; the
                     next lookup must evict and recompute.
``crash-on-attach``  the worker exits the moment it picks the job up,
                     for the first ``count`` attempts — the repeated
                     crashes drive its worker-health score into
                     quarantine.
``journal-truncate`` applied at a mid-soak restart: tear the journal's
                     tail line as a crashed write would.
``journal-corrupt``  applied at a mid-soak restart: duplicate a
                     terminal record and interleave a partial one.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec

SERVICE_FAULT_KINDS = (
    "hang",
    "crash",
    "slow-io",
    "shm-unlink",
    "cache-corrupt",
    "crash-on-attach",
    "journal-truncate",
    "journal-corrupt",
)

#: Kinds that ride a specific soak job (get a ``job_index``).
JOB_BOUND_KINDS = ("hang", "crash", "cache-corrupt", "crash-on-attach")

#: Kinds that need a killable worker process — the thread-fallback pool
#: cannot express them, so inline soaks skip (and report) them.
PROCESS_ONLY_KINDS = ("hang", "crash", "crash-on-attach", "shm-unlink")


def seed_for_run(run_id: str) -> int:
    """The deterministic RNG seed derived from a chaos run id."""
    digest = hashlib.sha256(run_id.encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One scheduled service fault."""

    kind: str
    job_index: Optional[int] = None   # which soak job it rides
    iteration: int = 0                # loop faults: where in the run
    seconds: float = 0.0              # hang hold / slow-io delay
    count: int = 1                    # repeats (attach crashes, io ops)
    target: Optional[str] = None      # slow-io seam
    exitcode: int = 173

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(
                f"unknown service fault kind {self.kind!r} "
                f"(one of {SERVICE_FAULT_KINDS})"
            )
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": self.kind,
            "job_index": self.job_index,
            "iteration": self.iteration,
            "seconds": self.seconds,
            "count": self.count,
            "target": self.target,
            "exitcode": self.exitcode,
        }
        return {k: v for k, v in data.items() if v is not None}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceFaultSpec":
        return cls(
            kind=data["kind"],
            job_index=data.get("job_index"),
            iteration=int(data.get("iteration", 0)),
            seconds=float(data.get("seconds", 0.0)),
            count=int(data.get("count", 1)),
            target=data.get("target"),
            exitcode=int(data.get("exitcode", 173)),
        )


@dataclass
class ServiceFaultPlan:
    """A seeded, self-journaling schedule of service faults."""

    run_id: str
    faults: List[ServiceFaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.faults = [
            f if isinstance(f, ServiceFaultSpec)
            else ServiceFaultSpec.from_dict(f)
            for f in self.faults
        ]
        self.seed = seed_for_run(self.run_id)
        self.injected: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        with self._lock:
            self._job_ids: Dict[int, str] = {}
            # Remaining-operation budgets for seam faults, keyed by spec
            # position so two slow-io specs on one target stay distinct.
            self._io_budget: Dict[int, int] = {
                index: spec.count
                for index, spec in enumerate(self.faults)
                if spec.kind == "slow-io"
            }
            self._attach_budget: Dict[int, int] = {
                index: spec.count
                for index, spec in enumerate(self.faults)
                if spec.kind == "crash-on-attach"
            }

    # -- generation ----------------------------------------------------

    @classmethod
    def sample(
        cls,
        run_id: str,
        jobs: int,
        kinds: tuple = SERVICE_FAULT_KINDS,
        max_iteration: int = 30,
        hang_seconds: float = 120.0,
        slow_io_seconds: float = 0.25,
        slow_io_ops: int = 3,
        crash_attach_count: int = 2,
    ) -> "ServiceFaultPlan":
        """Draw a deterministic schedule for an ``jobs``-job soak.

        Job-bound kinds are dealt distinct job indices from a seeded
        permutation (wrapping when there are more kinds than jobs);
        iterations are drawn uniformly from the middle of the run so a
        checkpoint exists before the fault lands.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_iteration < 4:
            raise ValueError("max_iteration must be >= 4")
        rng = np.random.default_rng(seed_for_run(run_id))
        order = [int(i) for i in rng.permutation(jobs)]
        faults: List[ServiceFaultSpec] = []
        dealt = 0
        for kind in kinds:
            if kind in JOB_BOUND_KINDS:
                job_index = order[dealt % len(order)]
                dealt += 1
                iteration = int(rng.integers(max_iteration // 2,
                                             max_iteration - 1))
                faults.append(ServiceFaultSpec(
                    kind=kind,
                    job_index=job_index,
                    iteration=iteration,
                    seconds=hang_seconds if kind == "hang" else 0.0,
                    count=(crash_attach_count
                           if kind == "crash-on-attach" else 1),
                ))
            elif kind == "slow-io":
                for target in ("cache-put", "journal-append"):
                    faults.append(ServiceFaultSpec(
                        kind="slow-io", target=target,
                        seconds=slow_io_seconds, count=slow_io_ops,
                    ))
            elif kind == "shm-unlink":
                # Fires once at least one job finished, so the design
                # is published and has been attached by readers.
                faults.append(ServiceFaultSpec(
                    kind="shm-unlink",
                    count=max(1, jobs // 4),
                ))
            elif kind in ("journal-truncate", "journal-corrupt"):
                faults.append(ServiceFaultSpec(kind=kind))
        return cls(run_id=run_id, faults=faults)

    # -- schedule queries ----------------------------------------------

    def specs_of(self, *kinds: str) -> List[ServiceFaultSpec]:
        return [spec for spec in self.faults if spec.kind in kinds]

    def bind_job(self, index: int, job_id: str) -> None:
        """Pin a soak job index to its realized job id (needed because
        fault payloads join the content hash — the harness knows ids
        only after building the specs)."""
        with self._lock:
            self._job_ids[index] = job_id

    def job_id_of(self, index: int) -> Optional[str]:
        with self._lock:
            return self._job_ids.get(index)

    def loop_plan(self, index: int) -> Optional[FaultPlan]:
        """The GP-loop plan (hang/crash) riding soak job ``index``, to
        embed in its spec's ``faults`` field — or None."""
        specs = [
            FaultSpec(kind=spec.kind, iteration=spec.iteration,
                      seconds=spec.seconds, exitcode=spec.exitcode)
            for spec in self.faults
            if spec.kind in ("hang", "crash") and spec.job_index == index
        ]
        if not specs:
            return None
        return FaultPlan(faults=specs, seed=self.seed)

    # -- runtime seams -------------------------------------------------

    def io_hook(self, *targets: str) -> Callable[[str], None]:
        """A fault hook for the cache/journal write paths: sleeps
        ``seconds`` for the first ``count`` operations matching each
        scheduled ``slow-io`` target, then stands down."""

        def hook(op: str) -> None:
            delay = 0.0
            with self._lock:
                for index, spec in enumerate(self.faults):
                    if spec.kind != "slow-io" or spec.target != op:
                        continue
                    if targets and op not in targets:
                        continue
                    remaining = self._io_budget.get(index, 0)
                    if remaining <= 0:
                        continue
                    self._io_budget[index] = remaining - 1
                    delay = spec.seconds
                    self._record_locked("slow-io", target=op,
                                        seconds=spec.seconds,
                                        remaining=remaining - 1)
                    break
            if delay > 0:
                time.sleep(delay)

        return hook

    def dispatch_chaos(self, job_id: str,
                       attempt: int) -> Optional[Dict[str, Any]]:
        """The chaos payload to ride a warm-pool task message for this
        dispatch, or None.  ``crash-on-attach`` fires once per budgeted
        attempt and then lets the job run clean."""
        with self._lock:
            for index, spec in enumerate(self.faults):
                if spec.kind != "crash-on-attach":
                    continue
                bound = self._job_ids.get(spec.job_index)
                if bound is None or bound != job_id:
                    continue
                remaining = self._attach_budget.get(index, 0)
                if remaining <= 0:
                    continue
                self._attach_budget[index] = remaining - 1
                self._record_locked("crash-on-attach", job_id=job_id,
                                    attempt=attempt,
                                    remaining=remaining - 1)
                return {"crash_on_attach": True,
                        "exitcode": spec.exitcode}
        return None

    # -- the injection journal -----------------------------------------

    def record(self, kind: str, **info: Any) -> None:
        with self._lock:
            self._record_locked(kind, **info)

    def _record_locked(self, kind: str, **info: Any) -> None:
        self.injected.append({"kind": kind, **info})

    def injected_kinds(self) -> List[str]:
        with self._lock:
            return sorted(entry["kind"] for entry in self.injected)

    def injection_log(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self.injected]

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceFaultPlan":
        return cls(
            run_id=data["run_id"],
            faults=[ServiceFaultSpec.from_dict(f)
                    for f in data.get("faults", [])],
        )
