"""End-to-end placement flows: GP → legalization → detailed placement.

This is the harness behind the paper's Tables 2 and 4: the same LG and
DP engines are applied to every global placer's output, so reported
post-DP HPWL and runtimes are comparable (Section 4.1's "for fair
comparison" protocol).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baseline import DreamPlaceStyleBaseline
from repro.core import PlacementParams, XPlacer
from repro.core.gradient_engine import FieldPredictor
from repro.detail import DetailedPlacer
from repro.legalize import FenceAwareLegalizer, check_legal
from repro.netlist import Netlist
from repro.route import GlobalRouter


@dataclass
class FlowResult:
    """Metrics of one complete placement flow."""

    design: str
    placer: str
    gp_hpwl: float
    gp_seconds: float
    gp_iterations: int
    lg_hpwl: float
    dp_hpwl: float
    dp_seconds: float         # legalization + detailed placement (paper's DP/s)
    legal: bool
    x: np.ndarray
    y: np.ndarray
    top5_overflow: Optional[float] = None
    gr_seconds: Optional[float] = None

    @property
    def final_hpwl(self) -> float:
        return self.dp_hpwl


def run_flow(
    netlist: Netlist,
    placer: str = "xplace",
    params: Optional[PlacementParams] = None,
    field_predictor: Optional[FieldPredictor] = None,
    dp_passes: int = 1,
    route: bool = False,
    route_grid_m: int = 32,
) -> FlowResult:
    """Run GP (+LG+DP, optionally +GR) and collect the table metrics.

    Parameters
    ----------
    placer : ``"xplace"``, ``"xplace-nn"`` or ``"baseline"``
        (``"xplace-nn"`` requires ``field_predictor``).
    route : also run global routing and report top5 overflow (Table 4).
    """
    params = params or PlacementParams()
    if placer == "xplace":
        gp = XPlacer(netlist, params).run()
    elif placer == "xplace-nn":
        if field_predictor is None:
            raise ValueError("xplace-nn flow needs a field_predictor")
        nn_params = _with_guidance(params)
        gp = XPlacer(netlist, nn_params, field_predictor=field_predictor).run()
    elif placer == "baseline":
        gp = DreamPlaceStyleBaseline(netlist, params).run()
    else:
        raise ValueError(f"unknown placer {placer!r}")

    dp_start = time.perf_counter()
    # FenceAwareLegalizer degrades to plain Abacus on fence-free designs.
    lx, ly = FenceAwareLegalizer(netlist).legalize(gp.x, gp.y)
    from repro.wirelength import hpwl as hpwl_fn

    lg_hpwl = hpwl_fn(netlist, lx, ly)
    dp = DetailedPlacer(netlist, max_passes=dp_passes).place(lx, ly)
    dp_seconds = time.perf_counter() - dp_start
    report = check_legal(netlist, dp.x, dp.y)

    result = FlowResult(
        design=netlist.name,
        placer=placer,
        gp_hpwl=gp.hpwl,
        gp_seconds=gp.gp_seconds,
        gp_iterations=gp.iterations,
        lg_hpwl=lg_hpwl,
        dp_hpwl=dp.hpwl_after,
        dp_seconds=dp_seconds,
        legal=report.legal,
        x=dp.x,
        y=dp.y,
    )
    if route:
        routing = GlobalRouter(netlist, grid_m=route_grid_m).route(dp.x, dp.y)
        result.top5_overflow = routing.top5_overflow
        result.gr_seconds = routing.gr_seconds
    return result


def _with_guidance(params: PlacementParams) -> PlacementParams:
    """Copy of ``params`` with neural guidance switched on."""
    import dataclasses

    return dataclasses.replace(params, neural_guidance=True)
