"""End-to-end placement flows: GP → legalization → detailed placement.

This is the harness behind the paper's Tables 2 and 4: the same LG and
DP engines are applied to every global placer's output, so reported
post-DP HPWL and runtimes are comparable (Section 4.1's "for fair
comparison" protocol).

The flow itself is a thin composition of the stock stages in
:mod:`repro.pipeline` — :func:`build_standard_pipeline` returns the
stage list, :func:`run_flow` runs it and repackages the stage metrics
into the historical :class:`FlowResult` shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core import PlacementParams
from repro.core.callbacks import IterationCallback
from repro.core.gradient_engine import FieldPredictor
from repro.netlist import Netlist
from repro.pipeline import (
    DetailStage,
    FlowReport,
    GlobalPlaceStage,
    LegalizeStage,
    Pipeline,
    PlacementContext,
    RouteStage,
)


@dataclass
class FlowResult:
    """Metrics of one complete placement flow."""

    design: str
    placer: str
    gp_hpwl: float
    gp_seconds: float
    gp_iterations: int
    lg_hpwl: float
    dp_hpwl: float
    dp_seconds: float         # legalization + detailed placement (paper's DP/s)
    legal: bool
    x: np.ndarray
    y: np.ndarray
    top5_overflow: Optional[float] = None
    gr_seconds: Optional[float] = None
    report: Optional[FlowReport] = None   # per-stage timing/metric breakdown

    @property
    def final_hpwl(self) -> float:
        return self.dp_hpwl


def build_standard_pipeline(
    placer: str = "xplace",
    dp_passes: int = 1,
    route: bool = False,
    route_grid_m: int = 32,
) -> Pipeline:
    """The GP → LG → DP (→ GR) pipeline behind Tables 2 and 4."""
    stages = [
        GlobalPlaceStage(placer),
        LegalizeStage(),
        DetailStage(passes=dp_passes),
    ]
    if route:
        stages.append(RouteStage(grid_m=route_grid_m))
    return Pipeline(stages, name="standard-flow")


def run_flow(
    netlist: Netlist,
    placer: str = "xplace",
    params: Optional[PlacementParams] = None,
    field_predictor: Optional[FieldPredictor] = None,
    dp_passes: int = 1,
    route: bool = False,
    route_grid_m: int = 32,
    callbacks: Optional[Sequence[IterationCallback]] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> FlowResult:
    """Run GP (+LG+DP, optionally +GR) and collect the table metrics.

    Parameters
    ----------
    placer : ``"xplace"``, ``"xplace-nn"``, ``"baseline"`` or
        ``"quadratic"`` (``"xplace-nn"`` requires ``field_predictor``).
    route : also run global routing and report top5 overflow (Table 4).
    callbacks : iteration callbacks attached to the GP loop.
    checkpoint_dir : arm GP-loop checkpoint spilling into this
        directory (crash/rollback recovery, see :mod:`repro.recovery`).
    resume : resume the GP loop from the spilled checkpoint in
        ``checkpoint_dir`` when one exists.
    """
    ctx = PlacementContext(
        netlist=netlist,
        params=params or PlacementParams(),
        placer=placer,
        field_predictor=field_predictor,
        callbacks=list(callbacks or ()),
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    pipeline = build_standard_pipeline(
        placer=placer, dp_passes=dp_passes, route=route, route_grid_m=route_grid_m
    )
    report = pipeline.run(ctx)

    metrics = ctx.metrics
    result = FlowResult(
        design=netlist.name,
        placer=placer,
        gp_hpwl=metrics["gp_hpwl"],
        gp_seconds=metrics["gp_seconds"],
        gp_iterations=metrics["gp_iterations"],
        lg_hpwl=metrics["lg_hpwl"],
        dp_hpwl=metrics["dp_hpwl"],
        dp_seconds=report.seconds("lg", "dp"),
        legal=metrics["legal"],
        x=ctx.x,
        y=ctx.y,
        report=report,
    )
    if route:
        result.top5_overflow = metrics["top5_overflow"]
        result.gr_seconds = metrics["gr_seconds"]
    return result


def run_job(job, cache=None, emit=None, checkpoint_dir=None, resume=False):
    """Entry point for one :class:`repro.runtime.PlacementJob`, inline.

    The job-spec twin of :func:`run_flow`: loads the job's design,
    composes its pipeline and executes it in the current process,
    consulting/updating an optional
    :class:`~repro.runtime.cache.ResultCache` and streaming loop events
    to ``emit``.  ``checkpoint_dir``/``resume`` arm GP-loop checkpoint
    recovery exactly as in :func:`run_flow`.  For parallel execution,
    timeouts and retries, hand the job to a
    :class:`~repro.runtime.pool.WorkerPool` instead.
    """
    from repro.runtime.job import execute_job

    if cache is not None:
        hit = cache.get(job)
        if hit is not None:
            return hit
    result = execute_job(job, emit=emit, checkpoint_dir=checkpoint_dir,
                         resume=resume)
    if cache is not None:
        cache.put(job, result)
    return result
