"""Mixed-size placement flow (ePlace-MS style mGP → mLG → cGP/LG/DP).

The paper builds on ePlace-MS, whose flow places macros and standard
cells together (mGP), legalizes the macros (mLG), freezes them, and
finishes the standard cells around them.  This module provides that
flow on top of the existing engines:

1. **mGP** — XPlacer with movable macros participating in wirelength and
   density (the density scatter handles macro-sized movables exactly);
2. **mLG** — :class:`repro.legalize.macros.MacroLegalizer`;
3. **freeze** — macros become fixed blockages in a derived netlist;
4. **cGP + LG + DP** — the standard flow refines the remaining cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core import PlacementParams, XPlacer
from repro.detail import DetailedPlacer
from repro.legalize import FenceAwareLegalizer, check_legal
from repro.legalize.macros import MacroLegalizer
from repro.netlist import Netlist
from repro.wirelength import hpwl as hpwl_fn


def movable_macro_indices(netlist: Netlist, row_multiple: float = 2.0) -> np.ndarray:
    """Movable cells taller than ``row_multiple`` rows count as macros."""
    row_height = netlist.region.row_height
    mov = netlist.movable_index
    return mov[netlist.cell_h[mov] >= row_multiple * row_height - 1e-9]


def freeze_cells(
    netlist: Netlist, cells: np.ndarray, x: np.ndarray, y: np.ndarray
) -> Netlist:
    """Derived netlist with ``cells`` fixed at (x, y) (same connectivity)."""
    movable = netlist.movable.copy()
    movable[cells] = False
    fixed_x = netlist.fixed_x.copy()
    fixed_y = netlist.fixed_y.copy()
    fixed_x[cells] = x[cells]
    fixed_y[cells] = y[cells]
    cell_fence = netlist.cell_fence.copy()
    cell_fence[cells] = -1  # fence constraints live on std cells only
    return Netlist(
        cell_name=netlist.cell_name,
        cell_w=netlist.cell_w,
        cell_h=netlist.cell_h,
        movable=movable,
        fixed_x=fixed_x,
        fixed_y=fixed_y,
        pin2cell=netlist.pin2cell,
        pin_dx=netlist.pin_dx,
        pin_dy=netlist.pin_dy,
        pin2net=netlist.pin2net,
        net_start=netlist.net_start,
        net_name=netlist.net_name,
        net_weight=netlist.net_weight,
        region=netlist.region,
        name=netlist.name,
        fences=netlist.fences,
        cell_fence=cell_fence,
    )


@dataclass
class MixedSizeResult:
    """Output of the mixed-size flow."""

    x: np.ndarray
    y: np.ndarray
    hpwl: float
    num_macros: int
    macro_displacement: float    # mLG mean displacement
    mgp_seconds: float
    finish_seconds: float
    legal: bool


def run_mixed_size_flow(
    netlist: Netlist,
    params: Optional[PlacementParams] = None,
    dp_passes: int = 1,
) -> MixedSizeResult:
    """Full mGP → mLG → freeze → cGP/LG/DP mixed-size flow."""
    params = params or PlacementParams()
    macros = movable_macro_indices(netlist)

    start = time.perf_counter()
    mgp = XPlacer(netlist, params).run()
    mgp_seconds = time.perf_counter() - start

    start = time.perf_counter()
    if len(macros):
        lx, ly = MacroLegalizer(netlist).legalize(mgp.x, mgp.y, macros)
        displacement = float(
            np.mean(
                np.abs(lx[macros] - mgp.x[macros])
                + np.abs(ly[macros] - mgp.y[macros])
            )
        )
    else:
        lx, ly = mgp.x, mgp.y
        displacement = 0.0

    frozen = freeze_cells(netlist, macros, lx, ly)
    # cGP: re-spread the standard cells around the frozen macros.
    cgp = XPlacer(frozen, params).run()
    sx, sy = FenceAwareLegalizer(frozen).legalize(cgp.x, cgp.y)
    dp = DetailedPlacer(frozen, max_passes=dp_passes).place(sx, sy)
    finish_seconds = time.perf_counter() - start

    report = check_legal(frozen, dp.x, dp.y)
    return MixedSizeResult(
        x=dp.x,
        y=dp.y,
        hpwl=hpwl_fn(netlist, dp.x, dp.y),
        num_macros=len(macros),
        macro_displacement=displacement,
        mgp_seconds=mgp_seconds,
        finish_seconds=finish_seconds,
        legal=report.legal,
    )
