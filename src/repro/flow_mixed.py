"""Mixed-size placement flow (ePlace-MS style mGP → mLG → cGP/LG/DP).

The paper builds on ePlace-MS, whose flow places macros and standard
cells together (mGP), legalizes the macros (mLG), freezes them, and
finishes the standard cells around them.  The flow is a pipeline over
the stock stages in :mod:`repro.pipeline`:

1. **mGP** — :class:`GlobalPlaceStage` with movable macros participating
   in wirelength and density (the density scatter handles macro-sized
   movables exactly);
2. **mLG** — :class:`MacroLegalizeStage`
   (:class:`repro.legalize.macros.MacroLegalizer`);
3. **freeze** — :class:`FreezeStage`: macros become fixed blockages in a
   derived netlist;
4. **cGP + LG + DP** — the standard stages refine the remaining cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import PlacementParams
from repro.netlist import Netlist
from repro.pipeline import (
    DetailStage,
    FlowReport,
    FreezeStage,
    GlobalPlaceStage,
    LegalizeStage,
    MacroLegalizeStage,
    Pipeline,
    PlacementContext,
    freeze_cells,
    movable_macro_indices,
)
from repro.wirelength import hpwl as hpwl_fn

__all__ = [
    "MixedSizeResult",
    "run_mixed_size_flow",
    "build_mixed_size_pipeline",
    "freeze_cells",
    "movable_macro_indices",
]


@dataclass
class MixedSizeResult:
    """Output of the mixed-size flow."""

    x: np.ndarray
    y: np.ndarray
    hpwl: float
    num_macros: int
    macro_displacement: float    # mLG mean displacement
    mgp_seconds: float
    finish_seconds: float
    legal: bool
    report: Optional[FlowReport] = None


def build_mixed_size_pipeline(dp_passes: int = 1) -> Pipeline:
    """The mGP → mLG → freeze → cGP → LG → DP pipeline."""
    return Pipeline(
        [
            GlobalPlaceStage(name="mgp"),
            MacroLegalizeStage(),
            FreezeStage(),
            GlobalPlaceStage(name="cgp"),
            LegalizeStage(),
            DetailStage(passes=dp_passes),
        ],
        name="mixed-size-flow",
    )


def run_mixed_size_flow(
    netlist: Netlist,
    params: Optional[PlacementParams] = None,
    dp_passes: int = 1,
) -> MixedSizeResult:
    """Full mGP → mLG → freeze → cGP/LG/DP mixed-size flow."""
    ctx = PlacementContext(netlist=netlist, params=params or PlacementParams())
    report = build_mixed_size_pipeline(dp_passes).run(ctx)

    metrics = ctx.metrics
    return MixedSizeResult(
        x=ctx.x,
        y=ctx.y,
        # True HPWL is evaluated against the *original* netlist, not the
        # frozen derivative the finish stages worked on.
        hpwl=hpwl_fn(ctx.original_netlist, ctx.x, ctx.y),
        num_macros=int(metrics["num_macros"]),
        macro_displacement=metrics["macro_displacement"],
        mgp_seconds=report.stage("mgp").seconds,
        finish_seconds=report.seconds("mlg", "freeze", "cgp", "lg", "dp"),
        legal=metrics["legal"],
        report=report,
    )
