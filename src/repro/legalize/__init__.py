"""Legalization: snap a global placement onto rows and sites.

Two legalizers with a common interface (the paper's flows use NTUPlace3
for ISPD 2005 and DREAMPlace's legalizer for ISPD 2015; both are
row-based displacement-minimising algorithms of this family):

* :class:`TetrisLegalizer` — greedy nearest-gap assignment, fast and
  robust, quality baseline;
* :class:`AbacusLegalizer` — row-cluster dynamic programming (Spindler et
  al.), minimises weighted quadratic displacement per row.

``check_legal`` verifies the invariants every legalizer must establish:
cells on rows/sites, inside the die, no overlap among cells or with
fixed macros.
"""

from repro.legalize.rows import RowSpace, build_row_space
from repro.legalize.tetris import TetrisLegalizer
from repro.legalize.abacus import AbacusLegalizer
from repro.legalize.fence_aware import FenceAwareLegalizer
from repro.legalize.check import LegalityReport, check_legal

__all__ = [
    "RowSpace",
    "build_row_space",
    "TetrisLegalizer",
    "AbacusLegalizer",
    "FenceAwareLegalizer",
    "LegalityReport",
    "check_legal",
]
