"""Abacus legalization (Spindler, Schlichtmann, Johannes — DATE 2008).

Cells are inserted in x order.  Within a row segment, placed cells form
*clusters*; adding a cell may push a cluster left, and overlapping
clusters merge.  Each cluster sits at the weighted mean of its members'
desired positions (clamped to the segment), which minimises the total
weighted quadratic displacement for that row — the dynamic-programming
heart of Abacus.

For each cell we trial-insert into a few candidate rows (nearest first)
and commit to the row with the lowest resulting cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.legalize.rows import RowSpace, Segment, build_row_space
from repro.netlist import Netlist


@dataclass
class _Cluster:
    """A maximal run of abutting cells inside a segment."""

    x: float = 0.0          # left edge of the cluster
    e: float = 0.0          # total weight
    q: float = 0.0          # Σ e_i·(desired_i − offset_i)
    w: float = 0.0          # total width
    cells: List[Tuple[int, float, float]] = field(default_factory=list)
    # cells: (cell index, width, desired left edge)

    def add_cell(self, cell: int, width: float, desired: float, weight: float):
        self.cells.append((cell, width, desired))
        self.e += weight
        self.q += weight * (desired - self.w)
        self.w += width

    def merge(self, other: "_Cluster") -> None:
        for (cell, width, desired) in other.cells:
            self.cells.append((cell, width, desired))
        self.q += other.q - other.e * self.w
        self.e += other.e
        self.w += other.w

    def optimal_x(self, segment: Segment) -> float:
        x = self.q / self.e if self.e > 0 else segment.xl
        return min(max(x, segment.xl), segment.xh - self.w)


class _SegmentState:
    """Cluster list of one segment with trial/commit semantics."""

    def __init__(self, segment: Segment) -> None:
        self.segment = segment
        self.clusters: List[_Cluster] = []
        self.used = 0.0

    def fits(self, width: float) -> bool:
        return self.segment.width - self.used >= width - 1e-9

    def place(self, cell: int, width: float, desired: float, weight: float,
              commit: bool) -> Optional[Tuple[float, List[_Cluster]]]:
        """Insert the cell; return (its left edge, new cluster list).

        Abacus collapse: append as a fresh cluster, then merge backward
        while clusters overlap, re-optimising positions.
        """
        if not self.fits(width):
            return None
        clusters = self.clusters if commit else [self._copy(c) for c in self.clusters]
        cluster = _Cluster()
        cluster.add_cell(cell, width, desired, weight)
        cluster.x = cluster.optimal_x(self.segment)
        clusters.append(cluster)
        # Collapse: merge with predecessor while they overlap.
        while len(clusters) >= 2:
            prev, last = clusters[-2], clusters[-1]
            if prev.x + prev.w <= last.x + 1e-12:
                break
            prev.merge(last)
            clusters.pop()
            prev.x = prev.optimal_x(self.segment)
        # Locate the inserted cell's final edge.
        tail = clusters[-1]
        offset = tail.x
        position = None
        for (c, cw, __) in tail.cells:
            if c == cell:
                position = offset
            offset += cw
        if commit:
            self.clusters = clusters
            self.used += width
        return position, clusters

    @staticmethod
    def _copy(cluster: _Cluster) -> _Cluster:
        clone = _Cluster(cluster.x, cluster.e, cluster.q, cluster.w,
                         list(cluster.cells))
        return clone


class AbacusLegalizer:
    """Displacement-optimal row-cluster legalizer."""

    def __init__(self, netlist: Netlist, candidate_rows: int = 8,
                 weight_by_area: bool = True) -> None:
        self.netlist = netlist
        self.candidate_rows = candidate_rows
        self.weight_by_area = weight_by_area

    # ------------------------------------------------------------------
    def legalize(
        self,
        x: np.ndarray,
        y: np.ndarray,
        cells: np.ndarray = None,
        space=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Legalize ``cells`` (default: all movables) within ``space``
        (default: die rows minus macro blockages)."""
        netlist = self.netlist
        space = space or build_row_space(netlist)
        states = [
            [_SegmentState(seg) for seg in row_segs] for row_segs in space.segments
        ]
        row_centers = np.array(
            [space.row_center_y(r) for r in range(space.num_rows)]
        )

        movable = netlist.movable_index if cells is None else np.asarray(cells)
        order = movable[np.argsort(x[movable] - netlist.cell_w[movable] / 2)]
        placement: dict = {}

        for cell in order:
            w = netlist.cell_w[cell]
            desired = x[cell] - w / 2
            weight = netlist.cell_area[cell] if self.weight_by_area else 1.0
            weight = max(weight, 1e-9)
            target_y = y[cell]
            rows_near = np.argsort(np.abs(row_centers - target_y))
            best_cost = np.inf
            best_choice = None
            tried = 0
            for row_i in rows_near:
                dy = abs(row_centers[row_i] - target_y)
                if best_choice is not None and dy >= best_cost:
                    break
                if tried >= self.candidate_rows and best_choice is not None:
                    break
                row_has_fit = False
                for seg_i, state in enumerate(states[row_i]):
                    trial = state.place(cell, w, desired, weight, commit=False)
                    if trial is None:
                        continue
                    row_has_fit = True
                    pos, __ = trial
                    cost = abs(pos - desired) + dy
                    if cost < best_cost:
                        best_cost = cost
                        best_choice = (int(row_i), seg_i)
                if row_has_fit:
                    tried += 1
            if best_choice is None:
                raise RuntimeError(
                    f"abacus legalization failed: no row fits cell "
                    f"{netlist.cell_name[cell]} (width {w})"
                )
            row_i, seg_i = best_choice
            pos, __ = states[row_i][seg_i].place(
                cell, w, desired, weight, commit=True
            )
            placement[cell] = row_i

        # Final cluster positions determine every cell's location.
        out_x = x.copy()
        out_y = y.copy()
        for row_i, row_states in enumerate(states):
            row = space.rows[row_i]
            for state in row_states:
                for cluster in state.clusters:
                    offset = cluster.x
                    for (cell, cw, __) in cluster.cells:
                        out_x[cell] = offset + cw / 2
                        out_y[cell] = row.y + self.netlist.cell_h[cell] / 2
                        offset += cw
        return out_x, out_y
