"""Legality verification: invariants every legalized placement satisfies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.netlist import Netlist


@dataclass
class LegalityReport:
    """Violation summary; empty lists ⇒ legal."""

    out_of_die: List[int] = field(default_factory=list)
    off_row: List[int] = field(default_factory=list)
    overlaps: List[tuple] = field(default_factory=list)
    macro_overlaps: List[int] = field(default_factory=list)
    fence_violations: List[int] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        return not (
            self.out_of_die
            or self.off_row
            or self.overlaps
            or self.macro_overlaps
            or self.fence_violations
        )

    def summary(self) -> str:
        return (
            f"legal={self.legal} out_of_die={len(self.out_of_die)} "
            f"off_row={len(self.off_row)} overlaps={len(self.overlaps)} "
            f"macro_overlaps={len(self.macro_overlaps)} "
            f"fence_violations={len(self.fence_violations)}"
        )


def check_legal(
    netlist: Netlist,
    x: np.ndarray,
    y: np.ndarray,
    tol: float = 1e-6,
    max_violations: int = 50,
) -> LegalityReport:
    """Verify die bounds, row alignment and overlap-freedom.

    Overlap checking is done per row (cells aligned to the same row are
    sorted by left edge), so it is O(n log n) overall.
    """
    report = LegalityReport()
    region = netlist.region
    rows = region.rows
    row_bottoms = np.array([r.y for r in rows])
    row_height = region.row_height if rows else 0.0

    movable = netlist.movable_index
    hw = netlist.cell_w[movable] / 2
    hh = netlist.cell_h[movable] / 2
    xl = x[movable] - hw
    xh = x[movable] + hw
    yl = y[movable] - hh
    yh = y[movable] + hh

    outside = (
        (xl < region.xl - tol)
        | (xh > region.xh + tol)
        | (yl < region.yl - tol)
        | (yh > region.yh + tol)
    )
    report.out_of_die = list(movable[outside][:max_violations])

    # Row alignment: bottom edge sits on a row boundary.
    if rows:
        row_index = np.round((yl - region.yl) / row_height).astype(np.int64)
        aligned_y = region.yl + row_index * row_height
        misaligned = (np.abs(yl - aligned_y) > tol) | (row_index < 0) | (
            row_index >= len(rows)
        )
        report.off_row = list(movable[misaligned][:max_violations])

        # Per-row overlap scan (movable-movable and movable-macro).
        fixed = np.flatnonzero(~netlist.movable)
        macro_boxes = []
        for i in fixed:
            w, h = netlist.cell_w[i], netlist.cell_h[i]
            if w > 0 and h > 0:
                macro_boxes.append(
                    (
                        netlist.fixed_x[i] - w / 2,
                        netlist.fixed_y[i] - h / 2,
                        netlist.fixed_x[i] + w / 2,
                        netlist.fixed_y[i] + h / 2,
                    )
                )
        for r in range(len(rows)):
            members = np.flatnonzero((row_index == r) & ~misaligned)
            if len(members) == 0:
                continue
            order = members[np.argsort(xl[members])]
            for a, b in zip(order[:-1], order[1:]):
                if xh[a] > xl[b] + tol:
                    report.overlaps.append(
                        (int(movable[a]), int(movable[b]))
                    )
                    if len(report.overlaps) >= max_violations:
                        break
            row_y0 = rows[r].y
            row_y1 = row_y0 + rows[r].height
            for (bxl, byl, bxh, byh) in macro_boxes:
                if byl >= row_y1 - tol or byh <= row_y0 + tol:
                    continue
                for m in order:
                    if xh[m] > bxl + tol and xl[m] < bxh - tol:
                        report.macro_overlaps.append(int(movable[m]))
                        if len(report.macro_overlaps) >= max_violations:
                            break

    # Fence constraints: members fully inside one of their boxes,
    # non-members fully outside every box.
    for g, fence in enumerate(netlist.fences):
        member_mask = netlist.cell_fence[movable] == g
        if member_mask.any():
            idx = np.flatnonzero(member_mask)
            ok = fence.contains_box(
                x[movable[idx]], y[movable[idx]], hw[idx], hh[idx], tol=tol
            )
            report.fence_violations.extend(
                int(c) for c in movable[idx[~ok]][:max_violations]
            )
        outside_mask = netlist.cell_fence[movable] < 0
        if outside_mask.any():
            idx = np.flatnonzero(outside_mask)
            for (bxl, byl, bxh, byh) in fence.boxes:
                bad = (
                    (xh[idx] > bxl + tol)
                    & (xl[idx] < bxh - tol)
                    & (yh[idx] > byl + tol)
                    & (yl[idx] < byh - tol)
                )
                report.fence_violations.extend(
                    int(c) for c in movable[idx[bad]][:max_violations]
                )
    return report
