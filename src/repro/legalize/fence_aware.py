"""Two-phase fence-aware legalization.

Phase 1 legalizes each fence's member cells inside a row space clipped
to the fence's boxes.  Phase 2 legalizes all unconstrained cells with
every fence box added as a blockage.  Members end inside their fence,
non-members outside every fence, and the two populations can never
overlap because their row spaces are disjoint.
"""

from __future__ import annotations

from typing import Tuple, Type

import numpy as np

from repro.legalize.abacus import AbacusLegalizer
from repro.legalize.rows import build_row_space
from repro.netlist import Netlist


class FenceAwareLegalizer:
    """Legalizer wrapper honouring fence-region constraints.

    ``base_cls`` selects the underlying row legalizer (Abacus by
    default; Tetris also works).  Falls back to plain legalization when
    the netlist carries no fences.
    """

    def __init__(self, netlist: Netlist, base_cls: Type = AbacusLegalizer) -> None:
        self.netlist = netlist
        self.base_cls = base_cls

    def legalize(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        netlist = self.netlist
        if not netlist.fences:
            return self.base_cls(netlist).legalize(x, y)

        out_x, out_y = x.copy(), y.copy()
        movable = netlist.movable_index
        fence_of = netlist.cell_fence[movable]

        # Phase 1: each fence's members inside their clipped row space.
        for g, fence in enumerate(netlist.fences):
            members = movable[fence_of == g]
            if len(members) == 0:
                continue
            space = build_row_space(netlist, clip_boxes=fence.boxes)
            if space.total_free_width() <= 0:
                raise RuntimeError(
                    f"fence {fence.name!r} contains no usable row space"
                )
            legalizer = self.base_cls(netlist)
            out_x, out_y = legalizer.legalize(
                out_x, out_y, cells=members, space=space
            )

        # Phase 2: unconstrained cells, with fences as hard blockages.
        free_cells = movable[fence_of < 0]
        if len(free_cells):
            blockages = tuple(
                box for fence in netlist.fences for box in fence.boxes
            )
            space = build_row_space(netlist, extra_blockages=blockages)
            legalizer = self.base_cls(netlist)
            out_x, out_y = legalizer.legalize(
                out_x, out_y, cells=free_cells, space=space
            )
        return out_x, out_y
