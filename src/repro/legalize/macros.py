"""Movable-macro legalization (the mLG step of ePlace-MS style flows).

Macros are snapped to row-aligned positions and de-overlapped greedily,
largest first: each macro takes the position nearest its GP location
(searched over a spiral of row/site-aligned offsets) that overlaps
neither the die boundary, a fixed macro, nor an already-legalized
macro.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.netlist import Netlist

Box = Tuple[float, float, float, float]


def _overlaps(a: Box, b: Box, tol: float = 1e-9) -> bool:
    return (
        min(a[2], b[2]) - max(a[0], b[0]) > tol
        and min(a[3], b[3]) - max(a[1], b[1]) > tol
    )


class MacroLegalizer:
    """Legalizes a set of movable macros (multi-row cells)."""

    def __init__(self, netlist: Netlist, search_radius: int = 64) -> None:
        self.netlist = netlist
        self.search_radius = search_radius

    def legalize(
        self,
        x: np.ndarray,
        y: np.ndarray,
        macros: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return positions with ``macros`` legalized (others untouched)."""
        netlist = self.netlist
        region = netlist.region
        row_height = region.row_height
        site = region.rows[0].site_width if region.rows else 1.0

        obstacles: List[Box] = []
        fixed = np.flatnonzero(~netlist.movable)
        for i in fixed:
            w, h = netlist.cell_w[i], netlist.cell_h[i]
            if w > 0 and h > 0:
                obstacles.append(
                    (
                        netlist.fixed_x[i] - w / 2,
                        netlist.fixed_y[i] - h / 2,
                        netlist.fixed_x[i] + w / 2,
                        netlist.fixed_y[i] + h / 2,
                    )
                )

        out_x, out_y = x.copy(), y.copy()
        order = macros[np.argsort(-netlist.cell_area[macros])]
        for cell in order:
            w, h = netlist.cell_w[cell], netlist.cell_h[cell]
            placed = self._place_one(
                x[cell], y[cell], w, h, obstacles, region, row_height, site
            )
            if placed is None:
                raise RuntimeError(
                    f"macro legalization failed for {netlist.cell_name[cell]}"
                )
            px, py = placed
            out_x[cell], out_y[cell] = px, py
            obstacles.append((px - w / 2, py - h / 2, px + w / 2, py + h / 2))
        return out_x, out_y

    # ------------------------------------------------------------------
    def _place_one(
        self,
        cx: float,
        cy: float,
        w: float,
        h: float,
        obstacles: List[Box],
        region,
        row_height: float,
        site: float,
    ) -> Optional[Tuple[float, float]]:
        """Nearest legal (site, row)-aligned center via rings of offsets."""

        def snap(px: float, py: float) -> Tuple[float, float]:
            # Clamp inside die, then snap lower-left to site/row grid.
            px = min(max(px, region.xl + w / 2), region.xh - w / 2)
            py = min(max(py, region.yl + h / 2), region.yh - h / 2)
            llx = region.xl + round((px - w / 2 - region.xl) / site) * site
            lly = region.yl + round((py - h / 2 - region.yl) / row_height) * row_height
            llx = min(max(llx, region.xl), region.xh - w)
            lly = min(max(lly, region.yl), region.yh - h)
            return llx + w / 2, lly + h / 2

        def legal(px: float, py: float) -> bool:
            box = (px - w / 2, py - h / 2, px + w / 2, py + h / 2)
            if box[0] < region.xl - 1e-9 or box[2] > region.xh + 1e-9:
                return False
            if box[1] < region.yl - 1e-9 or box[3] > region.yh + 1e-9:
                return False
            return not any(_overlaps(box, o) for o in obstacles)

        base = snap(cx, cy)
        if legal(*base):
            return base
        # Expanding rings of (site-multiple, row-multiple) offsets.
        step_x = max(site * 4, w / 4)
        step_y = row_height
        for radius in range(1, self.search_radius + 1):
            candidates = []
            for k in range(-radius, radius + 1):
                candidates.append((base[0] + k * step_x, base[1] + radius * step_y))
                candidates.append((base[0] + k * step_x, base[1] - radius * step_y))
                candidates.append((base[0] + radius * step_x, base[1] + k * step_y))
                candidates.append((base[0] - radius * step_x, base[1] + k * step_y))
            candidates.sort(
                key=lambda p: abs(p[0] - cx) + abs(p[1] - cy)
            )
            for px, py in candidates:
                spx, spy = snap(px, py)
                if legal(spx, spy):
                    return spx, spy
        return None
