"""Row free-space model shared by the legalizers.

Fixed macros carve each row into free *segments*; legalizers place cells
only inside segments, which automatically keeps them off blockages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.netlist import Netlist, Row


@dataclass
class Segment:
    """One free interval of one row."""

    xl: float
    xh: float

    @property
    def width(self) -> float:
        return self.xh - self.xl


@dataclass
class RowSpace:
    """All rows with their free segments and site geometry."""

    rows: List[Row]
    segments: List[List[Segment]]  # per row
    site_width: float

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def row_center_y(self, row_index: int) -> float:
        row = self.rows[row_index]
        return row.y + row.height / 2

    def nearest_row(self, y_center: float) -> int:
        """Row whose center is closest to ``y_center``."""
        centers = np.array([r.y + r.height / 2 for r in self.rows])
        return int(np.argmin(np.abs(centers - y_center)))

    def snap_x(self, x_left: float) -> float:
        """Snap a left edge onto the site grid (floor)."""
        origin = self.rows[0].xl if self.rows else 0.0
        return origin + np.floor((x_left - origin) / self.site_width) * self.site_width

    def total_free_width(self) -> float:
        return sum(seg.width for row in self.segments for seg in row)


def build_row_space(
    netlist: Netlist,
    margin: float = 0.0,
    extra_blockages: Tuple[Tuple[float, float, float, float], ...] = (),
    clip_boxes: Tuple[Tuple[float, float, float, float], ...] = None,
) -> RowSpace:
    """Compute the free segments of every row after macro blockage.

    ``margin`` optionally inflates blockages (site-width guard bands).
    ``extra_blockages`` adds boxes that behave like macros (used to keep
    unconstrained cells out of fence regions).  ``clip_boxes`` restricts
    the usable space to the union of the given boxes (used to legalize a
    fence's members inside it); a row is usable only where it lies fully
    inside a clip box vertically.
    """
    rows = netlist.region.rows
    if not rows:
        raise ValueError("netlist region has no rows; cannot legalize")
    fixed = np.flatnonzero(~netlist.movable)
    blockages: List[Tuple[float, float, float, float]] = list(extra_blockages)
    for i in fixed:
        w, h = netlist.cell_w[i], netlist.cell_h[i]
        if w <= 0 or h <= 0:
            continue  # zero-area pads don't block rows
        blockages.append(
            (
                netlist.fixed_x[i] - w / 2 - margin,
                netlist.fixed_y[i] - h / 2 - margin,
                netlist.fixed_x[i] + w / 2 + margin,
                netlist.fixed_y[i] + h / 2 + margin,
            )
        )

    segments: List[List[Segment]] = []
    for row in rows:
        row_top = row.y + row.height
        # Base intervals: the whole row, or its intersection with clips.
        if clip_boxes is None:
            base = [(row.xl, row.xh)]
        else:
            base = []
            for (bxl, byl, bxh, byh) in clip_boxes:
                if byl <= row.y + 1e-9 and byh >= row_top - 1e-9:
                    lo, hi = max(bxl, row.xl), min(bxh, row.xh)
                    if hi > lo:
                        base.append((lo, hi))
            base.sort()
        cuts = []
        for bxl, byl, bxh, byh in blockages:
            if byl < row_top - 1e-9 and byh > row.y + 1e-9:
                cuts.append((max(bxl, row.xl), min(bxh, row.xh)))
        cuts.sort()
        free: List[Segment] = []
        for (lo, hi) in base:
            cursor = lo
            for cxl, cxh in cuts:
                if cxh <= cursor or cxl >= hi:
                    continue
                if cxl > cursor:
                    free.append(Segment(cursor, min(cxl, hi)))
                cursor = max(cursor, cxh)
            if cursor < hi:
                free.append(Segment(cursor, hi))
        # Drop slivers narrower than one site.
        segments.append([s for s in free if s.width >= row.site_width - 1e-9])
    return RowSpace(rows=list(rows), segments=segments, site_width=rows[0].site_width)
