"""Tetris-style greedy legalization.

Cells are processed left-to-right (by global-placement x).  Each cell
takes the free gap minimising its displacement, searching rows outward
from its target row.  Per segment only the left frontier moves, so the
free space stays a simple per-segment cursor — the classic "Tetris"
structure (Hill, 2002), also the rough-legalization core of POLAR/NTU
flows.

Greedy gap choice can strand the space between a segment's frontier and
a far-right target (pathological when many cells were clamped to a
narrow region's edge, e.g. inside fence boxes).  When that makes a cell
unplaceable, the whole pass restarts in *packing mode* — every cell goes
to its nearest frontier, which is capacity-optimal (zero stranded space)
at some displacement cost.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.legalize.rows import RowSpace, build_row_space
from repro.netlist import Netlist


class _Stranded(RuntimeError):
    """Internal: greedy mode ran out of space."""


class TetrisLegalizer:
    """Greedy displacement-minimising legalizer."""

    def __init__(
        self,
        netlist: Netlist,
        row_search_limit: int = 0,
        waste_weight: float = 0.0,
    ) -> None:
        self.netlist = netlist
        # 0 → search all rows (small benchmarks); >0 caps the row window.
        self.row_search_limit = row_search_limit
        # Optional soft penalty on the gap stranded between a segment's
        # frontier and the chosen position.  0 keeps the classic greedy
        # behaviour; stranding is instead rescued by the packing-mode
        # retry in legalize().
        self.waste_weight = waste_weight

    def legalize(
        self,
        x: np.ndarray,
        y: np.ndarray,
        cells: np.ndarray = None,
        space=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return legalized center positions (fixed cells untouched).

        ``cells`` restricts legalization to a subset (default: all
        movable cells); ``space`` supplies a custom :class:`RowSpace`
        (default: die rows minus macro blockages).
        """
        space = space or build_row_space(self.netlist)
        try:
            return self._run(x, y, cells, space, packing=False)
        except _Stranded:
            # Greedy stranded free space; packing mode cannot (it never
            # leaves gaps), so it succeeds whenever capacity suffices.
            return self._run(x, y, cells, space, packing=True)

    # ------------------------------------------------------------------
    def _run(
        self,
        x: np.ndarray,
        y: np.ndarray,
        cells,
        space: RowSpace,
        packing: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        netlist = self.netlist
        # Frontier cursor per (row, segment): next free left edge.
        cursors = [[seg.xl for seg in row_segs] for row_segs in space.segments]

        out_x = x.copy()
        out_y = y.copy()
        movable = netlist.movable_index if cells is None else np.asarray(cells)
        order = movable[np.argsort(x[movable] - netlist.cell_w[movable] / 2)]

        row_centers = np.array(
            [space.row_center_y(r) for r in range(space.num_rows)]
        )
        for cell in order:
            w = netlist.cell_w[cell]
            h = netlist.cell_h[cell]
            target_x = x[cell] - w / 2
            target_y = y[cell]
            best = self._find_gap(
                space, cursors, row_centers, target_x, target_y, w,
                packing=packing,
            )
            if best is None:
                if packing:
                    raise RuntimeError(
                        f"tetris legalization failed: no space for cell "
                        f"{netlist.cell_name[cell]} (width {w})"
                    )
                raise _Stranded(netlist.cell_name[cell])
            row_i, seg_i, pos = best
            cursors[row_i][seg_i] = pos + w
            out_x[cell] = pos + w / 2
            out_y[cell] = space.rows[row_i].y + h / 2
        return out_x, out_y

    # ------------------------------------------------------------------
    def _find_gap(
        self,
        space: RowSpace,
        cursors,
        row_centers: np.ndarray,
        target_x: float,
        target_y: float,
        width: float,
        packing: bool = False,
    ) -> Optional[Tuple[int, int, float]]:
        order = np.argsort(np.abs(row_centers - target_y))
        if self.row_search_limit:
            order = order[: self.row_search_limit]
        best = None
        best_cost = np.inf
        for row_i in order:
            dy = abs(row_centers[row_i] - target_y)
            if dy >= best_cost:  # rows are visited nearest-first
                break
            for seg_i, seg in enumerate(space.segments[row_i]):
                cursor = cursors[row_i][seg_i]
                if seg.xh - cursor < width - 1e-9:
                    continue
                if packing:
                    pos = cursor
                else:
                    pos = min(max(target_x, cursor), seg.xh - width)
                    pos = max(space.snap_x(pos), cursor)
                    if pos + width > seg.xh + 1e-9:
                        continue
                cost = (
                    abs(pos - target_x)
                    + dy
                    + self.waste_weight * (pos - cursor)
                )
                if cost < best_cost:
                    best_cost = cost
                    best = (int(row_i), seg_i, pos)
        return best
