"""Circuit data model: cells, pins, nets, placement region.

The netlist is stored in a flat, array-of-structs layout (CSR adjacency)
so that every placement operator can be expressed as vectorised NumPy
kernels over pin/net/cell arrays — the same layout DREAMPlace and Xplace
use on the GPU.
"""

from repro.netlist.region import PlacementRegion, Row
from repro.netlist.fence import FenceRegion, validate_fences
from repro.netlist.netlist import Netlist
from repro.netlist.builder import NetlistBuilder
from repro.netlist.stats import NetlistStats, compute_stats

__all__ = [
    "PlacementRegion",
    "Row",
    "FenceRegion",
    "validate_fences",
    "Netlist",
    "NetlistBuilder",
    "NetlistStats",
    "compute_stats",
]
