"""Incremental netlist construction.

``NetlistBuilder`` accepts cells and nets in any order and produces the
flat CSR :class:`~repro.netlist.Netlist`.  Both the bookshelf parser and
the synthetic benchmark generator build circuits through it, so layout
invariants (pins grouped by net, name uniqueness, index validity) are
enforced in exactly one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.netlist.fence import FenceRegion
from repro.netlist.netlist import Netlist
from repro.netlist.region import PlacementRegion

CellRef = Union[int, str]


class NetlistBuilder:
    """Builds a :class:`Netlist` cell-by-cell and net-by-net."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._cell_name: List[str] = []
        self._cell_index: Dict[str, int] = {}
        self._cell_w: List[float] = []
        self._cell_h: List[float] = []
        self._movable: List[bool] = []
        self._pos_x: List[float] = []
        self._pos_y: List[float] = []
        self._net_name: List[str] = []
        self._net_names_seen: Dict[str, int] = {}
        self._net_weight: List[float] = []
        # Per net: list of (cell index, dx, dy).
        self._net_pins: List[List[Tuple[int, float, float]]] = []
        self._region: Optional[PlacementRegion] = None
        self._fences: List[FenceRegion] = []
        self._cell_fence: List[int] = []

    # ------------------------------------------------------------------
    def add_cell(
        self,
        name: str,
        width: float,
        height: float,
        movable: bool = True,
        x: float = np.nan,
        y: float = np.nan,
        fence: int = -1,
    ) -> int:
        """Register a cell; ``(x, y)`` is its center (required if fixed).

        ``fence`` is an id returned by :meth:`add_fence` (-1 = none).
        """
        if name in self._cell_index:
            raise ValueError(f"duplicate cell name {name!r}")
        if width < 0 or height < 0:
            raise ValueError(f"cell {name!r} has negative size")
        if not movable and (np.isnan(x) or np.isnan(y)):
            raise ValueError(f"fixed cell {name!r} needs a position")
        if fence >= len(self._fences):
            raise ValueError(f"cell {name!r} references unknown fence {fence}")
        index = len(self._cell_name)
        self._cell_index[name] = index
        self._cell_name.append(name)
        self._cell_w.append(float(width))
        self._cell_h.append(float(height))
        self._movable.append(bool(movable))
        self._pos_x.append(float(x))
        self._pos_y.append(float(y))
        self._cell_fence.append(int(fence))
        return index

    def add_fence(self, name: str, boxes) -> int:
        """Register a fence region; returns its id for :meth:`add_cell`."""
        fence = FenceRegion(name, tuple(tuple(b) for b in boxes))
        self._fences.append(fence)
        return len(self._fences) - 1

    def assign_fence(self, cell: CellRef, fence: int) -> None:
        """(Re)assign an existing cell to a fence region."""
        index = self._resolve(cell)
        if not -1 <= fence < len(self._fences):
            raise ValueError(f"unknown fence id {fence}")
        self._cell_fence[index] = int(fence)

    def add_net(
        self,
        name: str,
        pins: Sequence[Tuple[CellRef, float, float]],
        weight: float = 1.0,
    ) -> int:
        """Register a net as ``[(cell, dx, dy), ...]`` pin tuples.

        ``cell`` may be a name or an index; ``(dx, dy)`` is the pin offset
        from the cell center.  Single-pin and empty nets are accepted (the
        netlist masks them out of wirelength).
        """
        if name in self._net_names_seen:
            raise ValueError(f"duplicate net name {name!r}")
        if weight < 0:
            raise ValueError(f"net {name!r} has negative weight")
        resolved: List[Tuple[int, float, float]] = []
        for cell, dx, dy in pins:
            index = self._resolve(cell)
            resolved.append((index, float(dx), float(dy)))
        net_index = len(self._net_name)
        self._net_names_seen[name] = net_index
        self._net_name.append(name)
        self._net_weight.append(float(weight))
        self._net_pins.append(resolved)
        return net_index

    def set_region(self, region: PlacementRegion) -> None:
        self._region = region

    @property
    def num_cells(self) -> int:
        return len(self._cell_name)

    @property
    def num_nets(self) -> int:
        return len(self._net_name)

    def has_cell(self, name: str) -> bool:
        return name in self._cell_index

    # ------------------------------------------------------------------
    def build(self) -> Netlist:
        if self._region is None:
            raise ValueError("set_region() must be called before build()")
        degrees = [len(p) for p in self._net_pins]
        total_pins = int(sum(degrees))
        pin2cell = np.empty(total_pins, dtype=np.int64)
        pin_dx = np.empty(total_pins, dtype=np.float64)
        pin_dy = np.empty(total_pins, dtype=np.float64)
        pin2net = np.empty(total_pins, dtype=np.int64)
        net_start = np.zeros(len(self._net_pins) + 1, dtype=np.int64)
        cursor = 0
        for e, pins in enumerate(self._net_pins):
            net_start[e] = cursor
            for cell, dx, dy in pins:
                pin2cell[cursor] = cell
                pin_dx[cursor] = dx
                pin_dy[cursor] = dy
                pin2net[cursor] = e
                cursor += 1
        net_start[-1] = cursor
        return Netlist(
            cell_name=list(self._cell_name),
            cell_w=np.asarray(self._cell_w, dtype=np.float64),
            cell_h=np.asarray(self._cell_h, dtype=np.float64),
            movable=np.asarray(self._movable, dtype=bool),
            fixed_x=np.asarray(self._pos_x, dtype=np.float64),
            fixed_y=np.asarray(self._pos_y, dtype=np.float64),
            pin2cell=pin2cell,
            pin_dx=pin_dx,
            pin_dy=pin_dy,
            pin2net=pin2net,
            net_start=net_start,
            net_name=list(self._net_name),
            net_weight=np.asarray(self._net_weight, dtype=np.float64),
            region=self._region,
            name=self.name,
            fences=list(self._fences),
            cell_fence=np.asarray(self._cell_fence, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def _resolve(self, cell: CellRef) -> int:
        if isinstance(cell, str):
            try:
                return self._cell_index[cell]
            except KeyError:
                raise KeyError(f"unknown cell {cell!r}") from None
        index = int(cell)
        if not 0 <= index < len(self._cell_name):
            raise IndexError(f"cell index {index} out of range")
        return index
