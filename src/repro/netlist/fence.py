"""Fence region model (DEF ``FENCE``-style exclusive regions).

A fence region is a set of axis-aligned boxes; cells assigned to the
fence must be placed inside one of its boxes, and unassigned cells must
stay outside every fence box.  The ISPD 2015 benchmarks carry such
constraints; the paper removes them and lists their support as future
work — this module provides that support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

Box = Tuple[float, float, float, float]  # (xl, yl, xh, yh)


@dataclass(frozen=True)
class FenceRegion:
    """One named fence: a union of disjoint boxes."""

    name: str
    boxes: Tuple[Box, ...]

    def __post_init__(self) -> None:
        if not self.boxes:
            raise ValueError(f"fence {self.name!r} has no boxes")
        for (xl, yl, xh, yh) in self.boxes:
            if xh <= xl or yh <= yl:
                raise ValueError(f"fence {self.name!r} has a degenerate box")

    @property
    def area(self) -> float:
        return sum((xh - xl) * (yh - yl) for (xl, yl, xh, yh) in self.boxes)

    def contains(self, x: np.ndarray, y: np.ndarray, tol: float = 0.0) -> np.ndarray:
        """Vectorised membership test for points (cell centers)."""
        x = np.asarray(x)
        y = np.asarray(y)
        inside = np.zeros(x.shape, dtype=bool)
        for (xl, yl, xh, yh) in self.boxes:
            inside |= (
                (x >= xl - tol) & (x <= xh + tol) & (y >= yl - tol) & (y <= yh + tol)
            )
        return inside

    def contains_box(
        self,
        x: np.ndarray,
        y: np.ndarray,
        hw: np.ndarray,
        hh: np.ndarray,
        tol: float = 1e-6,
    ) -> np.ndarray:
        """True where the whole cell box fits inside one fence box."""
        x = np.asarray(x)
        y = np.asarray(y)
        inside = np.zeros(x.shape, dtype=bool)
        for (xl, yl, xh, yh) in self.boxes:
            inside |= (
                (x - hw >= xl - tol)
                & (x + hw <= xh + tol)
                & (y - hh >= yl - tol)
                & (y + hh <= yh + tol)
            )
        return inside

    def clamp_into(
        self, x: np.ndarray, y: np.ndarray, hw: np.ndarray, hh: np.ndarray
    ):
        """Project cell centers into the nearest fence box (per cell)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        best_x = np.empty_like(x)
        best_y = np.empty_like(y)
        best_cost = np.full(x.shape, np.inf)
        for (xl, yl, xh, yh) in self.boxes:
            cx = np.clip(x, np.minimum(xl + hw, xh - hw), np.maximum(xh - hw, xl + hw))
            cy = np.clip(y, np.minimum(yl + hh, yh - hh), np.maximum(yh - hh, yl + hh))
            cost = np.abs(cx - x) + np.abs(cy - y)
            better = cost < best_cost
            best_x = np.where(better, cx, best_x)
            best_y = np.where(better, cy, best_y)
            best_cost = np.where(better, cost, best_cost)
        return best_x, best_y


def validate_fences(fences: Sequence[FenceRegion]) -> None:
    """Reject overlapping fence boxes across regions (exclusivity would
    be ill-defined otherwise)."""
    boxes = [
        (f.name, box) for f in fences for box in f.boxes
    ]
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            (na, a), (nb, b) = boxes[i], boxes[j]
            if na == nb:
                continue
            overlap_x = min(a[2], b[2]) - max(a[0], b[0])
            overlap_y = min(a[3], b[3]) - max(a[1], b[1])
            if overlap_x > 1e-9 and overlap_y > 1e-9:
                raise ValueError(
                    f"fence boxes of {na!r} and {nb!r} overlap"
                )
