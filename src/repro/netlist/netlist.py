"""Flat CSR netlist container used by all placement operators.

Layout
------
Pins are stored **grouped by net**: net ``e`` owns the contiguous pin slice
``net_start[e]:net_start[e+1]``.  Each pin records its owner cell and its
offset from the owner's *center*.  A second CSR (``cell_start`` /
``cell_pin``) indexes the same pins grouped by cell, which gradient
scatter/gather kernels need.

Positions handed to operators are always cell **centers**; the bookshelf
reader/writer converts from/to lower-left corners at the IO boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netlist.fence import FenceRegion, validate_fences
from repro.netlist.region import PlacementRegion


@dataclass
class Netlist:
    """Immutable circuit description (positions live outside, in the placer).

    Attributes
    ----------
    cell_name : list of str, length N
    cell_w, cell_h : (N,) float64 — cell extents
    movable : (N,) bool — False for terminals / fixed macros
    fixed_x, fixed_y : (N,) float64 — center positions of fixed cells
        (entries for movable cells hold their initial/suggested position
        and may be NaN if unplaced)
    pin2cell : (P,) int64 — owner cell per pin, grouped by net
    pin_dx, pin_dy : (P,) float64 — pin offset from owner cell center
    pin2net : (P,) int64
    net_start : (E+1,) int64 — CSR offsets of each net's pin slice
    net_name : list of str, length E
    net_weight : (E,) float64
    region : PlacementRegion
    """

    cell_name: List[str]
    cell_w: np.ndarray
    cell_h: np.ndarray
    movable: np.ndarray
    fixed_x: np.ndarray
    fixed_y: np.ndarray
    pin2cell: np.ndarray
    pin_dx: np.ndarray
    pin_dy: np.ndarray
    pin2net: np.ndarray
    net_start: np.ndarray
    net_name: List[str]
    net_weight: np.ndarray
    region: PlacementRegion
    name: str = "design"
    # Optional fence regions (DEF FENCE semantics; see netlist/fence.py).
    fences: List["FenceRegion"] = field(default_factory=list)
    cell_fence: Optional[np.ndarray] = None  # (N,) int64, -1 = unconstrained

    # Derived indices, filled by __post_init__.
    cell_start: np.ndarray = field(init=False, repr=False)
    cell_pin: np.ndarray = field(init=False, repr=False)
    net_degree: np.ndarray = field(init=False, repr=False)
    net_mask: np.ndarray = field(init=False, repr=False)
    cell_num_nets: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.cell_fence is None:
            self.cell_fence = np.full(len(self.cell_name), -1, dtype=np.int64)
        self._validate()
        self.net_degree = np.diff(self.net_start).astype(np.int64)
        # Nets with fewer than 2 pins contribute nothing to wirelength.
        self.net_mask = self.net_degree >= 2
        order = np.argsort(self.pin2cell, kind="stable")
        self.cell_pin = order.astype(np.int64)
        counts = np.bincount(self.pin2cell, minlength=self.num_cells)
        self.cell_start = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        self.cell_num_nets = self._count_nets_per_cell()

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cell_name)

    @property
    def num_nets(self) -> int:
        return len(self.net_name)

    @property
    def num_pins(self) -> int:
        return int(self.pin2cell.shape[0])

    @property
    def num_movable(self) -> int:
        return int(np.count_nonzero(self.movable))

    @property
    def movable_index(self) -> np.ndarray:
        return np.flatnonzero(self.movable)

    @property
    def fixed_index(self) -> np.ndarray:
        return np.flatnonzero(~self.movable)

    @property
    def cell_area(self) -> np.ndarray:
        return self.cell_w * self.cell_h

    @property
    def movable_area(self) -> float:
        return float(np.sum(self.cell_area[self.movable]))

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def pin_positions(self, x: np.ndarray, y: np.ndarray):
        """Pin coordinates given cell-center positions ``x, y`` of all cells."""
        px = x[self.pin2cell] + self.pin_dx
        py = y[self.pin2cell] + self.pin_dy
        return px, py

    def initial_positions(self):
        """Copy of the stored positions (fixed cells + any placed movables)."""
        return self.fixed_x.copy(), self.fixed_y.copy()

    def cell_index(self, name: str) -> int:
        """Linear lookup by name (builds a cache on first use)."""
        cache = getattr(self, "_name_cache", None)
        if cache is None:
            cache = {n: i for i, n in enumerate(self.cell_name)}
            object.__setattr__(self, "_name_cache", cache)
        return cache[name]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _count_nets_per_cell(self) -> np.ndarray:
        """|S_i| — the number of distinct nets touching each cell.

        Used by the wirelength preconditioner H_W (Section 3.2).
        """
        if self.num_pins == 0:
            return np.zeros(self.num_cells, dtype=np.int64)
        pairs = self.pin2cell.astype(np.int64) * np.int64(self.num_nets) + self.pin2net
        unique_pairs = np.unique(pairs)
        cells = unique_pairs // np.int64(self.num_nets)
        return np.bincount(cells, minlength=self.num_cells).astype(np.int64)

    def _validate(self) -> None:
        n, e, p = len(self.cell_name), len(self.net_name), self.pin2cell.shape[0]
        for arr, size, label in (
            (self.cell_w, n, "cell_w"),
            (self.cell_h, n, "cell_h"),
            (self.movable, n, "movable"),
            (self.fixed_x, n, "fixed_x"),
            (self.fixed_y, n, "fixed_y"),
            (self.pin_dx, p, "pin_dx"),
            (self.pin_dy, p, "pin_dy"),
            (self.pin2net, p, "pin2net"),
            (self.net_weight, e, "net_weight"),
        ):
            if arr.shape != (size,):
                raise ValueError(f"{label} has shape {arr.shape}, expected ({size},)")
        if self.net_start.shape != (e + 1,):
            raise ValueError("net_start must have length num_nets + 1")
        if e and (self.net_start[0] != 0 or self.net_start[-1] != p):
            raise ValueError("net_start must span all pins")
        if np.any(np.diff(self.net_start) < 0):
            raise ValueError("net_start must be non-decreasing")
        if p and (self.pin2cell.min() < 0 or self.pin2cell.max() >= n):
            raise ValueError("pin2cell out of range")
        # Pins must be grouped by net: pin2net must match CSR expansion.
        if e:
            expected = np.repeat(np.arange(e), np.diff(self.net_start))
            if not np.array_equal(expected, self.pin2net):
                raise ValueError("pins are not grouped by net / pin2net mismatch")
        if np.any(self.cell_w < 0) or np.any(self.cell_h < 0):
            raise ValueError("negative cell dimensions")
        if self.cell_fence.shape != (n,):
            raise ValueError("cell_fence must have one entry per cell")
        if n and self.cell_fence.max(initial=-1) >= len(self.fences):
            raise ValueError("cell_fence references an unknown fence region")
        if np.any(self.cell_fence[~np.asarray(self.movable)] >= 0):
            raise ValueError("fixed cells cannot carry fence constraints")
        validate_fences(self.fences)


def concatenate_names(prefix: str, count: int) -> List[str]:
    """Generate ``count`` names ``prefix0..prefix{count-1}`` (test helper)."""
    return [f"{prefix}{i}" for i in range(count)]


def subnetlist_positions(
    netlist: Netlist, x: np.ndarray, y: np.ndarray, cells: Sequence[int]
):
    """Positions of a subset of cells (debug/visualisation helper)."""
    idx = np.asarray(cells, dtype=np.int64)
    return x[idx], y[idx]
