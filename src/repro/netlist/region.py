"""Placement region and standard-cell row geometry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass(frozen=True)
class Row:
    """One standard-cell row (bookshelf ``CoreRow``).

    Coordinates follow the bookshelf convention: ``y`` is the bottom edge
    of the row, sites run from ``xl`` to ``xh`` with pitch ``site_width``.
    """

    y: float
    height: float
    xl: float
    xh: float
    site_width: float = 1.0

    @property
    def num_sites(self) -> int:
        return int(np.floor((self.xh - self.xl) / self.site_width))

    def site_x(self, site_index: int) -> float:
        """x coordinate of the left edge of a site."""
        return self.xl + site_index * self.site_width


@dataclass
class PlacementRegion:
    """Axis-aligned die area plus its standard-cell rows.

    ``rows`` may be empty for abstract experiments (e.g. pure density
    benchmarks); legalization requires at least one row.
    """

    xl: float
    yl: float
    xh: float
    yh: float
    rows: List[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (self.xh > self.xl and self.yh > self.yl):
            raise ValueError(
                f"degenerate placement region ({self.xl},{self.yl})-({self.xh},{self.yh})"
            )

    @property
    def width(self) -> float:
        return self.xh - self.xl

    @property
    def height(self) -> float:
        return self.yh - self.yl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple:
        return (0.5 * (self.xl + self.xh), 0.5 * (self.yl + self.yh))

    @property
    def row_height(self) -> float:
        """Common row height. Raises if rows are missing or non-uniform."""
        if not self.rows:
            raise ValueError("region has no rows")
        heights = {r.height for r in self.rows}
        if len(heights) != 1:
            raise ValueError(f"non-uniform row heights: {sorted(heights)}")
        return self.rows[0].height

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised point-in-region test."""
        return (x >= self.xl) & (x <= self.xh) & (y >= self.yl) & (y <= self.yh)

    def clamp(self, x: np.ndarray, y: np.ndarray, hw: np.ndarray, hh: np.ndarray):
        """Clamp cell centers so cells of half-extents (hw, hh) stay inside."""
        cx = np.clip(x, self.xl + hw, self.xh - hw)
        cy = np.clip(y, self.yl + hh, self.yh - hh)
        return cx, cy

    @staticmethod
    def with_uniform_rows(
        xl: float,
        yl: float,
        xh: float,
        yh: float,
        row_height: float,
        site_width: float = 1.0,
    ) -> "PlacementRegion":
        """Build a region fully tiled with uniform rows (contest style)."""
        num_rows = int(np.floor((yh - yl) / row_height))
        if num_rows < 1:
            raise ValueError("region too short for one row")
        rows = [
            Row(y=yl + i * row_height, height=row_height, xl=xl, xh=xh,
                site_width=site_width)
            for i in range(num_rows)
        ]
        # Shrink the die to the rows it actually contains so density and
        # legalization agree about usable area.
        return PlacementRegion(xl, yl, xh, yl + num_rows * row_height, rows)
