"""Benchmark statistics (paper Table 1 columns and a few extras)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics for one design."""

    design: str
    num_cells: int
    num_movable: int
    num_fixed: int
    num_nets: int
    num_pins: int
    avg_net_degree: float
    max_net_degree: int
    utilization: float

    def table_row(self) -> str:
        """`design  #cells  #nets` row formatted like paper Table 1."""
        return (
            f"{self.design:<16s} {_kilo(self.num_cells):>8s} "
            f"{_kilo(self.num_nets):>8s}"
        )


def _kilo(n: int) -> str:
    """Format a count the way Table 1 does (e.g. ``211k``)."""
    if n >= 1000:
        return f"{round(n / 1000)}k"
    return str(n)


def compute_stats(netlist: Netlist) -> NetlistStats:
    """Compute Table-1-style statistics for ``netlist``."""
    degrees = netlist.net_degree
    movable_area = netlist.movable_area
    # Utilization is movable area over row area not blocked by fixed cells.
    fixed = ~netlist.movable
    fixed_area = float(np.sum(netlist.cell_area[fixed]))
    free_area = max(netlist.region.area - fixed_area, 1e-12)
    return NetlistStats(
        design=netlist.name,
        num_cells=netlist.num_cells,
        num_movable=netlist.num_movable,
        num_fixed=netlist.num_cells - netlist.num_movable,
        num_nets=netlist.num_nets,
        num_pins=netlist.num_pins,
        avg_net_degree=float(degrees.mean()) if len(degrees) else 0.0,
        max_net_degree=int(degrees.max()) if len(degrees) else 0,
        utilization=movable_area / free_area,
    )
