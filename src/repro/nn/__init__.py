"""Neural enhancement (Section 3.3): the two-path Fourier network.

A light-weight Fourier Neural Operator learns the mapping from electron
(cell) density maps to the electric field of Eq. 5.  It is trained purely
on synthetic density maps labelled by the numerical solver — no real
benchmark data — and is resolution-independent because only low-frequency
modes carry weights.  Plugged into the gradient engine through
:func:`make_field_predictor`, its prediction is blended with the
numerical field by σ(ω) (Eq. 14), yielding the Xplace-NN configuration.
"""

from repro.nn.model import TwoPathFNO, FNOConfig
from repro.nn.data import FieldSample, random_density_dataset, placement_push_dataset
from repro.nn.train import FNOTrainer, relative_l2_loss
from repro.nn.guidance import make_field_predictor, predict_fields
from repro.nn.pretrained import get_pretrained_model, train_guidance_model

__all__ = [
    "TwoPathFNO",
    "FNOConfig",
    "FieldSample",
    "random_density_dataset",
    "placement_push_dataset",
    "FNOTrainer",
    "relative_l2_loss",
    "make_field_predictor",
    "predict_fields",
    "get_pretrained_model",
    "train_guidance_model",
]
