"""Training data for the field-prediction network.

Per the paper, no real benchmark data is needed: density maps are
generated synthetically and labelled by the numerical solver.  Two
generators are provided:

* :func:`random_density_dataset` — random Gaussian-blob / uniform-noise
  charge distributions (fast, diverse);
* :func:`placement_push_dataset` — the paper's exact recipe: standard
  cells start at random positions and are pushed for ~100 iterations by
  the density objective alone; every iteration's density map and field
  become a sample.

All samples live on the unit square, so one trained model serves any
(square) die: physical fields are recovered by scaling with the die
extent (see :mod:`repro.nn.guidance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.density import BinGrid, ElectrostaticSolver
from repro.netlist import PlacementRegion


@dataclass(frozen=True)
class FieldSample:
    """One training sample: density map and its x/y field maps.

    Samples are stored *normalized*: the density map has zero mean and
    unit standard deviation, and the fields are divided by the same
    standard deviation.  Because the PDE (Eq. 5) is linear and the solver
    removes the mean anyway, this loses no information while making the
    model scale-equivariant — essential because early-GP density maps
    have peaks two orders of magnitude above spread-out ones.
    """

    density: np.ndarray
    field_x: np.ndarray
    field_y: np.ndarray


def normalize_sample(
    density: np.ndarray, field_x: np.ndarray, field_y: np.ndarray
) -> FieldSample:
    """Produce the normalized :class:`FieldSample` for raw solver data."""
    scale = max(float(density.std()), 1e-12)
    return FieldSample(
        (density - density.mean()) / scale, field_x / scale, field_y / scale
    )


def _unit_solver(m: int) -> ElectrostaticSolver:
    grid = BinGrid(PlacementRegion(0.0, 0.0, 1.0, 1.0), m)
    return ElectrostaticSolver(grid)


def random_density_dataset(
    count: int,
    m: int = 32,
    rng: np.random.Generator = None,
) -> List[FieldSample]:
    """Random multi-blob density maps with numerical field labels."""
    rng = rng or np.random.default_rng(0)
    solver = _unit_solver(m)
    xs, ys = np.meshgrid(np.arange(m) + 0.5, np.arange(m) + 0.5, indexing="ij")
    samples: List[FieldSample] = []
    for index in range(count):
        density = np.zeros((m, m))
        # Alternate diffuse multi-blob maps with sharply concentrated
        # single-peak maps (the early-GP regime: everything in one pile).
        concentrated = index % 3 == 2
        blobs = 1 if concentrated else int(rng.integers(2, 8))
        for __ in range(blobs):
            cx, cy = rng.uniform(0, m, 2)
            if concentrated:
                sx, sy = rng.uniform(m / 40, m / 12, 2)
                amp = rng.uniform(5.0, 50.0)
            else:
                sx, sy = rng.uniform(m / 16, m / 3, 2)
                amp = rng.uniform(0.3, 1.5)
            density += amp * np.exp(
                -((xs - cx) ** 2) / (2 * sx**2) - ((ys - cy) ** 2) / (2 * sy**2)
            )
        density += rng.uniform(0, 0.1, (m, m))
        sol = solver.solve(density)
        samples.append(normalize_sample(density, sol.field_x, sol.field_y))
    return samples


def placement_push_dataset(
    num_cells: int = 400,
    m: int = 32,
    iterations: int = 100,
    record_every: int = 5,
    rng: np.random.Generator = None,
) -> List[FieldSample]:
    """The paper's training recipe: density-only pushing of random cells.

    Random unit-square "cells" start clustered and are pushed along the
    field (pure density objective, no wirelength) for ``iterations``
    steps; sampled iterations yield (density, field) pairs spanning the
    whole clustered → spread trajectory the placer will encounter.
    """
    rng = rng or np.random.default_rng(1)
    solver = _unit_solver(m)
    grid = solver.grid
    from repro.density import DensityScatter

    scatter = DensityScatter(grid)
    n = num_cells
    # Start clustered in a random sub-window (like a GP start).
    center = rng.uniform(0.3, 0.7, 2)
    x = np.clip(rng.normal(center[0], 0.08, n), 0.02, 0.98)
    y = np.clip(rng.normal(center[1], 0.08, n), 0.02, 0.98)
    w = np.full(n, np.sqrt(0.5 / n))
    h = np.full(n, np.sqrt(0.5 / n))

    samples: List[FieldSample] = []
    step = 0.02
    for iteration in range(iterations):
        density = scatter.scatter(x, y, w, h) / grid.bin_area
        sol = solver.solve(density)
        if iteration % record_every == 0:
            samples.append(normalize_sample(density, sol.field_x, sol.field_y))
        fx = scatter.gather(sol.field_x, x, y, w, h)
        fy = scatter.gather(sol.field_y, x, y, w, h)
        norm = max(np.abs(fx).max(), np.abs(fy).max(), 1e-12)
        x = np.clip(x + step * fx / norm, 0.01, 0.99)
        y = np.clip(y + step * fy / norm, 0.01, 0.99)
    return samples
