"""Bridge from a trained FNO to the gradient engine's field predictor.

The model is trained on the unit square; for a physical die of extent
W×H the electrostatic field scales linearly with the extent (the density
map is dimensionless and w_u = πu/W), so predictions are multiplied by
the die width.  The y field is obtained from the same model via the
transposition symmetry of the PDE (Section 3.3.1): E_y(D) = E_x(Dᵀ)ᵀ.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.autograd import no_grad
from repro.netlist import PlacementRegion
from repro.nn.model import TwoPathFNO


def predict_fields(
    model: TwoPathFNO, density: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unit-square x/y field prediction for one density map.

    The map is normalized to zero mean / unit std before the forward
    pass (the training-time convention of :mod:`repro.nn.data`) and the
    prediction is rescaled — exact because the PDE is linear in ρ.
    """
    scale = max(float(density.std()), 1e-12)
    normalized = (density - density.mean()) / scale
    with no_grad():
        fx = model(normalized).data * scale
        fy = model(normalized.T).data.T * scale
    return fx, fy


def make_field_predictor(
    model: TwoPathFNO,
    region: PlacementRegion,
    max_resolution: int = 64,
) -> Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """A ``density_map -> (field_x, field_y)`` callable for XPlacer.

    The returned fields are in physical units for ``region`` (assumed
    square-ish; mild anisotropy is handled by scaling each axis with its
    own extent, exact for W = H).

    Maps larger than ``max_resolution`` are average-pooled before the
    forward pass and the predicted field is upsampled back.  The model
    is resolution-independent (Section 3.3.1), the field is a smooth
    low-frequency quantity, and the pooled resolution is closer to the
    training distribution — so this is both much faster on large grids
    and no less accurate.
    """

    def predictor(density_map: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        m = density_map.shape[0]
        factor = 1
        pooled = density_map
        if max_resolution and m > max_resolution and m % 2 == 0:
            factor = int(np.ceil(m / max_resolution))
            while m % factor != 0:
                factor += 1
            pooled = density_map.reshape(
                m // factor, factor, m // factor, factor
            ).mean(axis=(1, 3))
        fx, fy = predict_fields(model, pooled)
        if factor > 1:
            fx = np.repeat(np.repeat(fx, factor, axis=0), factor, axis=1)
            fy = np.repeat(np.repeat(fy, factor, axis=0), factor, axis=1)
        return fx * region.width, fy * region.height

    return predictor
