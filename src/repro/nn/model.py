"""The two-path convolution network of Figure 3.

Input I = {D; M_x; M_y} (density map + mesh-grid index channels) is
lifted per-pixel to ``channels`` features, passed through ``layers``
two-path blocks

    O(I_m) = GELU( Conv1x1(I_m) + IFFT( W · LPF( FFT(I_m) ) ) )     (Eq. 12)

and projected back to a single output channel (the field along one
axis).  The spectral weights exist only for the lowest ``modes``
frequencies (corner blocks of the one-sided spectrum), so the same
weights apply at any input resolution ≥ 2·modes — the resolution
independence the paper leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.autograd import Tensor, irfft2, rfft2
from repro.autograd.complexops import embed_block, mode_mix
from repro.autograd.ops import channel_linear


@dataclass(frozen=True)
class FNOConfig:
    """Architecture hyper-parameters.

    The defaults give a ~200k-parameter model, the same light-weight
    class as the paper's 471k-parameter network (60 % of a U-Net).
    """

    channels: int = 16
    modes: int = 8
    layers: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.channels < 1 or self.modes < 1 or self.layers < 1:
            raise ValueError("channels, modes and layers must be positive")


class TwoPathFNO:
    """Density map (H, W) → field map (H, W) along one axis."""

    def __init__(self, config: FNOConfig = FNOConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        c, m = config.channels, config.modes
        scale_lift = 1.0 / np.sqrt(3)
        scale_mix = 1.0 / c
        self.lift_w = Tensor(rng.normal(0, scale_lift, (c, 3)), requires_grad=True)
        self.lift_b = Tensor(np.zeros(c), requires_grad=True)
        self.spectral_weights: List[List[Tensor]] = []
        self.conv_w: List[Tensor] = []
        self.conv_b: List[Tensor] = []
        for __ in range(config.layers):
            top = rng.normal(0, scale_mix, (c, c, m, m)) + 1j * rng.normal(
                0, scale_mix, (c, c, m, m)
            )
            bottom = rng.normal(0, scale_mix, (c, c, m, m)) + 1j * rng.normal(
                0, scale_mix, (c, c, m, m)
            )
            self.spectral_weights.append(
                [Tensor(top, requires_grad=True), Tensor(bottom, requires_grad=True)]
            )
            self.conv_w.append(
                Tensor(rng.normal(0, scale_mix, (c, c)), requires_grad=True)
            )
            self.conv_b.append(Tensor(np.zeros(c), requires_grad=True))
        self.head_w = Tensor(rng.normal(0, scale_mix, (1, c)), requires_grad=True)
        self.head_b = Tensor(np.zeros(1), requires_grad=True)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        params = [self.lift_w, self.lift_b, self.head_w, self.head_b]
        for pair in self.spectral_weights:
            params.extend(pair)
        params.extend(self.conv_w)
        params.extend(self.conv_b)
        return params

    def num_parameters(self) -> int:
        """Real parameter count (complex entries count twice)."""
        total = 0
        for p in self.parameters():
            total += p.size * (2 if np.iscomplexobj(p.data) else 1)
        return total

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    @staticmethod
    def build_input(density: np.ndarray) -> np.ndarray:
        """Stack {D; M_x; M_y} (Fig. 3's multi-resolution mesh grid)."""
        h, w = density.shape
        mx = np.broadcast_to((np.arange(h) / h)[:, None], (h, w))
        my = np.broadcast_to((np.arange(w) / w)[None, :], (h, w))
        return np.stack([density, mx, my]).astype(np.float64)

    def forward(self, density: np.ndarray) -> Tensor:
        """Predict the x-axis field for a (H, W) density map."""
        h, w = density.shape
        m = self.config.modes
        if h < 2 * m or w < 2 * m:
            raise ValueError(
                f"map {density.shape} too small for {m} modes (needs ≥ {2*m})"
            )
        features = Tensor(self.build_input(density))
        hidden = channel_linear(features, self.lift_w, self.lift_b)
        for layer in range(self.config.layers):
            spatial = channel_linear(hidden, self.conv_w[layer], self.conv_b[layer])
            spectrum = rfft2(hidden)
            shape = spectrum.shape
            w_top, w_bottom = self.spectral_weights[layer]
            top = mode_mix(w_top, spectrum[:, :m, :m])
            bottom = mode_mix(w_bottom, spectrum[:, shape[1] - m :, :m])
            filtered = embed_block(
                top, shape, (slice(None), slice(0, m), slice(0, m))
            ) + embed_block(
                bottom, shape, (slice(None), slice(shape[1] - m, shape[1]), slice(0, m))
            )
            frequency = irfft2(filtered, h, w)
            hidden = (spatial + frequency).gelu()
        out = channel_linear(hidden, self.head_w, self.head_b)
        return out.reshape(h, w)

    __call__ = forward

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {f"p{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict) -> None:
        for i, p in enumerate(self.parameters()):
            incoming = state[f"p{i}"]
            if incoming.shape != p.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {incoming.shape} vs {p.data.shape}"
                )
            p.data = incoming.copy()
