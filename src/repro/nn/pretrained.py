"""Train-once caching of the guidance model.

The paper ships a trained 471k-parameter network; this module is the
equivalent artifact pipeline: a deterministic training recipe whose
weights are cached on disk, so benchmarks and examples pay the training
cost (≈1–2 minutes on CPU) once per machine.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.nn.data import placement_push_dataset, random_density_dataset
from repro.nn.model import FNOConfig, TwoPathFNO
from repro.nn.train import FNOTrainer

_DEFAULT_CACHE = os.path.join(
    os.path.expanduser("~"), ".cache", "repro_xplace", "fno_weights.npz"
)

# The deterministic training recipe behind the cached weights.  Bump the
# version when the recipe changes so stale caches are discarded.
RECIPE_VERSION = 2
PRETRAINED_CONFIG = FNOConfig(channels=16, modes=10, layers=3, seed=7)


def train_guidance_model(verbose: bool = False) -> TwoPathFNO:
    """Run the full training recipe from scratch (deterministic)."""
    model = TwoPathFNO(PRETRAINED_CONFIG)
    samples = (
        random_density_dataset(200, m=32, rng=np.random.default_rng(0))
        + placement_push_dataset(rng=np.random.default_rng(2))
        + placement_push_dataset(num_cells=1000, rng=np.random.default_rng(3))
    )
    trainer = FNOTrainer(model, lr=3e-3)
    stats = trainer.train(samples, epochs=8, rng=np.random.default_rng(10))
    trainer.lr = 8e-4
    stats2 = trainer.train(samples, epochs=4, rng=np.random.default_rng(11))
    if verbose:
        print(
            f"trained FNO ({model.num_parameters()} params): "
            f"loss {np.mean(stats.losses[:20]):.3f} -> "
            f"{np.mean(stats2.losses[-20:]):.3f}"
        )
    return model


def get_pretrained_model(
    cache_path: Optional[str] = None, verbose: bool = False
) -> TwoPathFNO:
    """Load the cached guidance model, training and caching it if absent."""
    cache_path = cache_path or _DEFAULT_CACHE
    if os.path.exists(cache_path):
        payload = dict(np.load(cache_path))
        if int(payload.pop("__version__", np.array(-1))) == RECIPE_VERSION:
            model = TwoPathFNO(PRETRAINED_CONFIG)
            try:
                model.load_state_dict(payload)
                return model
            except ValueError as exc:
                # Architecture drift: report why, then retrain below.
                if verbose:
                    print(f"cached guidance weights rejected ({exc}); retraining")
    model = train_guidance_model(verbose=verbose)
    os.makedirs(os.path.dirname(cache_path), exist_ok=True)
    state = model.state_dict()
    state["__version__"] = np.array(RECIPE_VERSION)
    np.savez(cache_path, **state)
    return model
