"""FNO training: relative-L2 loss (Eq. 13) and an Adam loop.

The x/y symmetry trick (Section 3.3.1): the model is trained on the
x-field only; every sample also contributes its transposed version
(D^T → E_y^T), which is exactly the x-field problem of the transposed
map, doubling data for free and enforcing the symmetry the guidance
adapter relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.autograd import Tensor
from repro.nn.data import FieldSample
from repro.nn.model import TwoPathFNO


def relative_l2_loss(prediction: Tensor, label: np.ndarray) -> Tensor:
    """L2(x, f(x;θ)) = ‖f(x;θ) − y‖₂ / ‖y‖₂ (Eq. 13)."""
    label_norm = float(np.linalg.norm(label))
    if label_norm <= 1e-30:
        label_norm = 1.0
    diff = prediction - Tensor(label)
    return ((diff * diff).sum()).sqrt() * (1.0 / label_norm)


class _AdamState:
    """Adam moments for one parameter tensor (complex-aware)."""

    def __init__(self, param: Tensor) -> None:
        self.m = np.zeros_like(param.data)
        self.v = np.zeros_like(np.abs(param.data), dtype=np.float64)


@dataclass
class TrainStats:
    """Loss trace of one training run."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def improved(self) -> bool:
        if len(self.losses) < 2:
            return False
        head = np.mean(self.losses[: max(1, len(self.losses) // 5)])
        tail = np.mean(self.losses[-max(1, len(self.losses) // 5) :])
        return tail < head


class FNOTrainer:
    """Adam trainer for :class:`TwoPathFNO` on field samples."""

    def __init__(
        self,
        model: TwoPathFNO,
        lr: float = 2e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        augment_transpose: bool = True,
    ) -> None:
        self.model = model
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.augment_transpose = augment_transpose
        self._states = [_AdamState(p) for p in model.parameters()]
        self._t = 0

    # ------------------------------------------------------------------
    def train(
        self,
        samples: Sequence[FieldSample],
        epochs: int = 5,
        rng: np.random.Generator = None,
    ) -> TrainStats:
        rng = rng or np.random.default_rng(0)
        stats = TrainStats()
        pairs = []
        for s in samples:
            pairs.append((s.density, s.field_x))
            if self.augment_transpose:
                # E_y(D) = E_x(D^T)^T: the transposed sample is another
                # x-field training point.
                pairs.append((s.density.T, s.field_y.T))
        for __ in range(epochs):
            order = rng.permutation(len(pairs))
            for index in order:
                density, label = pairs[index]
                stats.losses.append(self._step(density, label))
        return stats

    def _step(self, density: np.ndarray, label: np.ndarray) -> float:
        model = self.model
        model.zero_grad()
        prediction = model(density)
        loss = relative_l2_loss(prediction, label)
        loss.backward()
        self._apply_adam()
        return float(loss.data)

    def _apply_adam(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1 - b1**self._t
        correction2 = 1 - b2**self._t
        for param, state in zip(self.model.parameters(), self._states):
            if param.grad is None:
                continue
            grad = param.grad
            state.m = b1 * state.m + (1 - b1) * grad
            state.v = b2 * state.v + (1 - b2) * np.abs(grad) ** 2
            m_hat = state.m / correction1
            v_hat = state.v / correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    # ------------------------------------------------------------------
    def evaluate(self, samples: Sequence[FieldSample]) -> float:
        """Mean relative-L2 error over (x-field) samples, no grad."""
        from repro.autograd import no_grad

        errors = []
        with no_grad():
            for s in samples:
                pred = self.model(s.density)
                denom = max(float(np.linalg.norm(s.field_x)), 1e-30)
                errors.append(
                    float(np.linalg.norm(pred.data - s.field_x)) / denom
                )
        return float(np.mean(errors))
