"""Operator-level bookkeeping (Section 3.1 of the paper).

The paper's efficiency techniques are all about reducing the number of
dispatched GPU kernels.  In this CPU reproduction a "kernel launch" is a
dispatched vectorised NumPy kernel; :class:`KernelProfiler` counts them so
tests and the Table-3 ablation bench can verify that operator reduction /
combination / extraction / skipping really shrink the launch count, not
just wall-clock noise.
"""

from repro.ops.profiler import (
    KernelProfiler,
    get_profiler,
    profiled,
    timed,
    use_profiler,
)
from repro.ops.skip import DensitySkipController

__all__ = [
    "KernelProfiler",
    "get_profiler",
    "profiled",
    "timed",
    "use_profiler",
    "DensitySkipController",
]
