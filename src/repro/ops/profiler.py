"""Kernel-launch accounting.

Every placement operator reports its vectorised-kernel dispatches to the
active profiler.  The counts model the CPU-side launch overhead that
dominates small operators on GPU (Section 3.1.3): fewer launches ⇒ less
fixed overhead per GP iteration.

Scope caveat: the "active" profiler is **thread-local** state.  It is
not inherited by new threads, and it is silently absent in worker
*processes* (``multiprocessing`` children start with a fresh
``threading.local``, under fork and spawn alike), where every
``profiled(...)`` call lands on the no-op null profiler.  Code that
fans placements out across processes must install a profiler *inside*
each worker — :func:`repro.runtime.job.execute_job` does exactly that
(``with use_profiler() as prof``) and merges the totals into the job's
``FlowReport`` metrics under the synthetic ``runtime`` stage, so batch
runs keep per-job kernel accounting even though no profiler was active
in the parent.
"""

from __future__ import annotations

import contextlib
import threading
from collections import Counter
from typing import Dict, Iterator, Optional


class KernelProfiler:
    """Counts kernel launches by name, with iteration snapshots."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self._marks: Dict[str, int] = {}

    def launch(self, name: str, n: int = 1) -> None:
        """Record ``n`` kernel dispatches of operator ``name``."""
        self.counts[name] += n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def reset(self) -> None:
        self.counts.clear()
        self._marks.clear()

    def mark(self, label: str) -> None:
        """Remember the current total under ``label`` (e.g. iteration start)."""
        self._marks[label] = self.total

    def since(self, label: str) -> int:
        """Launches recorded since :meth:`mark`\\ (``label``)."""
        return self.total - self._marks.get(label, 0)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the per-operator counts (JSON-friendly)."""
        return {name: int(count) for name, count in self.counts.items()}

    def merge(self, counts: Dict[str, int]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        This is how per-process totals from runtime workers are folded
        back into a parent-side aggregate.
        """
        self.counts.update(Counter(counts))

    def summary(self, top: int = 10) -> str:
        lines = [f"total kernel launches: {self.total}"]
        for name, count in self.counts.most_common(top):
            lines.append(f"  {name:<32s} {count}")
        return "\n".join(lines)


class _NullProfiler(KernelProfiler):
    """Free no-op profiler used when nothing is being measured."""

    def launch(self, name: str, n: int = 1) -> None:  # noqa: D102
        pass


_NULL = _NullProfiler()
_state = threading.local()


def get_profiler() -> KernelProfiler:
    """The profiler active on this thread (a no-op one by default)."""
    return getattr(_state, "profiler", _NULL)


@contextlib.contextmanager
def use_profiler(profiler: Optional[KernelProfiler] = None) -> Iterator[KernelProfiler]:
    """Activate ``profiler`` (or a fresh one) for the enclosed block."""
    if profiler is None:
        profiler = KernelProfiler()
    previous = getattr(_state, "profiler", _NULL)
    _state.profiler = profiler
    try:
        yield profiler
    finally:
        _state.profiler = previous


def profiled(name: str, n: int = 1) -> None:
    """Module-level shorthand for ``get_profiler().launch(name, n)``."""
    get_profiler().launch(name, n)
