"""Kernel-launch accounting and (opt-in) per-operator wall time.

Every placement operator reports its vectorised-kernel dispatches to the
active profiler.  The counts model the CPU-side launch overhead that
dominates small operators on GPU (Section 3.1.3): fewer launches ⇒ less
fixed overhead per GP iteration.

Launch *counts* are always free to record.  Wall-clock *seconds* are
opt-in (``KernelProfiler(timed=True)``): operators wrap their bodies in
``with timed("name"):`` spans, which are a shared ``nullcontext`` —
no clock reads, no allocation — unless the active profiler asked for
timing.  ``repro bench`` and the runtime workers turn timing on; the
bare GP loop keeps the null path.

Scope caveat: the "active" profiler is **thread-local** state.  It is
not inherited by new threads, and it is silently absent in worker
*processes* (``multiprocessing`` children start with a fresh
``threading.local``, under fork and spawn alike), where every
``profiled(...)`` call lands on the no-op null profiler.  Code that
fans placements out across processes must install a profiler *inside*
each worker — :func:`repro.runtime.job.execute_job` does exactly that
(``with use_profiler() as prof``) and merges the totals into the job's
``FlowReport`` metrics under the synthetic ``runtime`` stage, so batch
runs keep per-job kernel accounting even though no profiler was active
in the parent.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import Counter
from typing import ContextManager, Dict, Iterator, Optional

_NULL_SPAN = contextlib.nullcontext()


class _Span:
    """Times one operator region into ``profiler.seconds[name]``."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "KernelProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.seconds[self._name] += time.perf_counter() - self._start


class KernelProfiler:
    """Counts kernel launches by name, with iteration snapshots.

    With ``timed=True`` the :func:`timed` spans placed in the operator
    bodies also accumulate per-operator wall-clock seconds.
    """

    def __init__(self, timed: bool = False) -> None:
        self.counts: Counter = Counter()
        self.seconds: Counter = Counter()
        self.timed = timed
        self._marks: Dict[str, int] = {}

    def launch(self, name: str, n: int = 1) -> None:
        """Record ``n`` kernel dispatches of operator ``name``."""
        self.counts[name] += n

    def span(self, name: str) -> ContextManager:
        """A timing context for ``name`` (free no-op unless ``timed``)."""
        if not self.timed:
            return _NULL_SPAN
        return _Span(self, name)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds.values()))

    def reset(self) -> None:
        self.counts.clear()
        self.seconds.clear()
        self._marks.clear()

    def mark(self, label: str) -> None:
        """Remember the current total under ``label`` (e.g. iteration start)."""
        self._marks[label] = self.total

    def since(self, label: str) -> int:
        """Launches recorded since :meth:`mark`\\ (``label``)."""
        return self.total - self._marks.get(label, 0)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the per-operator counts (JSON-friendly)."""
        return {name: int(count) for name, count in self.counts.items()}

    def snapshot_seconds(self) -> Dict[str, float]:
        """Plain-dict copy of the per-operator seconds (JSON-friendly)."""
        return {name: float(sec) for name, sec in self.seconds.items()}

    def merge(self, counts: Dict[str, int],
              seconds: Optional[Dict[str, float]] = None) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        This is how per-process totals from runtime workers are folded
        back into a parent-side aggregate.
        """
        self.counts.update(Counter(counts))
        if seconds:
            self.seconds.update(Counter(seconds))

    def summary(self, top: int = 10) -> str:
        lines = [f"total kernel launches: {self.total}"]
        for name, count in self.counts.most_common(top):
            sec = self.seconds.get(name)
            timing = f"  {sec:.4f}s" if sec is not None else ""
            lines.append(f"  {name:<32s} {count}{timing}")
        return "\n".join(lines)


class _NullProfiler(KernelProfiler):
    """Free no-op profiler used when nothing is being measured."""

    def launch(self, name: str, n: int = 1) -> None:  # noqa: D102
        pass

    def span(self, name: str) -> ContextManager:  # noqa: D102
        return _NULL_SPAN


_NULL = _NullProfiler()
_state = threading.local()


def get_profiler() -> KernelProfiler:
    """The profiler active on this thread (a no-op one by default)."""
    return getattr(_state, "profiler", _NULL)


@contextlib.contextmanager
def use_profiler(profiler: Optional[KernelProfiler] = None) -> Iterator[KernelProfiler]:
    """Activate ``profiler`` (or a fresh one) for the enclosed block."""
    if profiler is None:
        profiler = KernelProfiler()
    previous = getattr(_state, "profiler", _NULL)
    _state.profiler = profiler
    try:
        yield profiler
    finally:
        _state.profiler = previous


def profiled(name: str, n: int = 1) -> None:
    """Module-level shorthand for ``get_profiler().launch(name, n)``."""
    get_profiler().launch(name, n)


def timed(name: str) -> ContextManager:
    """Wall-time span for operator ``name`` on the active profiler.

    Returns a shared ``nullcontext`` unless the active profiler was
    built with ``timed=True``, so instrumented operators cost nothing
    in the default configuration.
    """
    return get_profiler().span(name)
