"""Early-stage density-operator skipping (Section 3.1.4).

In the early placement stage the density gradient is orders of magnitude
smaller than the wirelength gradient (r = λ‖∇D‖/‖∇WL‖ < 0.01), so
recomputing it every iteration is wasted work.  While that condition holds
(and only within the first ``max_iteration`` iterations) the controller
lets the engine reuse a cached density gradient, refreshing it once every
``period`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DensitySkipController:
    """Decides, per GP iteration, whether to recompute the density gradient."""

    ratio_threshold: float = 0.01
    max_iteration: int = 100
    period: int = 20
    enabled: bool = True

    def __post_init__(self) -> None:
        self._last_computed = -10**9
        self._last_ratio = float("inf")

    def observe_ratio(self, ratio: float) -> None:
        """Feed the most recent r = λ‖∇D‖ / ‖∇WL‖ measurement."""
        self._last_ratio = float(ratio)

    def should_compute(self, iteration: int) -> bool:
        """True if the density gradient must be recomputed this iteration."""
        if not self.enabled:
            return True
        if iteration >= self.max_iteration:
            return True
        if self._last_ratio >= self.ratio_threshold:
            return True
        if iteration - self._last_computed >= self.period:
            return True
        return False

    def notify_computed(self, iteration: int) -> None:
        self._last_computed = iteration

    @property
    def skipping(self) -> bool:
        """Whether the controller is currently in the skipping regime."""
        return self.enabled and self._last_ratio < self.ratio_threshold

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable snapshot of the skip decision state."""
        return {
            "last_computed": int(self._last_computed),
            "last_ratio": float(self._last_ratio),
        }

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict` (bit-exact restore)."""
        self._last_computed = int(state["last_computed"])
        self._last_ratio = float(state["last_ratio"])
