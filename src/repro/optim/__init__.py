"""Optimizers and preconditioning for analytical placement.

Contains ePlace's Nesterov scheme with inverse-Lipschitz step prediction,
a reference Adam implementation, and the Jacobi preconditioner
H̃ = H_W + λ·H_D together with the paper's stage indicator ω (§3.2).
"""

from repro.optim.precondition import Preconditioner
from repro.optim.nesterov import NesterovOptimizer
from repro.optim.adam import AdamOptimizer

__all__ = ["Preconditioner", "NesterovOptimizer", "AdamOptimizer"]
