"""Adam optimizer (reference alternative to Nesterov).

DREAMPlace exposes Adam as an option for global placement; keeping it
here lets the engine swap optimizers through one interface and gives
benchmarks an ablation axis.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np
from repro.dtypes import FLOAT

from repro.ops import profiled


class AdamOptimizer:
    """Adam over (x, y) position vectors with the NesterovOptimizer API."""

    def __init__(
        self,
        x0: np.ndarray,
        y0: np.ndarray,
        lr: float = 1.0,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.x = x0.astype(FLOAT).copy()
        self.y = y0.astype(FLOAT).copy()
        self.lr = float(lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._mx = np.zeros_like(self.x)
        self._my = np.zeros_like(self.y)
        self._vx = np.zeros_like(self.x)
        self._vy = np.zeros_like(self.y)
        self._t = 0

    @property
    def positions(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.x, self.y

    @property
    def solution(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.x, self.y

    @property
    def step_length(self) -> float:
        return self.lr

    def step(self, grad_x: np.ndarray, grad_y: np.ndarray) -> None:
        profiled("adam_step")
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        self._mx = b1 * self._mx + (1 - b1) * grad_x
        self._my = b1 * self._my + (1 - b1) * grad_y
        self._vx = b2 * self._vx + (1 - b2) * grad_x * grad_x
        self._vy = b2 * self._vy + (1 - b2) * grad_y * grad_y
        correction1 = 1 - b1**self._t
        correction2 = 1 - b2**self._t
        mx_hat = self._mx / correction1
        my_hat = self._my / correction1
        vx_hat = self._vx / correction2
        vy_hat = self._vy / correction2
        self.x -= self.lr * mx_hat / (np.sqrt(vx_hat) + self.eps)
        self.y -= self.lr * my_hat / (np.sqrt(vy_hat) + self.eps)

    def clamp(self, clamp_fn) -> None:
        self.x, self.y = clamp_fn(self.x, self.y)

    def reset_momentum(self) -> None:
        self._mx[:] = 0
        self._my[:] = 0
        self._vx[:] = 0
        self._vy[:] = 0
        self._t = 0

    def scale_step(self, factor: float) -> None:
        """Cut (or grow) the learning rate by ``factor`` (rollback use)."""
        if not np.isfinite(factor) or factor <= 0.0:
            raise ValueError(f"factor must be positive, got {factor!r}")
        self.lr *= float(factor)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Deep-copied, checkpointable snapshot of the optimizer state."""
        return {
            "kind": "adam",
            "x": self.x.copy(),
            "y": self.y.copy(),
            "mx": self._mx.copy(),
            "my": self._my.copy(),
            "vx": self._vx.copy(),
            "vy": self._vy.copy(),
            "t": int(self._t),
            "lr": float(self.lr),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (bit-exact restore)."""
        if state.get("kind") != "adam":
            raise ValueError(f"not an adam state dict: {state.get('kind')!r}")
        self.x = np.asarray(state["x"], dtype=FLOAT).copy()
        self.y = np.asarray(state["y"], dtype=FLOAT).copy()
        self._mx = np.asarray(state["mx"], dtype=FLOAT).copy()
        self._my = np.asarray(state["my"], dtype=FLOAT).copy()
        self._vx = np.asarray(state["vx"], dtype=FLOAT).copy()
        self._vy = np.asarray(state["vy"], dtype=FLOAT).copy()
        self._t = int(state["t"])
        self.lr = float(state["lr"])
