"""ePlace-style Nesterov accelerated gradient descent.

Follows Lu et al. (ePlace, TODAES 2015): major solutions u_k, reference
solutions v_k, momentum weights a_k with the standard recurrence, and a
step length predicted from the inverse of the local Lipschitz constant

    α_k = ‖v_k − v_{k−1}‖ / ‖g̃(v_k) − g̃(v_{k−1})‖

measured on *preconditioned* gradients g̃.  The placer calls
:meth:`step` once per GP iteration with the gradient evaluated at the
current reference solution.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np
from repro.dtypes import FLOAT

from repro.ops import profiled


class NesterovOptimizer:
    """Accelerated first-order optimizer over (x, y) position vectors."""

    def __init__(
        self,
        x0: np.ndarray,
        y0: np.ndarray,
        initial_step: float = 1.0,
        max_step: float = None,
    ) -> None:
        self.ux = x0.astype(FLOAT).copy()
        self.uy = y0.astype(FLOAT).copy()
        self.vx = self.ux.copy()
        self.vy = self.uy.copy()
        self._a = 1.0
        self._prev_vx = None
        self._prev_vy = None
        self._prev_gx = None
        self._prev_gy = None
        self._alpha = float(initial_step)
        self._max_step = max_step

    # ------------------------------------------------------------------
    @property
    def positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """The reference solution — where the next gradient is evaluated."""
        return self.vx, self.vy

    @property
    def solution(self) -> Tuple[np.ndarray, np.ndarray]:
        """The major (best-estimate) solution."""
        return self.ux, self.uy

    @property
    def step_length(self) -> float:
        return self._alpha

    # ------------------------------------------------------------------
    def bound_first_step(self, max_step: float) -> None:
        """Set the step length used by the very first :meth:`step` call.

        Before any step there is no gradient history, so the Lipschitz
        predictor cannot run and the initial ``α`` is a blind guess;
        callers bound it from problem scale (e.g. a fraction of a bin
        divided by the peak gradient).  Only valid before the first step.
        """
        if self._prev_gx is not None:
            raise RuntimeError(
                "bound_first_step() must be called before the first step()"
            )
        if not np.isfinite(max_step) or max_step <= 0.0:
            raise ValueError(f"max_step must be positive, got {max_step!r}")
        self._alpha = float(max_step)

    def step(self, grad_x: np.ndarray, grad_y: np.ndarray) -> None:
        """Advance one iteration using g̃(v_k) = (grad_x, grad_y)."""
        profiled("nesterov_step")
        alpha = self._predict_step(grad_x, grad_y)

        new_ux = self.vx - alpha * grad_x
        new_uy = self.vy - alpha * grad_y

        a_next = (1.0 + np.sqrt(4.0 * self._a * self._a + 1.0)) / 2.0
        coef = (self._a - 1.0) / a_next

        self._prev_vx, self._prev_vy = self.vx, self.vy
        self._prev_gx, self._prev_gy = grad_x, grad_y

        self.vx = new_ux + coef * (new_ux - self.ux)
        self.vy = new_uy + coef * (new_uy - self.uy)
        self.ux, self.uy = new_ux, new_uy
        self._a = a_next

    def _predict_step(self, grad_x: np.ndarray, grad_y: np.ndarray) -> float:
        if self._prev_gx is not None:
            dv = np.concatenate([self.vx - self._prev_vx, self.vy - self._prev_vy])
            dg = np.concatenate([grad_x - self._prev_gx, grad_y - self._prev_gy])
            denom = float(np.linalg.norm(dg))
            if denom > 1e-20:
                lipschitz_inverse = float(np.linalg.norm(dv)) / denom
                if np.isfinite(lipschitz_inverse) and lipschitz_inverse > 0:
                    self._alpha = lipschitz_inverse
        if self._max_step is not None:
            self._alpha = min(self._alpha, self._max_step)
        return self._alpha

    # ------------------------------------------------------------------
    def clamp(self, clamp_fn) -> None:
        """Apply a position clamp (e.g. keep cells on the die) to both the
        major and reference solutions."""
        self.ux, self.uy = clamp_fn(self.ux, self.uy)
        self.vx, self.vy = clamp_fn(self.vx, self.vy)

    def reset_momentum(self) -> None:
        """Restart acceleration (used after hard perturbations)."""
        self._a = 1.0
        self.vx = self.ux.copy()
        self.vy = self.uy.copy()
        self._prev_gx = self._prev_gy = None
        self._prev_vx = self._prev_vy = None

    def scale_step(self, factor: float) -> None:
        """Cut (or grow) the current step length by ``factor``.

        Used by rollback recovery to restart more cautiously; with the
        momentum history cleared the scaled α seeds the next step, after
        which the Lipschitz predictor takes over again.
        """
        if not np.isfinite(factor) or factor <= 0.0:
            raise ValueError(f"factor must be positive, got {factor!r}")
        self._alpha *= float(factor)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Deep-copied, checkpointable snapshot of the optimizer state."""
        state: Dict[str, Any] = {
            "kind": "nesterov",
            "ux": self.ux.copy(),
            "uy": self.uy.copy(),
            "vx": self.vx.copy(),
            "vy": self.vy.copy(),
            "a": float(self._a),
            "alpha": float(self._alpha),
            "max_step": self._max_step,
        }
        for key, value in (
            ("prev_vx", self._prev_vx),
            ("prev_vy", self._prev_vy),
            ("prev_gx", self._prev_gx),
            ("prev_gy", self._prev_gy),
        ):
            if value is not None:
                state[key] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict` (bit-exact restore)."""
        if state.get("kind") != "nesterov":
            raise ValueError(f"not a nesterov state dict: {state.get('kind')!r}")
        self.ux = np.asarray(state["ux"], dtype=FLOAT).copy()
        self.uy = np.asarray(state["uy"], dtype=FLOAT).copy()
        self.vx = np.asarray(state["vx"], dtype=FLOAT).copy()
        self.vy = np.asarray(state["vy"], dtype=FLOAT).copy()
        self._a = float(state["a"])
        self._alpha = float(state["alpha"])
        self._max_step = state.get("max_step")
        self._prev_vx = _optional_array(state.get("prev_vx"))
        self._prev_vy = _optional_array(state.get("prev_vy"))
        self._prev_gx = _optional_array(state.get("prev_gx"))
        self._prev_gy = _optional_array(state.get("prev_gy"))


def _optional_array(value) -> Optional[np.ndarray]:
    if value is None:
        return None
    return np.asarray(value, dtype=FLOAT).copy()
