"""Jacobi preconditioner H̃ = H_W + λ·H_D and the stage indicator ω.

H_W = diag(|S_1| … |S_N|) counts nets per cell; H_D = diag(A_1 … A_N)
holds cell areas (Section 3.2).  Dividing the gradient by
max(H_W + λ·H_D, 1) removes the systematic advantage high-degree/large
cells would otherwise have in step length.

The *precondition weighted ratio*

    ω = λ·|H_D| / (|H_W| + λ·|H_D|)  ∈ [0, 1]

(|·| = ℓ1 norm of the diagonal over movable cells) measures which term
dominates the optimization: ω < 0.05 wirelength-dominated, 0.05→0.95
spreading, > 0.95 final convergence.  The scheduler and the NN blending
function σ(ω) both key off it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from repro.dtypes import FLOAT

from repro.density.fillers import FillerCells
from repro.netlist import Netlist
from repro.ops import profiled
from repro.perf.workspace import Workspace


class Preconditioner:
    """Preconditions concatenated [movable cells; fillers] gradients."""

    def __init__(self, netlist: Netlist, fillers: FillerCells) -> None:
        movable = netlist.movable_index
        self._hw = np.concatenate(
            [
                netlist.cell_num_nets[movable].astype(FLOAT),
                np.zeros(fillers.count, dtype=FLOAT),  # fillers touch no nets
            ]
        )
        filler_area = np.asarray(fillers.w) * np.asarray(fillers.h)
        self._hd = np.concatenate([netlist.cell_area[movable], filler_area])
        self._num_movable = len(movable)
        # ω uses movable (real) cells only, per the paper's definition.
        self._hw_norm = float(np.sum(np.abs(self._hw[: self._num_movable])))
        self._hd_norm = float(np.sum(np.abs(self._hd[: self._num_movable])))

    # ------------------------------------------------------------------
    def apply(
        self,
        grad_x: np.ndarray,
        grad_y: np.ndarray,
        lam: float,
        workspace: Optional[Workspace] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return H̃⁻¹·grad for both axes (clamped denominator ≥ 1).

        The returned arrays are always freshly allocated — the Nesterov
        optimizer retains them across iterations as its previous-gradient
        state, so they must never alias arena buffers.  ``workspace``
        only recycles the denominator scratch.
        """
        profiled("precondition", 2)
        if workspace is None:
            denom = np.maximum(self._hw + lam * self._hd, 1.0)
        else:
            denom = workspace.get("pre.denom", self._hw.shape)
            np.multiply(self._hd, lam, out=denom)
            np.add(denom, self._hw, out=denom)
            np.maximum(denom, 1.0, out=denom)
        return grad_x / denom, grad_y / denom

    def omega(self, lam: float) -> float:
        """Stage indicator ω(λ) ∈ [0, 1]."""
        weighted = lam * self._hd_norm
        total = self._hw_norm + weighted
        if total <= 0:
            return 0.0
        return weighted / total

    def lambda_for_omega(self, omega: float) -> float:
        """Inverse of :meth:`omega` (useful for tests and schedules)."""
        if not 0 <= omega < 1:
            raise ValueError("omega must be in [0, 1)")
        if self._hd_norm == 0:
            return 0.0
        return omega * self._hw_norm / ((1.0 - omega) * self._hd_norm)
