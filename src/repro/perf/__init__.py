"""Performance layer: the workspace buffer arena and the bench harness.

``Workspace`` (:mod:`repro.perf.workspace`) is the preallocated scratch
arena the gradient engine threads through the hot operators;
:mod:`repro.perf.bench` is the ``repro bench`` harness that proves the
arena's speedup (and catches regressions) on sized synthetic designs.
"""

from repro.perf.workspace import Workspace, maybe_workspace

__all__ = ["Workspace", "maybe_workspace"]
