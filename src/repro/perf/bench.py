"""Operator benchmark harness behind ``repro bench``.

Runs the combined wirelength + density gradient step (the hot loop of
global placement) on a sized synthetic design, once with the
:class:`~repro.perf.workspace.Workspace` arena and once with the plain
allocating kernels, and reports per operator:

* **launches** — vectorised-kernel dispatch counts (``profiled``),
* **seconds** — wall time inside the ``timed(...)`` operator spans,
* **peak temporary bytes** — ``tracemalloc`` peak of one isolated
  operator invocation (the allocating cost the arena removes), plus the
  arena's resident bytes per operator namespace for the workspace mode.

Both modes drive *identical* inputs through *identical* math; the
harness asserts the assembled gradients match bit-for-bit before it
trusts any timing, and (optionally) replays a short real GP run in both
modes to check the HPWL trajectory is bit-identical too.

The report is JSON-friendly and written to ``BENCH_operator.json`` at
the repo root by the CLI; ``--compare`` diffs a fresh run against a
saved report and flags per-operator and per-step slowdowns beyond a
threshold, which is what the CI ``bench-smoke`` step gates on.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from typing import Any, Dict, List, Optional

import numpy as np

from repro.ops import KernelProfiler, use_profiler

DEFAULT_REPORT = "BENCH_operator.json"
SCHEMA_VERSION = 1

EXPLORE_REPORT = "BENCH_explore.json"
EXPLORE_SCHEMA_VERSION = 1

#: size name -> (suite design, scale factor, default measured iterations)
SIZES: Dict[str, tuple] = {
    "tiny": ("adaptec1", 0.01, 30),
    "small": ("adaptec1", 0.05, 15),
    "medium": ("adaptec3", 0.05, 10),
}

#: the timed operator spans, in hot-loop order
OPERATORS = ("wirelength", "density_scatter", "field_solve", "density_gather")


# ----------------------------------------------------------------------
def _build(netlist, workspace: bool, seed: int):
    """One (engine, pos_x, pos_y, gamma, lam) harness for a mode.

    ``operator_skipping`` is off so every measured iteration pays the
    full wirelength + density cost — the quantity being compared.
    """
    from repro.core.gradient_engine import GradientEngine
    from repro.core.initializer import initial_positions
    from repro.core.params import PlacementParams
    from repro.density.system import DensitySystem

    params = PlacementParams(workspace=workspace, operator_skipping=False,
                             seed=seed)
    density = DensitySystem(
        netlist,
        target_density=params.target_density,
        extraction=params.density_extraction,
        rng=np.random.default_rng(seed + 1),
    )
    engine = GradientEngine(netlist, density, params)
    x0, y0 = initial_positions(netlist, rng=np.random.default_rng(seed))
    mov = netlist.movable_index
    pos_x = np.concatenate([x0[mov], density.fillers.x])
    pos_y = np.concatenate([y0[mov], density.fillers.y])
    bin_size = min(density.grid.bin_w, density.grid.bin_h)
    gamma = params.gamma(1.0, bin_size)  # iteration-0 smoothing
    lam = 1e-4
    return engine, pos_x, pos_y, gamma, lam


def _step(engine, pos_x, pos_y, gamma, lam, iteration):
    """One combined gradient step: compute + assemble."""
    result = engine.compute(iteration, pos_x, pos_y, gamma, lam)
    grad_x, grad_y = engine.assemble(result, pos_x, pos_y, lam)
    return result, grad_x, grad_y


def _operator_peaks(engine, pos_x, pos_y, gamma) -> Dict[str, int]:
    """tracemalloc peak bytes of one isolated call per hot operator."""
    density = engine.density
    full_x, full_y = engine.full_positions(pos_x, pos_y)
    mov_idx = density._mov_idx
    mov_x, mov_y = full_x[mov_idx], full_y[mov_idx]
    mov_w, mov_h = density._mov_w, density._mov_h
    total = density.scatter.scatter(mov_x, mov_y, mov_w, mov_h)
    total = total / density.grid.bin_area + density._fixed_density
    field = density.solver.solve(total)

    calls = {
        "wirelength": lambda: engine.wirelength(full_x, full_y, gamma),
        "density_scatter": lambda: density.scatter.scatter(
            mov_x, mov_y, mov_w, mov_h),
        "field_solve": lambda: density.solver.solve(total),
        "density_gather": lambda: density.scatter.gather(
            field.field_x, mov_x, mov_y, mov_w, mov_h),
    }
    peaks = {}
    for name, call in calls.items():
        call()  # warm the arena/caches so the peak is steady-state
        tracemalloc.start()
        call()
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[name] = int(peak)
    return peaks


def _mode_dict(workspace: bool, step_seconds: List[float],
               profiler: KernelProfiler, peaks: Dict[str, int],
               arena_stats: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    mode: Dict[str, Any] = {
        "workspace": workspace,
        "step_seconds_mean": float(np.mean(step_seconds)),
        "step_seconds_median": float(np.median(step_seconds)),
        "step_seconds_min": float(np.min(step_seconds)),
        "step_seconds_total": float(np.sum(step_seconds)),
        "operator_seconds": {
            op: float(profiler.seconds.get(op, 0.0)) for op in OPERATORS
        },
        "operator_launches": {
            op: int(profiler.counts.get(op, 0))
            for op in sorted(profiler.counts)
        },
        "operator_peak_temp_bytes": peaks,
        "total_launches": int(profiler.total),
    }
    if arena_stats is not None:
        mode["arena"] = arena_stats
    return mode


def _run_modes(netlist, iters: int, warmup: int, seed: int):
    """Time steady-state gradient steps in both modes, interleaved.

    Alternating workspace/fallback steps (instead of one long block per
    mode) means slow machine drift — frequency scaling, noisy
    neighbours — lands on both sides equally; the per-mode medians stay
    comparable even on a loaded host.
    """
    eng_ws, px_ws, py_ws, gamma, lam = _build(netlist, True, seed)
    eng_al, px_al, py_al, _gamma, _lam = _build(netlist, False, seed)
    prof_ws = KernelProfiler(timed=True)
    prof_al = KernelProfiler(timed=True)
    ws_seconds: List[float] = []
    al_seconds: List[float] = []

    for i in range(warmup):
        with use_profiler(prof_ws):
            _step(eng_ws, px_ws, py_ws, gamma, lam, i)
        with use_profiler(prof_al):
            _step(eng_al, px_al, py_al, gamma, lam, i)
    prof_ws.reset()
    prof_al.reset()
    eng_ws.workspace.reset_counters()

    for i in range(iters):
        with use_profiler(prof_ws):
            start = time.perf_counter()
            _step(eng_ws, px_ws, py_ws, gamma, lam, warmup + i)
            ws_seconds.append(time.perf_counter() - start)
        with use_profiler(prof_al):
            start = time.perf_counter()
            _step(eng_al, px_al, py_al, gamma, lam, warmup + i)
            al_seconds.append(time.perf_counter() - start)

    # Steady-state arena stats before the probes below touch buffers
    # outside the hot loop.
    arena_stats = eng_ws.workspace.stats()
    # Outside the profiler contexts: the peaks probe re-invokes the
    # operators and must not pollute the measured launch/span totals.
    ws_peaks = _operator_peaks(eng_ws, px_ws, py_ws, gamma)
    al_peaks = _operator_peaks(eng_al, px_al, py_al, gamma)

    # One final step per mode just for the gradient fingerprint (mode
    # identity check) — outside the timing, after the peaks probes.
    _r, ws_gx, ws_gy = _step(eng_ws, px_ws, py_ws, gamma, lam,
                             warmup + iters)
    ws_grads = (np.array(ws_gx, copy=True), np.array(ws_gy, copy=True))
    _r, al_gx, al_gy = _step(eng_al, px_al, py_al, gamma, lam,
                             warmup + iters)
    al_grads = (np.array(al_gx, copy=True), np.array(al_gy, copy=True))

    ws_mode = _mode_dict(True, ws_seconds, prof_ws, ws_peaks, arena_stats)
    al_mode = _mode_dict(False, al_seconds, prof_al, al_peaks, None)
    return ws_mode, al_mode, ws_grads, al_grads


def _trajectory_check(netlist, iterations: int, seed: int) -> Dict[str, Any]:
    """Replay a short real GP run in both modes; trajectories must match."""
    from repro.core.params import PlacementParams
    from repro.core.placer import XPlacer

    traces = {}
    for workspace in (True, False):
        params = PlacementParams(
            workspace=workspace,
            max_iterations=iterations,
            min_iterations=min(5, iterations),
            seed=seed,
        )
        result = XPlacer(netlist, params).run()
        traces[workspace] = (result.recorder.trace("hpwl"),
                             result.x, result.y)
    hpwl_ws, x_ws, y_ws = traces[True]
    hpwl_al, x_al, y_al = traces[False]
    return {
        "iterations": int(len(hpwl_ws)),
        "hpwl_identical": bool(np.array_equal(hpwl_ws, hpwl_al)),
        "positions_identical": bool(
            np.array_equal(x_ws, x_al) and np.array_equal(y_ws, y_al)
        ),
        "final_hpwl": float(hpwl_ws[-1]) if len(hpwl_ws) else None,
    }


# ----------------------------------------------------------------------
def run_bench(
    size: str = "tiny",
    iters: Optional[int] = None,
    warmup: int = 3,
    seed: int = 0,
    trajectory_iters: int = 0,
) -> Dict[str, Any]:
    """Benchmark the gradient step in both modes; return the report dict."""
    if size not in SIZES:
        raise ValueError(f"unknown bench size {size!r}; pick from "
                         f"{sorted(SIZES)}")
    from repro.benchgen import make_design

    design, scale, default_iters = SIZES[size]
    if iters is None:
        iters = default_iters
    netlist = make_design(design, scale=scale)

    ws_mode, al_mode, ws_grads, al_grads = _run_modes(
        netlist, iters, warmup, seed
    )
    identical = bool(
        np.array_equal(ws_grads[0], al_grads[0])
        and np.array_equal(ws_grads[1], al_grads[1])
    )
    # Median over interleaved steps: robust to the occasional step that
    # catches a scheduler hiccup, and both modes sample the same
    # machine-state timeline.
    ws_step = ws_mode["step_seconds_median"]
    al_step = al_mode["step_seconds_median"]
    reduction = (1.0 - ws_step / al_step) * 100.0 if al_step > 0 else 0.0

    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "size": size,
        "design": design,
        "scale": scale,
        "num_cells": int(netlist.num_cells),
        "num_nets": int(netlist.num_nets),
        "num_pins": int(netlist.num_pins),
        "iters": int(iters),
        "warmup": int(warmup),
        "seed": int(seed),
        "modes": {"workspace": ws_mode, "fallback": al_mode},
        "step_reduction_pct": float(reduction),
        "gradients_identical": identical,
    }
    if trajectory_iters > 0:
        report["trajectory"] = _trajectory_check(
            netlist, trajectory_iters, seed
        )
    return report


# ----------------------------------------------------------------------
def run_explore_bench(
    design: Optional[str] = "fft_1",
    aux: Optional[str] = None,
    cells: Optional[int] = None,
    scale: float = 0.01,
    population: int = 4,
    rounds: int = 2,
    survivors: int = 2,
    seed: int = 0,
    cohort_seed: int = 0,
    max_iterations: int = 200,
    min_iterations: int = 20,
    segment_iters: Optional[int] = None,
    workers: int = 1,
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    """Equal-core-seconds comparison: one GP run vs an exploration cohort.

    Both sides run the *same* design, params and GP-only pipeline.  The
    single run is the do-nothing-clever baseline: one trajectory from
    ``seed``, terminating at convergence (or the iteration wall) — once
    converged it cannot productively spend another core-second.  The
    cohort spends its surplus budget on forked search instead; the
    ledger records exactly how many core-seconds each side consumed so
    the comparison is honest about cost, and the gate —
    ``beats_single_run`` (strict) / ``matches_single_run`` (≤) — is
    guaranteed never to read false on ``matches``: the elite lineage
    replays the baseline bit-for-bit, so the cohort's best final HPWL
    is at most the single run's.
    """
    from repro.core.params import PlacementParams
    from repro.explore import ExploreConfig, PopulationController
    from repro.explore.controller import PIPELINE_FACTORY
    from repro.runtime.job import PlacementJob, execute_job

    if aux is not None:
        design = None
    params = PlacementParams(max_iterations=max_iterations,
                             min_iterations=min_iterations, seed=seed)
    base = PlacementJob(design=design, aux=aux, cells=cells, scale=scale,
                        params=params)

    single_job = PlacementJob(design=design, aux=aux, cells=cells,
                              scale=scale, params=params,
                              pipeline=PIPELINE_FACTORY)
    single = execute_job(single_job)
    single_metrics = single.report.metrics if single.report else {}

    config = ExploreConfig(
        population=population, rounds=rounds, survivors=survivors,
        seed=cohort_seed, segment_iters=segment_iters, workers=workers,
    )
    controller = PopulationController(base, config, workdir=workdir)
    cohort = controller.run()

    best = cohort.best_hpwl
    improvement = (
        (single.hpwl - best) / single.hpwl * 100.0
        if best is not None and single.hpwl else None
    )
    return {
        "schema": EXPLORE_SCHEMA_VERSION,
        "design": design or os.path.basename(aux or "?"),
        "cells": cells,
        "scale": scale,
        "seed": seed,
        "cohort_seed": cohort_seed,
        "max_iterations": max_iterations,
        "single_run": {
            "hpwl": single.hpwl,
            "core_seconds": single.seconds,
            "iterations": single_metrics.get("gp_iterations"),
            "converged": single_metrics.get("gp_converged"),
            "job_id": single.job_id,
        },
        "population": {
            "config": cohort.config,
            "best_hpwl": best,
            "best_slot": cohort.best_slot,
            "best_job_id": cohort.best_job_id,
            "total_core_seconds": cohort.total_core_seconds,
            "cached_core_seconds": cohort.cached_core_seconds,
            "forks": cohort.forks,
            "culls": cohort.culls,
            "rounds": cohort.rounds,
            "lineage": cohort.lineage,
            "budget_stopped": cohort.budget_stopped,
        },
        "improvement_pct": improvement,
        "beats_single_run": (best is not None and single.hpwl is not None
                             and best < single.hpwl),
        "matches_single_run": (best is not None and single.hpwl is not None
                               and best <= single.hpwl),
    }


def format_explore_report(report: Dict[str, Any]) -> str:
    """Console rendering of one exploration benchmark report."""
    single = report["single_run"]
    pop = report["population"]
    config = pop["config"]
    lines = [
        f"explore bench {report['design']} (cells={report['cells']}, "
        f"max_iterations={report['max_iterations']}, seed={report['seed']})",
        f"  single run:  hpwl={single['hpwl']:.6g}  "
        f"{single['core_seconds']:.2f} core-seconds  "
        f"({single['iterations']} iters, converged={single['converged']})",
        f"  population:  best hpwl={pop['best_hpwl']:.6g} "
        f"(slot {pop['best_slot']})  "
        f"{pop['total_core_seconds']:.2f} core-seconds  "
        f"(population {config['population']} × {len(pop['rounds'])} rounds, "
        f"{pop['forks']} forks, {pop['culls']} culls)",
        f"  improvement: {report['improvement_pct']:.3f}%  "
        f"beats={report['beats_single_run']} "
        f"matches={report['matches_single_run']}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
def write_report(report: Dict[str, Any], path: str = DEFAULT_REPORT) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare_reports(
    new: Dict[str, Any],
    old: Dict[str, Any],
    threshold: float = 0.25,
) -> List[str]:
    """Regressions of ``new`` vs ``old``: list of human-readable strings.

    A regression is a workspace-mode per-operator or per-step time more
    than ``threshold`` (fractional) slower than the saved report.  Wall
    time is noisy across hosts, so the default tolerance is generous —
    this gate is for order-of-magnitude breakage (a lost fast path),
    not micro-variance.
    """
    problems: List[str] = []
    if new.get("size") != old.get("size"):
        problems.append(
            f"size mismatch: new={new.get('size')!r} old={old.get('size')!r}"
            " — benchmarks are only comparable at the same size"
        )
        return problems
    new_ws = new["modes"]["workspace"]
    old_ws = old["modes"]["workspace"]
    limit = 1.0 + threshold

    new_step = new_ws.get("step_seconds_median", new_ws["step_seconds_mean"])
    old_step = old_ws.get("step_seconds_median", old_ws["step_seconds_mean"])
    if old_step > 0 and new_step > old_step * limit:
        problems.append(
            f"step seconds (median) regressed: {new_step:.6f}s vs "
            f"{old_step:.6f}s (+{(new_step / old_step - 1) * 100:.1f}%, "
            f"threshold {threshold * 100:.0f}%)"
        )
    for op in OPERATORS:
        new_sec = new_ws["operator_seconds"].get(op, 0.0)
        old_sec = old_ws["operator_seconds"].get(op, 0.0)
        if old_sec > 0 and new_sec > old_sec * limit:
            problems.append(
                f"{op} regressed: {new_sec:.6f}s vs {old_sec:.6f}s "
                f"(+{(new_sec / old_sec - 1) * 100:.1f}%, "
                f"threshold {threshold * 100:.0f}%)"
            )
    if not new.get("gradients_identical", False):
        problems.append("workspace/fallback gradients are no longer "
                        "bit-identical")
    return problems


def format_report(report: Dict[str, Any]) -> str:
    """Console rendering of one benchmark report."""
    ws = report["modes"]["workspace"]
    al = report["modes"]["fallback"]
    lines = [
        f"bench {report['size']} ({report['design']} scale="
        f"{report['scale']}, {report['num_cells']} cells, "
        f"{report['num_nets']} nets), {report['iters']} iters",
        f"  step median: workspace {ws['step_seconds_median'] * 1e3:.2f}ms  "
        f"fallback {al['step_seconds_median'] * 1e3:.2f}ms  "
        f"(reduction {report['step_reduction_pct']:.1f}%)",
        f"  step mean:   workspace {ws['step_seconds_mean'] * 1e3:.2f}ms  "
        f"fallback {al['step_seconds_mean'] * 1e3:.2f}ms",
        f"  gradients bit-identical: {report['gradients_identical']}",
        f"  {'operator':<18s} {'ws sec':>9s} {'alloc sec':>10s} "
        f"{'ws peak B':>10s} {'alloc peak B':>12s}",
    ]
    for op in OPERATORS:
        lines.append(
            f"  {op:<18s} {ws['operator_seconds'][op]:>9.4f} "
            f"{al['operator_seconds'][op]:>10.4f} "
            f"{ws['operator_peak_temp_bytes'].get(op, 0):>10d} "
            f"{al['operator_peak_temp_bytes'].get(op, 0):>12d}"
        )
    arena = ws.get("arena")
    if arena:
        per_op = ", ".join(
            f"{k}={v}" for k, v in sorted(
                arena["nbytes_by_operator"].items())
        )
        lines.append(
            f"  arena: {arena['buffers']} buffers, {arena['nbytes']} B "
            f"(hit rate {arena['hit_rate'] * 100:.1f}%), by ns: {per_op}"
        )
    traj = report.get("trajectory")
    if traj:
        lines.append(
            f"  trajectory ({traj['iterations']} iters): hpwl identical="
            f"{traj['hpwl_identical']} positions identical="
            f"{traj['positions_identical']}"
        )
    return "\n".join(lines)
