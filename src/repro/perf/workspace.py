"""The Workspace buffer arena: named, preallocated kernel scratch.

Every GP iteration evaluates the same operators on the same-shaped
arrays, yet the straightforward NumPy spelling allocates dozens of pin-
and grid-sized temporaries per iteration — the CPU analogue of the
per-kernel launch overhead the paper drives to zero by operator
reduction (Section 3.1).  A :class:`Workspace` removes that overhead:
operators request named scratch buffers once and NumPy ufuncs write
into them with ``out=`` on every subsequent iteration.

Keys are ``(name, shape, dtype)``, so one logical buffer name may back
several populations (e.g. the scatter loop temporaries for movable
cells *and* fillers) without thrashing: each distinct shape gets its
own persistent array.  After a warm-up pass the steady-state hot loop
performs **zero** arena allocations — ``misses`` stops growing, which
the test suite asserts directly.

Contents of a buffer returned by :meth:`get` are *unspecified* (like
``np.empty``); callers must fully overwrite it or use :meth:`zeros`.
Buffers are only valid until the same key is requested again, so
operators must not hand workspace arrays to consumers that retain them
across iterations (the gradient engine copies anything it caches).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.dtypes import FLOAT, INT


class Workspace:
    """Shape/dtype-keyed arena of reusable scratch arrays."""

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, Tuple[int, ...], Any], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(
        self,
        name: str,
        shape,
        dtype=FLOAT,
    ) -> np.ndarray:
        """A reusable buffer for ``name`` with the given shape/dtype.

        Contents are unspecified (first request) or whatever the last
        user of the same key left behind — treat it like ``np.empty``.
        """
        if not isinstance(shape, tuple):
            shape = (int(shape),)
        key = (name, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        else:
            self.hits += 1
        return buf

    def zeros(self, name: str, shape, dtype=FLOAT) -> np.ndarray:
        """Like :meth:`get` but zero-filled on every request."""
        buf = self.get(name, shape, dtype)
        buf.fill(0)
        return buf

    def arange(self, n: int) -> np.ndarray:
        """Cached ``np.arange(n, dtype=INT)`` (a read-only index ramp)."""
        key = ("__arange__", (int(n),), np.dtype(INT))
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            buf = np.arange(n, dtype=INT)
            buf.setflags(write=False)
            self._buffers[key] = buf
        else:
            self.hits += 1
        return buf

    # ------------------------------------------------------------------
    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def nbytes_by_prefix(self) -> Dict[str, int]:
        """Bytes held per buffer-name prefix (text before the first dot).

        Operators namespace their buffers (``wa.*``, ``sc.*``, ``es.*``,
        ``eng.*``), so this is a per-operator peak-scratch breakdown.
        """
        totals: Dict[str, int] = {}
        for (name, _shape, _dtype), buf in self._buffers.items():
            prefix = name.split(".", 1)[0]
            totals[prefix] = totals.get(prefix, 0) + buf.nbytes
        return totals

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly summary: hit/miss counters + held bytes."""
        total = self.hits + self.misses
        return {
            "buffers": self.num_buffers,
            "nbytes": int(self.nbytes),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "hit_rate": (self.hits / total) if total else 0.0,
            "nbytes_by_operator": self.nbytes_by_prefix(),
        }

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (buffers stay warm)."""
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        """Drop every buffer (and the counters)."""
        self._buffers.clear()
        self.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workspace(buffers={self.num_buffers}, "
            f"nbytes={self.nbytes}, hits={self.hits}, misses={self.misses})"
        )


def maybe_workspace(enabled: bool) -> Optional[Workspace]:
    """``Workspace()`` when enabled, else ``None`` (allocating fallback)."""
    return Workspace() if enabled else None
