"""Composable placement pipelines (the extensibility seam).

The paper sells Xplace as an *extensible framework*: routability and
neural extensions plug into one engine.  This package is that claim as
an API — every end-to-end flow in the repo is a list of
:class:`Stage` objects run over one :class:`PlacementContext` by a
:class:`Pipeline`, which contributes per-stage timing, merged metrics
and a serializable :class:`FlowReport`:

    from repro.pipeline import (
        PlacementContext, Pipeline, GlobalPlaceStage, LegalizeStage,
        DetailStage, RouteStage,
    )

    ctx = PlacementContext(netlist=netlist)
    report = Pipeline(
        [GlobalPlaceStage(), LegalizeStage(), DetailStage(), RouteStage()],
        name="my-flow",
    ).run(ctx)
    print(report.summary(), ctx.metrics["dp_hpwl"])

``repro.flow.run_flow`` and ``repro.flow_mixed.run_mixed_size_flow`` are
thin compositions of these stages; the GP loop itself is observable
through the :class:`~repro.core.callbacks.IterationCallback` protocol
(``ctx.callbacks``).
"""

from repro.core.callbacks import (
    CallbackList,
    IterationCallback,
    LoopStart,
    LoopStop,
    QueueCallback,
    RecorderCallback,
    VerboseCallback,
)
from repro.pipeline.context import FlowReport, PlacementContext, StageReport
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.stages import (
    DetailStage,
    FreezeStage,
    GlobalPlaceStage,
    LegalizeStage,
    MacroLegalizeStage,
    RouteStage,
    freeze_cells,
    movable_macro_indices,
)

__all__ = [
    "CallbackList",
    "IterationCallback",
    "LoopStart",
    "LoopStop",
    "QueueCallback",
    "RecorderCallback",
    "VerboseCallback",
    "FlowReport",
    "PlacementContext",
    "StageReport",
    "Pipeline",
    "Stage",
    "DetailStage",
    "FreezeStage",
    "GlobalPlaceStage",
    "LegalizeStage",
    "MacroLegalizeStage",
    "RouteStage",
    "freeze_cells",
    "movable_macro_indices",
]
