"""The state threaded through a placement pipeline, and its reports.

A :class:`PlacementContext` is the single mutable object a
:class:`~repro.pipeline.stage.Pipeline` hands from stage to stage: the
working netlist (which :class:`~repro.pipeline.stages.FreezeStage` may
swap for a derived one), the current cell positions, the parameter set,
the iteration callbacks to attach to any GP loop, and every artefact a
stage leaves behind (GP result, legality report, routing result, merged
metrics).  The pipeline runner turns the per-stage timings and metrics
into a serializable :class:`FlowReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.callbacks import IterationCallback
from repro.core.params import PlacementParams
from repro.netlist import Netlist


@dataclass
class StageReport:
    """Timing + metrics of one executed stage."""

    name: str
    seconds: float
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "metrics": {k: _jsonable(v) for k, v in self.metrics.items()},
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageReport":
        return cls(
            name=data["name"],
            seconds=float(data["seconds"]),
            metrics=dict(data.get("metrics") or {}),
            error=data.get("error"),
        )


@dataclass
class FlowReport:
    """Structured, serializable account of one pipeline run."""

    pipeline: str
    design: str
    stages: List[StageReport] = field(default_factory=list)
    total_seconds: float = 0.0

    def stage(self, name: str) -> StageReport:
        """The report of the stage called ``name`` (first match)."""
        for report in self.stages:
            if report.name == name:
                return report
        raise KeyError(f"no stage named {name!r} in pipeline {self.pipeline!r}")

    def seconds(self, *names: str) -> float:
        """Summed wall-clock of the named stages."""
        return sum(self.stage(name).seconds for name in names)

    @property
    def metrics(self) -> Dict[str, Any]:
        """All stage metrics merged, later stages winning on collision."""
        merged: Dict[str, Any] = {}
        for report in self.stages:
            merged.update(report.metrics)
        return merged

    @property
    def ok(self) -> bool:
        return all(report.error is None for report in self.stages)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pipeline": self.pipeline,
            "design": self.design,
            "total_seconds": self.total_seconds,
            "ok": self.ok,
            "stages": [report.to_dict() for report in self.stages],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowReport":
        """Inverse of :meth:`to_dict` (``ok`` is re-derived, not read)."""
        return cls(
            pipeline=data["pipeline"],
            design=data["design"],
            stages=[StageReport.from_dict(s) for s in data.get("stages", [])],
            total_seconds=float(data.get("total_seconds", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FlowReport":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        parts = [f"{self.pipeline}[{self.design}] {self.total_seconds:.2f}s"]
        for report in self.stages:
            mark = "!" if report.error else ""
            parts.append(f"{report.name}{mark}={report.seconds:.2f}s")
        return " ".join(parts)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.bool_):
        return bool(value)
    return value


@dataclass
class PlacementContext:
    """Everything a pipeline run reads and writes.

    ``netlist`` is the *working* netlist — stages like
    :class:`~repro.pipeline.stages.FreezeStage` replace it with a derived
    design; ``original_netlist`` always refers to the input, so final
    metrics (e.g. true HPWL of a mixed-size flow) can be evaluated
    against the real circuit.
    """

    netlist: Netlist
    params: PlacementParams = field(default_factory=PlacementParams)
    placer: str = "xplace"
    field_predictor: Optional[Any] = None
    callbacks: List[IterationCallback] = field(default_factory=list)

    # Recovery policy for GP stages: a directory to spill checkpoints
    # into (arms checkpoint/rollback even when params leave it off) and
    # whether to resume from a spilled checkpoint found there.
    # ``final_checkpoint`` pins the loop state at a max-iterations stop
    # (and keeps the spill) so the run can be forked/continued later.
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    final_checkpoint: bool = False

    # Positions: stages consume and overwrite these (cell centers).
    x: Optional[np.ndarray] = None
    y: Optional[np.ndarray] = None

    # Stage artefacts.
    original_netlist: Optional[Netlist] = None
    gp_result: Optional[Any] = None          # PlacementResult of the last GP stage
    macro_indices: Optional[np.ndarray] = None
    detail_result: Optional[Any] = None      # DetailedPlacementResult
    legality: Optional[Any] = None           # LegalityReport
    routing: Optional[Any] = None            # RoutingResult
    metrics: Dict[str, Any] = field(default_factory=dict)
    report: Optional[FlowReport] = None

    def __post_init__(self) -> None:
        if self.original_netlist is None:
            self.original_netlist = self.netlist

    def positions(self):
        if self.x is None or self.y is None:
            raise RuntimeError(
                "context has no positions yet — run a placement stage first"
            )
        return self.x, self.y
