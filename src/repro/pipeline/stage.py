"""Stage base class and the Pipeline runner.

A placement flow is a list of :class:`Stage` objects applied in order to
one :class:`~repro.pipeline.context.PlacementContext`.  The
:class:`Pipeline` runner owns the cross-cutting concerns every flow used
to hand-roll: per-stage wall-clock timing, metric collection into a
:class:`~repro.pipeline.context.FlowReport`, and error context (a
failing stage re-raises its original exception, annotated with the
pipeline/stage it died in and the partial report gathered so far).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.pipeline.context import FlowReport, PlacementContext, StageReport


class Stage:
    """One step of a placement flow.

    Subclasses implement :meth:`execute`, mutating the context (positions,
    netlist, artefacts) and returning a metrics dict that the pipeline
    merges into ``ctx.metrics`` and records in the stage report.  ``name``
    is the report key; pass one to the constructor to disambiguate two
    instances of the same stage class in one pipeline (e.g. the mGP and
    cGP global-place stages of the mixed-size flow).
    """

    name = "stage"

    def __init__(self, name: Optional[str] = None) -> None:
        if name is not None:
            self.name = name

    def execute(self, ctx: PlacementContext) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class Pipeline:
    """Runs stages in order, timing each and assembling a FlowReport."""

    def __init__(self, stages: Iterable[Stage], name: str = "pipeline") -> None:
        self.stages: List[Stage] = list(stages)
        self.name = name

    def run(self, ctx: PlacementContext) -> FlowReport:
        """Execute all stages on ``ctx`` and return the flow report.

        On stage failure the original exception propagates (so callers'
        ``except ValueError`` etc. keep working) with three attributes
        attached for diagnosis: ``pipeline_name``, ``pipeline_stage`` and
        ``flow_report`` (the partial report, including the failed stage's
        elapsed time and error string).  The same partial report is also
        left on ``ctx.report``.
        """
        reports: List[StageReport] = []
        run_start = time.perf_counter()
        for stage in self.stages:
            stage_start = time.perf_counter()
            try:
                metrics = stage.execute(ctx) or {}
            except Exception as err:
                seconds = time.perf_counter() - stage_start
                reports.append(
                    StageReport(
                        name=stage.name,
                        seconds=seconds,
                        error=f"{type(err).__name__}: {err}",
                    )
                )
                report = self._finish(ctx, reports, run_start)
                err.pipeline_name = self.name
                err.pipeline_stage = stage.name
                err.flow_report = report
                raise
            ctx.metrics.update(metrics)
            reports.append(
                StageReport(
                    name=stage.name,
                    seconds=time.perf_counter() - stage_start,
                    metrics=dict(metrics),
                )
            )
        return self._finish(ctx, reports, run_start)

    def _finish(
        self,
        ctx: PlacementContext,
        reports: Sequence[StageReport],
        run_start: float,
    ) -> FlowReport:
        report = FlowReport(
            pipeline=self.name,
            design=ctx.original_netlist.name,
            stages=list(reports),
            total_seconds=time.perf_counter() - run_start,
        )
        ctx.report = report
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(stage.name for stage in self.stages)
        return f"Pipeline({self.name!r}: {names})"
