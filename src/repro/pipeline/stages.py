"""The stock placement stages every flow in this repo composes.

Each stage wraps one engine (GP, macro LG, LG, DP, GR) behind the
uniform :class:`~repro.pipeline.stage.Stage` interface so that the
standard flow (Tables 2/4), the mixed-size flow and the routability flow
are all compositions of the same parts — the paper's extensibility claim
expressed as code structure.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

import numpy as np

from repro.core.params import PlacementParams
from repro.netlist import Netlist
from repro.pipeline.context import PlacementContext
from repro.pipeline.stage import Stage


def _with_guidance(params: PlacementParams) -> PlacementParams:
    """Copy of ``params`` with neural guidance switched on."""
    return dataclasses.replace(params, neural_guidance=True)


class GlobalPlaceStage(Stage):
    """Global placement with any of the repo's engines.

    ``placer`` defaults to the context's choice (``"xplace"``,
    ``"xplace-nn"``, ``"baseline"`` or ``"quadratic"``); pass it
    explicitly to pin a stage to one engine regardless of context.
    Iteration callbacks on the context are attached to the GP loop.
    """

    name = "gp"

    def __init__(
        self, placer: Optional[str] = None, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        self.placer = placer

    def execute(self, ctx: PlacementContext) -> Dict[str, Any]:
        from repro.baseline import DreamPlaceStyleBaseline
        from repro.core import XPlacer

        placer = self.placer or ctx.placer
        params = ctx.params
        callbacks = ctx.callbacks
        if placer == "xplace":
            gp = XPlacer(ctx.netlist, params).run(
                callbacks=callbacks,
                checkpoint_dir=ctx.checkpoint_dir,
                resume=ctx.resume,
                final_checkpoint=ctx.final_checkpoint,
            )
        elif placer == "xplace-nn":
            if ctx.field_predictor is None:
                raise ValueError("xplace-nn flow needs a field_predictor")
            gp = XPlacer(
                ctx.netlist,
                _with_guidance(params),
                field_predictor=ctx.field_predictor,
            ).run(
                callbacks=callbacks,
                checkpoint_dir=ctx.checkpoint_dir,
                resume=ctx.resume,
                final_checkpoint=ctx.final_checkpoint,
            )
        elif placer == "baseline":
            gp = DreamPlaceStyleBaseline(ctx.netlist, params).run(
                callbacks=callbacks
            )
        elif placer == "quadratic":
            from repro.quadratic import QuadraticPlacer

            gp = QuadraticPlacer(ctx.netlist, seed=params.seed).run()
        else:
            raise ValueError(f"unknown placer {placer!r}")
        ctx.gp_result = gp
        ctx.x, ctx.y = gp.x, gp.y
        metrics = {
            "gp_hpwl": gp.hpwl,
            "gp_overflow": gp.overflow,
            "gp_iterations": gp.iterations,
            "gp_seconds": gp.gp_seconds,
            "gp_converged": gp.converged,
        }
        # Recovery telemetry (quadratic/baseline results have none).
        rollbacks = getattr(gp, "rollbacks", 0)
        if getattr(gp, "checkpoints", 0) or rollbacks:
            metrics["gp_rollbacks"] = rollbacks
            metrics["gp_checkpoints"] = gp.checkpoints
            metrics["gp_degraded"] = gp.degraded
        if getattr(gp, "resumed_from", None) is not None:
            metrics["gp_resumed_from"] = gp.resumed_from
        if getattr(gp, "checkpoint_stats", None) is not None:
            metrics["gp_checkpoint_stats"] = gp.checkpoint_stats
        return metrics


def movable_macro_indices(netlist: Netlist, row_multiple: float = 2.0) -> np.ndarray:
    """Movable cells taller than ``row_multiple`` rows count as macros."""
    row_height = netlist.region.row_height
    mov = netlist.movable_index
    return mov[netlist.cell_h[mov] >= row_multiple * row_height - 1e-9]


def freeze_cells(
    netlist: Netlist, cells: np.ndarray, x: np.ndarray, y: np.ndarray
) -> Netlist:
    """Derived netlist with ``cells`` fixed at (x, y) (same connectivity)."""
    movable = netlist.movable.copy()
    movable[cells] = False
    fixed_x = netlist.fixed_x.copy()
    fixed_y = netlist.fixed_y.copy()
    fixed_x[cells] = x[cells]
    fixed_y[cells] = y[cells]
    cell_fence = netlist.cell_fence.copy()
    cell_fence[cells] = -1  # fence constraints live on std cells only
    return Netlist(
        cell_name=netlist.cell_name,
        cell_w=netlist.cell_w,
        cell_h=netlist.cell_h,
        movable=movable,
        fixed_x=fixed_x,
        fixed_y=fixed_y,
        pin2cell=netlist.pin2cell,
        pin_dx=netlist.pin_dx,
        pin_dy=netlist.pin_dy,
        pin2net=netlist.pin2net,
        net_start=netlist.net_start,
        net_name=netlist.net_name,
        net_weight=netlist.net_weight,
        region=netlist.region,
        name=netlist.name,
        fences=netlist.fences,
        cell_fence=cell_fence,
    )


class MacroLegalizeStage(Stage):
    """mLG: snap movable macros to legal row/site positions.

    Degrades to a no-op on macro-free designs (displacement 0).  Leaves
    the macro index set on the context for the downstream FreezeStage.
    """

    name = "mlg"

    def __init__(
        self, row_multiple: float = 2.0, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        self.row_multiple = row_multiple

    def execute(self, ctx: PlacementContext) -> Dict[str, Any]:
        from repro.legalize.macros import MacroLegalizer

        x, y = ctx.positions()
        macros = movable_macro_indices(ctx.netlist, self.row_multiple)
        ctx.macro_indices = macros
        if len(macros):
            lx, ly = MacroLegalizer(ctx.netlist).legalize(x, y, macros)
            displacement = float(
                np.mean(
                    np.abs(lx[macros] - x[macros]) + np.abs(ly[macros] - y[macros])
                )
            )
            ctx.x, ctx.y = lx, ly
        else:
            displacement = 0.0
        return {"num_macros": len(macros), "macro_displacement": displacement}


class FreezeStage(Stage):
    """Swap the working netlist for one with the macros fixed in place."""

    name = "freeze"

    def execute(self, ctx: PlacementContext) -> Dict[str, Any]:
        x, y = ctx.positions()
        macros = ctx.macro_indices
        if macros is None:
            macros = movable_macro_indices(ctx.netlist)
            ctx.macro_indices = macros
        ctx.netlist = freeze_cells(ctx.netlist, macros, x, y)
        return {"frozen_cells": int(len(macros))}


class LegalizeStage(Stage):
    """LG: fence-aware Abacus legalization of the standard cells."""

    name = "lg"

    def execute(self, ctx: PlacementContext) -> Dict[str, Any]:
        from repro.legalize import FenceAwareLegalizer
        from repro.wirelength import hpwl as hpwl_fn

        x, y = ctx.positions()
        # FenceAwareLegalizer degrades to plain Abacus on fence-free designs.
        lx, ly = FenceAwareLegalizer(ctx.netlist).legalize(x, y)
        ctx.x, ctx.y = lx, ly
        return {"lg_hpwl": hpwl_fn(ctx.netlist, lx, ly)}


class DetailStage(Stage):
    """DP: ABCDPlace-style refinement, then a legality check."""

    name = "dp"

    def __init__(
        self, passes: int = 1, check: bool = True, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        self.passes = passes
        self.check = check

    def execute(self, ctx: PlacementContext) -> Dict[str, Any]:
        from repro.detail import DetailedPlacer
        from repro.legalize import check_legal

        x, y = ctx.positions()
        dp = DetailedPlacer(ctx.netlist, max_passes=self.passes).place(x, y)
        ctx.detail_result = dp
        ctx.x, ctx.y = dp.x, dp.y
        metrics: Dict[str, Any] = {
            "dp_hpwl": dp.hpwl_after,
            "dp_moves": dp.moves_applied,
        }
        if self.check:
            ctx.legality = check_legal(ctx.netlist, dp.x, dp.y)
            metrics["legal"] = ctx.legality.legal
        return metrics


class RouteStage(Stage):
    """GR: global routing for the top5-overflow routability metric."""

    name = "gr"

    def __init__(self, grid_m: int = 32, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.grid_m = grid_m

    def execute(self, ctx: PlacementContext) -> Dict[str, Any]:
        from repro.route import GlobalRouter

        x, y = ctx.positions()
        routing = GlobalRouter(ctx.netlist, grid_m=self.grid_m).route(x, y)
        ctx.routing = routing
        return {
            "top5_overflow": routing.top5_overflow,
            "total_overflow": routing.total_overflow,
            "gr_seconds": routing.gr_seconds,
        }
