"""Quadratic global placement (the intro's comparator family).

Section 1 of the paper contrasts non-linear placers (higher quality,
slower) with quadratic placers (fast convergence, limited by the low
modeling order of the wirelength).  This package implements that
comparator: the Bound-to-Bound (B2B) net model of Kraftwerk2 solved with
preconditioned conjugate gradients, interleaved with SimPL-style
grid-warping spreading and anchor pseudo-nets.  The bench suite uses it
to reproduce the intro's quality/speed trade-off claim.
"""

from repro.quadratic.b2b import B2BSystem
from repro.quadratic.spreading import grid_warp
from repro.quadratic.placer import QuadraticPlacer

__all__ = ["B2BSystem", "grid_warp", "QuadraticPlacer"]
