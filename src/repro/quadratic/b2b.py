"""Bound-to-Bound (B2B) net model (Spindler et al., Kraftwerk2).

For each net and axis, the extreme pins (bounds) connect to each other
and every inner pin connects to both bounds, with weights

    w_ij = 2 / ((p − 1) · max(|x_i − x_j|, ε))

where p is the net degree.  At the linearisation point the quadratic
energy Σ w_ij (x_i − x_j)² matches the HPWL exactly, which is what makes
B2B the strongest of the classic quadratic net models.  The model is
rebuilt (re-linearised) from the current positions each outer iteration.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import cg

from repro.netlist import Netlist
from repro.ops import profiled


class B2BSystem:
    """Per-axis quadratic system  x_mov^T Q x_mov − 2 b^T x_mov."""

    def __init__(self, netlist: Netlist, epsilon: float = 1e-3) -> None:
        self.netlist = netlist
        self.epsilon = epsilon
        self._mov_index = netlist.movable_index
        # Map cell id -> movable unknown id (-1 for fixed).
        self._unknown = np.full(netlist.num_cells, -1, dtype=np.int64)
        self._unknown[self._mov_index] = np.arange(len(self._mov_index))

    # ------------------------------------------------------------------
    def build(
        self, positions: np.ndarray, offsets: np.ndarray
    ) -> Tuple[csr_matrix, np.ndarray]:
        """Assemble (Q, b) for one axis at the linearisation point.

        ``positions`` are all cell coordinates on this axis; ``offsets``
        the per-pin offsets.  Fixed-cell terms fold into ``b``.  Fully
        vectorised: the edge list (every pin to each of its net's two
        bound pins) is built with segment argmin/argmax, no Python loop
        over nets.
        """
        profiled("b2b_build")
        nl = self.netlist
        pin_pos = positions[nl.pin2cell] + offsets

        # Per-net bound pin indices via masked argmin/argmax.
        order = np.arange(nl.num_pins)
        big = 1e30
        num_nets = nl.num_nets
        min_pin = np.zeros(num_nets, dtype=np.int64)
        max_pin = np.zeros(num_nets, dtype=np.int64)
        # argmin within segments: offset trick with lexsort-free scan.
        # Sort pins by (net, value): the first of each net is its min,
        # the last its max.
        sort_key = np.lexsort((pin_pos, nl.pin2net))
        sorted_nets = nl.pin2net[sort_key]
        first = np.searchsorted(sorted_nets, np.arange(num_nets), side="left")
        last = np.searchsorted(sorted_nets, np.arange(num_nets), side="right") - 1
        valid = nl.net_degree >= 2
        first = np.clip(first, 0, max(nl.num_pins - 1, 0))
        last = np.clip(last, 0, max(nl.num_pins - 1, 0))
        min_pin = sort_key[first]
        max_pin = sort_key[last]

        # Edge set: every pin -> its net's min bound (except the min pin
        # itself), every inner pin -> the max bound.  The max pin's edge
        # to the min covers the bound-bound connection exactly once.
        pins = np.arange(nl.num_pins)
        net_of = nl.pin2net
        net_ok = valid[net_of]
        to_min = pins[net_ok & (pins != min_pin[net_of])]
        inner = net_ok & (pins != min_pin[net_of]) & (pins != max_pin[net_of])
        to_max = pins[inner]
        src = np.concatenate([to_min, to_max])
        dst = np.concatenate([min_pin[net_of[to_min]], max_pin[net_of[to_max]]])

        degree = nl.net_degree[net_of[src]].astype(np.float64)
        weight = (
            2.0
            * nl.net_weight[net_of[src]]
            / (degree - 1.0)
            / np.maximum(np.abs(pin_pos[src] - pin_pos[dst]), self.epsilon)
        )

        ca = nl.pin2cell[src]
        cb = nl.pin2cell[dst]
        not_self = ca != cb
        ca, cb = ca[not_self], cb[not_self]
        weight = weight[not_self]
        oa = offsets[src[not_self]]
        ob = offsets[dst[not_self]]
        ua = self._unknown[ca]
        ub = self._unknown[cb]

        n_unknown = len(self._mov_index)
        diag = np.zeros(n_unknown)
        rhs = np.zeros(n_unknown)

        both = (ua >= 0) & (ub >= 0)
        only_a = (ua >= 0) & (ub < 0)
        only_b = (ua < 0) & (ub >= 0)

        np.add.at(diag, ua[both], weight[both])
        np.add.at(diag, ub[both], weight[both])
        np.add.at(rhs, ua[both], weight[both] * (ob[both] - oa[both]))
        np.add.at(rhs, ub[both], weight[both] * (oa[both] - ob[both]))

        np.add.at(diag, ua[only_a], weight[only_a])
        np.add.at(
            rhs,
            ua[only_a],
            weight[only_a] * (positions[cb[only_a]] + ob[only_a] - oa[only_a]),
        )
        np.add.at(diag, ub[only_b], weight[only_b])
        np.add.at(
            rhs,
            ub[only_b],
            weight[only_b] * (positions[ca[only_b]] + oa[only_b] - ob[only_b]),
        )

        rows = np.concatenate([ua[both], ub[both], np.arange(n_unknown)])
        cols = np.concatenate([ub[both], ua[both], np.arange(n_unknown)])
        vals = np.concatenate([-weight[both], -weight[both], diag + 1e-9])
        matrix = coo_matrix(
            (vals, (rows, cols)), shape=(n_unknown, n_unknown)
        ).tocsr()
        return matrix, rhs

    # ------------------------------------------------------------------
    def solve(
        self,
        positions: np.ndarray,
        offsets: np.ndarray,
        anchor: Optional[np.ndarray] = None,
        anchor_weight: float = 0.0,
        tol: float = 1e-7,
    ) -> np.ndarray:
        """Solve one axis; returns updated movable coordinates.

        ``anchor``/``anchor_weight`` add SimPL-style pseudo-nets pulling
        each movable cell toward a target position (used to fold the
        spreading step back into the quadratic system).
        """
        matrix, rhs = self.build(positions, offsets)
        if anchor is not None and anchor_weight > 0:
            matrix = matrix + anchor_weight * _identity_like(matrix)
            rhs = rhs + anchor_weight * anchor
        profiled("b2b_cg_solve")
        x0 = positions[self._mov_index]
        # Jacobi preconditioner.
        diag = matrix.diagonal()
        inv_diag = 1.0 / np.where(diag > 0, diag, 1.0)

        def precondition(v):
            return inv_diag * v

        from scipy.sparse.linalg import LinearOperator

        n = matrix.shape[0]
        M = LinearOperator((n, n), matvec=precondition)
        solution, info = cg(matrix, rhs, x0=x0, M=M, rtol=tol, maxiter=500)
        if info > 0:
            # CG hit maxiter: accept the (still useful) partial solve.
            pass
        return solution


def _identity_like(matrix: csr_matrix) -> csr_matrix:
    from scipy.sparse import identity

    return identity(matrix.shape[0], format="csr")
