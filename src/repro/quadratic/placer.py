"""The assembled quadratic placer (SimPL-lite loop)."""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.initializer import initial_positions
from repro.core.placer import PlacementResult
from repro.core.recorder import IterationRecord, Recorder
from repro.density import BinGrid, DensitySystem
from repro.netlist import Netlist
from repro.quadratic.b2b import B2BSystem
from repro.quadratic.spreading import grid_warp
from repro.wirelength import hpwl as hpwl_fn


class QuadraticPlacer:
    """B2B + CG + grid-warp spreading with anchor pseudo-nets.

    Loop (SimPL-style): solve the B2B system (wirelength-optimal
    positions), warp the solution toward uniform density, then re-solve
    with anchors pulling toward the warped positions; the anchor weight
    ramps so wirelength dominates early and spreading wins late.  Stops
    when density overflow falls under ``stop_overflow``.

    Returns the same :class:`PlacementResult` as XPlacer, so the full
    LG/DP flow applies unchanged.
    """

    def __init__(
        self,
        netlist: Netlist,
        max_iterations: int = 30,
        stop_overflow: float = 0.30,
        target_density: float = 0.9,
        anchor_weight0: float = 0.01,
        anchor_growth: float = 1.35,
        warp_strength: float = 0.8,
        seed: int = 0,
    ) -> None:
        self.netlist = netlist
        self.max_iterations = max_iterations
        self.stop_overflow = stop_overflow
        self.anchor_weight0 = anchor_weight0
        self.anchor_growth = anchor_growth
        self.warp_strength = warp_strength
        self.seed = seed
        self.density = DensitySystem(
            netlist,
            target_density=target_density,
            grid=BinGrid.for_netlist(netlist),
            use_fillers=False,
            rng=np.random.default_rng(seed),
        )

    # ------------------------------------------------------------------
    def run(self) -> PlacementResult:
        netlist = self.netlist
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        x, y = initial_positions(netlist, rng=rng)
        system = B2BSystem(netlist)
        mov = netlist.movable_index
        recorder = Recorder()

        anchor_weight = 0.0
        anchor_x = anchor_y = None
        overflow = 1.0
        iteration = 0
        converged = False
        for iteration in range(self.max_iterations):
            x[mov] = system.solve(
                x, netlist.pin_dx, anchor=anchor_x, anchor_weight=anchor_weight
            )
            y[mov] = system.solve(
                y, netlist.pin_dy, anchor=anchor_y, anchor_weight=anchor_weight
            )
            hw = netlist.cell_w[mov] / 2
            hh = netlist.cell_h[mov] / 2
            x[mov], y[mov] = netlist.region.clamp(x[mov], y[mov], hw, hh)

            warped_x, warped_y = grid_warp(
                netlist, x, y, strength=self.warp_strength
            )
            anchor_x = warped_x[mov]
            anchor_y = warped_y[mov]
            anchor_weight = (
                self.anchor_weight0
                if anchor_weight == 0.0
                else anchor_weight * self.anchor_growth
            )

            overflow = self._overflow(warped_x, warped_y)
            hpwl_now = hpwl_fn(netlist, x, y)
            recorder.log(
                IterationRecord(
                    iteration=iteration,
                    hpwl=hpwl_now,
                    wa=hpwl_now,
                    overflow=overflow,
                    gamma=0.0,
                    lam=anchor_weight,
                    omega=0.0,
                    grad_ratio=float("nan"),
                    density_computed=True,
                    step_length=0.0,
                )
            )
            if overflow < self.stop_overflow and iteration >= 5:
                x, y = warped_x, warped_y
                converged = True
                break
        else:
            x, y = grid_warp(netlist, x, y, strength=self.warp_strength)

        elapsed = time.perf_counter() - start
        return PlacementResult(
            x=x,
            y=y,
            hpwl=hpwl_fn(netlist, x, y),
            overflow=self._overflow(x, y),
            iterations=iteration + 1,
            gp_seconds=elapsed,
            recorder=recorder,
            converged=converged,
        )

    def _overflow(self, x: np.ndarray, y: np.ndarray) -> float:
        from repro.density import overflow_ratio

        density_map = self.density.density_map_only(x, y)
        return overflow_ratio(
            density_map,
            self.density.grid,
            self.density.target_density,
            self.density.movable_area,
        )
