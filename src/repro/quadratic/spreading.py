"""Grid-warping spreading for quadratic placement.

A quadratic solve collapses cells toward the weighted median of their
nets; spreading redistributes them.  This is the 1-D cumulative-density
warp (used in variants by POLAR / SimPL's look-ahead legalization): per
axis, bin utilisation is accumulated and coordinates are remapped with
the piecewise-linear map that equalises it, pulling cells out of dense
columns/rows while preserving relative order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.netlist import Netlist


def _axis_warp(
    coords: np.ndarray,
    weights: np.ndarray,
    lo: float,
    hi: float,
    bins: int,
    strength: float,
) -> np.ndarray:
    """Warp 1-D coordinates so weighted density becomes uniform.

    ``strength`` in [0, 1] blends between no movement and the full
    equalising map.
    """
    if coords.size == 0:
        return coords
    edges = np.linspace(lo, hi, bins + 1)
    hist, __ = np.histogram(coords, bins=edges, weights=weights)
    total = hist.sum()
    if total <= 0:
        return coords
    # Cumulative mass at the bin edges, normalised to [0, 1].
    cum = np.concatenate(([0.0], np.cumsum(hist))) / total
    # The warp maps edge k (fraction of span) to cum[k] (fraction of
    # mass): inverting equalises density.
    span = hi - lo
    warped_edges = lo + cum * span
    warped = np.interp(coords, edges, warped_edges)
    return (1.0 - strength) * coords + strength * warped


def grid_warp(
    netlist: Netlist,
    x: np.ndarray,
    y: np.ndarray,
    bins: int = 32,
    strength: float = 0.8,
    slabs: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spread movable cells by slab-wise cumulative-density warps.

    A single global 1-D warp per axis only equalises the *marginal*
    densities and stalls on 2-D hot spots; warping x within horizontal
    slabs (and y within vertical slabs) attacks the joint distribution.
    Returns full-length position arrays (fixed cells untouched).
    """
    region = netlist.region
    mov = netlist.movable_index
    weights = np.maximum(netlist.cell_area[mov], 1e-9)
    out_x = x.copy()
    out_y = y.copy()

    mx = x[mov].copy()
    my = y[mov].copy()
    # x-warp per horizontal slab.
    slab_edges = np.linspace(region.yl, region.yh, slabs + 1)
    slab_of = np.clip(
        np.searchsorted(slab_edges, my, side="right") - 1, 0, slabs - 1
    )
    for s in range(slabs):
        members = slab_of == s
        if members.any():
            mx[members] = _axis_warp(
                mx[members], weights[members], region.xl, region.xh,
                bins, strength,
            )
    # y-warp per vertical slab (using the updated x).
    slab_edges = np.linspace(region.xl, region.xh, slabs + 1)
    slab_of = np.clip(
        np.searchsorted(slab_edges, mx, side="right") - 1, 0, slabs - 1
    )
    for s in range(slabs):
        members = slab_of == s
        if members.any():
            my[members] = _axis_warp(
                my[members], weights[members], region.yl, region.yh,
                bins, strength,
            )

    out_x[mov] = mx
    out_y[mov] = my
    hw = netlist.cell_w[mov] / 2
    hh = netlist.cell_h[mov] / 2
    out_x[mov], out_y[mov] = region.clamp(out_x[mov], out_y[mov], hw, hh)
    return out_x, out_y
