"""repro.recovery — checkpoint/rollback recovery for placement flows.

PR 3 (``repro.analysis``) made numerical faults *visible*; this package
makes them *survivable*.  Three cooperating parts:

:class:`CheckpointManager`
    Snapshots the full GP-loop state — optimizer positions and momenta,
    scheduler (γ/λ) state, the gradient engine's skip/cache state, and
    the iteration counter — into a bounded in-memory ring buffer, with
    an optional atomic on-disk spill (written next to the
    :class:`~repro.runtime.cache.ResultCache`) so a crashed worker's
    retry can resume mid-run instead of restarting at iteration 0.

:class:`DivergenceMonitor`
    An :class:`~repro.core.callbacks.IterationCallback` that watches the
    per-iteration metric stream and trips on HPWL explosion (current
    HPWL > k× best-seen) or an overflow plateau; non-finite positions
    and gradients are caught separately by the loop's guard and the
    PR 3 sanitizer, both of which raise
    :class:`~repro.analysis.sanitizer.NumericalFault`.

:class:`RecoveryController`
    The glue the :class:`~repro.core.placer.XPlacer` loop drives: it
    decides when to checkpoint, answers faults and divergence trips by
    rolling back to the last good checkpoint with a mutated
    continuation (step-size cut, bounded random perturbation of movable
    cells, fresh optimizer momentum) under a bounded rollback budget,
    and degrades to "return the best-seen snapshot" once the budget is
    exhausted.  Every action is surfaced as an ``on_recovery`` callback
    event (``checkpoint`` / ``rollback`` / ``resumed`` / ``degraded``)
    which :class:`~repro.core.callbacks.QueueCallback` bridges onto the
    runtime's JSONL event stream.

Recovery is opt-in: it activates when
``PlacementParams.checkpoint_every > 0`` or when a manager is handed to
the placer (the runtime does this for ``repro batch --resume``).  With
no faults injected and no divergence, checkpointing is observation-only
— the placement trajectory is bit-identical to a run without it.
"""

from repro.recovery.checkpoint import CheckpointManager, LoopSnapshot
from repro.recovery.controller import RecoveryController
from repro.recovery.fork import ForkError, ForkSpec, fork_snapshot, prepare_fork
from repro.recovery.monitor import DivergenceMonitor

__all__ = [
    "CheckpointManager",
    "DivergenceMonitor",
    "ForkError",
    "ForkSpec",
    "LoopSnapshot",
    "RecoveryController",
    "fork_snapshot",
    "prepare_fork",
]
