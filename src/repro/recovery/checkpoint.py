"""GP-loop checkpoints: in-memory ring buffer + atomic on-disk spill.

A :class:`LoopSnapshot` captures *everything* the GP loop carries across
iterations — the optimizer state dict (positions, momenta, step
length), the scheduler state (γ, λ, HPWL history), the gradient
engine's skip-controller state and cached density gradient, and the
iteration/best-seen bookkeeping — so that a run restored from a
snapshot replays the remaining iterations bit-for-bit identically to an
uninterrupted run.

The :class:`CheckpointManager` keeps the newest ``keep`` snapshots in a
ring buffer (rollback targets) plus one pinned *best* snapshot (the
degradation fallback, judged by ``(overflow, hpwl)``), and optionally
spills the newest snapshot to disk.  The spill is two files —
``checkpoint.npz`` (every array, flattened keys) and ``checkpoint.json``
(every scalar, written last as the commit marker) — each written via
temp-file + ``os.replace`` so a reader never observes a half-written
checkpoint, mirroring the :class:`~repro.runtime.cache.ResultCache`
protocol.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: Bump when snapshot contents change shape/meaning — stale spills are
#: ignored (the run restarts from iteration 0 instead of crashing).
SNAPSHOT_SCHEMA_VERSION = 1


@dataclass
class LoopSnapshot:
    """One recoverable moment of a GP run (end of ``iteration``)."""

    iteration: int                      # last completed iteration
    lam: float
    hpwl: float
    overflow: float
    best_hpwl: float
    best_iteration: int
    optimizer: Dict[str, Any] = field(default_factory=dict)
    scheduler: Dict[str, Any] = field(default_factory=dict)
    engine: Dict[str, Any] = field(default_factory=dict)

    def quality(self) -> Tuple[float, float]:
        """Ordering key for "best" selection: spread first, then HPWL."""
        return (self.overflow, self.hpwl)


class CheckpointManager:
    """Bounded snapshot store with an optional durable spill.

    Parameters
    ----------
    keep : ring-buffer capacity (newest ``keep`` snapshots are rollback
        candidates); the best-quality snapshot is pinned separately and
        never evicted.
    spill_dir : when set, every :meth:`save` atomically (re)writes the
        newest snapshot under this directory so a fresh process can
        :meth:`load_spilled` it after a crash.
    """

    def __init__(self, keep: int = 4, spill_dir: Optional[str] = None) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = int(keep)
        self.spill_dir = os.path.abspath(spill_dir) if spill_dir else None
        self._ring: List[LoopSnapshot] = []
        self._best: Optional[LoopSnapshot] = None
        self.saved = 0                   # lifetime save count (telemetry)
        self.ring_evictions = 0          # snapshots pushed out of the ring
        self.spills = 0                  # durable writes performed
        self.spill_evictions = 0         # corrupt/stale spills removed

    # -- store -------------------------------------------------------

    def save(self, snapshot: LoopSnapshot) -> None:
        """Append to the ring (evicting the oldest) and spill to disk."""
        self._ring.append(snapshot)
        if len(self._ring) > self.keep:
            self._ring.pop(0)
            self.ring_evictions += 1
        if self._best is None or snapshot.quality() < self._best.quality():
            self._best = snapshot
        self.saved += 1
        if self.spill_dir is not None:
            self._spill(snapshot)
            self.spills += 1

    def adopt(self, snapshot: LoopSnapshot) -> None:
        """Seed the ring with an already-durable snapshot (resume path).

        Like :meth:`save` but without re-spilling: the snapshot just
        came *from* the spill, and rewriting an identical checkpoint
        would only churn the disk.
        """
        self._ring.append(snapshot)
        if len(self._ring) > self.keep:
            self._ring.pop(0)
            self.ring_evictions += 1
        if self._best is None or snapshot.quality() < self._best.quality():
            self._best = snapshot

    # -- lookup ------------------------------------------------------

    def latest(self) -> Optional[LoopSnapshot]:
        """The newest snapshot (the default rollback target)."""
        return self._ring[-1] if self._ring else None

    def best(self) -> Optional[LoopSnapshot]:
        """The best-quality snapshot ever saved (degradation target)."""
        return self._best

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._best = None

    def stats(self) -> Dict[str, Any]:
        """Ring/spill telemetry (surfaced as a ``FlowReport`` metric)."""
        return {
            "kept": len(self._ring),
            "keep": self.keep,
            "saved": self.saved,
            "ring_evictions": self.ring_evictions,
            "spills": self.spills,
            "spill_evictions": self.spill_evictions,
            "spill_bytes": spill_bytes(self.spill_dir),
        }

    # -- durable spill -----------------------------------------------

    def _spill(self, snapshot: LoopSnapshot) -> None:
        write_snapshot(self.spill_dir, snapshot)

    def load_spilled(self) -> Optional[LoopSnapshot]:
        """The spilled snapshot, or None (nothing spilled / unreadable).

        A corrupt or stale-schema spill is removed and reported as
        absent: resuming from iteration 0 is always safe, crashing on a
        bad checkpoint is not.
        """
        if self.spill_dir is None:
            return None
        try:
            return read_snapshot(self.spill_dir)
        except (KeyError, ValueError, OSError, EOFError, json.JSONDecodeError):
            self.clear_spill()
            self.spill_evictions += 1
            return None

    def clear_spill(self) -> None:
        """Remove the on-disk spill (called after a successful run)."""
        if self.spill_dir is not None:
            shutil.rmtree(self.spill_dir, ignore_errors=True)


# ----------------------------------------------------------------------
# Durable spill I/O, shared between the manager and the fork machinery
# (repro.recovery.fork reads a parent spill and writes a perturbed child
# spill without a live manager for either side).


def write_snapshot(spill_dir: str, snapshot: LoopSnapshot) -> None:
    """Atomically (re)write ``spill_dir``'s durable checkpoint pair."""
    os.makedirs(spill_dir, exist_ok=True)
    arrays, scalars = _flatten_snapshot(snapshot)
    _write_atomic(
        os.path.join(spill_dir, "checkpoint.npz"),
        lambda path: _save_npz(path, arrays),
    )
    payload = {"schema": SNAPSHOT_SCHEMA_VERSION, "scalars": scalars}
    _write_atomic(
        os.path.join(spill_dir, "checkpoint.json"),
        lambda path: _dump_json(path, payload),
    )


def read_snapshot(spill_dir: str) -> Optional[LoopSnapshot]:
    """Read ``spill_dir``'s spilled snapshot; None when nothing spilled.

    Unlike :meth:`CheckpointManager.load_spilled` this *raises* on a
    corrupt or stale spill instead of evicting it — callers that do not
    own the spill (fork preparation) must not destroy it.
    """
    meta_path = os.path.join(spill_dir, "checkpoint.json")
    data_path = os.path.join(spill_dir, "checkpoint.npz")
    if not (os.path.isfile(meta_path) and os.path.isfile(data_path)):
        return None
    with open(meta_path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError("stale checkpoint schema")
    with np.load(data_path) as npz:
        arrays = {key: npz[key] for key in npz.files}
    return _unflatten_snapshot(arrays, payload["scalars"])


def spill_bytes(spill_dir: Optional[str]) -> int:
    """Bytes currently on disk under ``spill_dir`` (0 when absent)."""
    if not spill_dir or not os.path.isdir(spill_dir):
        return 0
    total = 0
    for name in os.listdir(spill_dir):
        path = os.path.join(spill_dir, name)
        if os.path.isfile(path):
            total += os.path.getsize(path)
    return total


# ----------------------------------------------------------------------
# Snapshot (de)serialization: arrays → npz under "section/key" names,
# scalars → a JSON tree.  None is JSON-native; arrays never collide with
# scalars because each leaf goes to exactly one side.

_SECTIONS = ("optimizer", "scheduler", "engine")


def _flatten_snapshot(
    snapshot: LoopSnapshot,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, Any] = {
        "iteration": int(snapshot.iteration),
        "lam": float(snapshot.lam),
        "hpwl": float(snapshot.hpwl),
        "overflow": float(snapshot.overflow),
        "best_hpwl": float(snapshot.best_hpwl),
        "best_iteration": int(snapshot.best_iteration),
    }
    for section in _SECTIONS:
        tree: Dict[str, Any] = {}
        for key, value in getattr(snapshot, section).items():
            if isinstance(value, np.ndarray):
                arrays[f"{section}/{key}"] = value
            elif isinstance(value, (np.floating, np.integer, np.bool_)):
                tree[key] = value.item()
            else:
                tree[key] = value
        scalars[section] = tree
    return arrays, scalars


def _unflatten_snapshot(
    arrays: Dict[str, np.ndarray], scalars: Dict[str, Any]
) -> LoopSnapshot:
    sections: Dict[str, Dict[str, Any]] = {
        section: dict(scalars.get(section) or {}) for section in _SECTIONS
    }
    for name, value in arrays.items():
        section, _, key = name.partition("/")
        if section not in sections:
            raise ValueError(f"unknown checkpoint array section {section!r}")
        sections[section][key] = value
    return LoopSnapshot(
        iteration=int(scalars["iteration"]),
        lam=float(scalars["lam"]),
        hpwl=float(scalars["hpwl"]),
        overflow=float(scalars["overflow"]),
        best_hpwl=float(scalars["best_hpwl"]),
        best_iteration=int(scalars["best_iteration"]),
        optimizer=sections["optimizer"],
        scheduler=sections["scheduler"],
        engine=sections["engine"],
    )


def _write_atomic(path: str, writer) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    os.close(fd)
    try:
        writer(tmp)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _dump_json(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True)


def _save_npz(path: str, arrays: Dict[str, np.ndarray]) -> None:
    # Save through a handle (np.savez(path) appends ".npz"); the handle
    # must be closed deterministically, not left to the GC.
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
