"""RecoveryController: the self-healing policy the GP loop drives.

The :class:`~repro.core.placer.XPlacer` loop stays in charge of *when*
things happen (it calls :meth:`maybe_resume` before the first iteration,
:meth:`observe`/:meth:`checkpoint` at the end of each one, and
:meth:`rollback`/:meth:`degrade` when a fault or divergence trip needs
answering); this controller owns *what* happens — which snapshot to
restore, how to mutate the continuation so the retry does not walk
straight back into the same divergence, and when to give up.

The mutated continuation after a rollback is the restart recipe from the
escaping-local-optima literature: restore the last good snapshot, add a
bounded uniform perturbation to the movable cells (fillers are left
alone — they re-spread on their own), drop the optimizer's momentum
history, and cut the step length, the cut compounding with each
successive rollback.  The perturbation RNG is seeded from
``(seed, rollback count, snapshot iteration)`` so recovery trajectories
are as reproducible as fault-free ones.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.core.callbacks import CallbackList, RecoveryEvent
from repro.core.params import PlacementParams
from repro.recovery.checkpoint import CheckpointManager, LoopSnapshot
from repro.recovery.monitor import DivergenceMonitor

#: Namespaces the perturbation RNG seed so it can never collide with the
#: placer's own ``default_rng(seed)`` stream.
_PERTURB_SEED_TAG = 0x7EC0

#: Checkpoint cadence used when recovery was armed by a spill directory
#: (runtime resume support) without the user choosing ``checkpoint_every``.
DEFAULT_CHECKPOINT_EVERY = 25


class RecoveryController:
    """Checkpoint cadence + rollback/degrade policy for one GP run."""

    def __init__(
        self,
        params: PlacementParams,
        manager: CheckpointManager,
        events: CallbackList,
        design: str,
        bin_size: float,
        num_movable: int,
        every: Optional[int] = None,
    ) -> None:
        self.params = params
        self.manager = manager
        self.events = events
        self.design = design
        self.bin_size = float(bin_size)
        self.num_movable = int(num_movable)
        self.monitor = DivergenceMonitor(
            hpwl_factor=params.divergence_hpwl_factor,
            plateau_window=params.divergence_plateau_window,
        )
        # ``every`` overrides ``params.checkpoint_every`` — the placer
        # substitutes DEFAULT_CHECKPOINT_EVERY when recovery was armed
        # by a spill directory with no explicit cadence.
        if every is None:
            every = params.checkpoint_every
        self.every = max(1, int(every))
        self.rollbacks = 0
        self.degraded = False
        self.resumed_from: Optional[int] = None

    # -- derived telemetry -------------------------------------------

    @property
    def checkpoints(self) -> int:
        """Snapshots saved this run (resume adoption not counted)."""
        return self.manager.saved

    @property
    def best_hpwl(self) -> float:
        return self.monitor.best_hpwl

    @property
    def best_iteration(self) -> int:
        return self.monitor.best_iteration

    # -- resume -------------------------------------------------------

    def maybe_resume(self, optimizer: Any, scheduler: Any, engine: Any) -> int:
        """Restore a spilled checkpoint if one exists.

        Returns the iteration the loop should *start* at: one past the
        snapshot's, or 0 when there is nothing (valid) to resume from.
        The adopted snapshot also seeds the ring so the resumed run has
        an immediate rollback target.
        """
        snap = self.manager.load_spilled()
        if snap is None:
            return 0
        self._restore(snap, optimizer, scheduler, engine)
        self.manager.adopt(snap)
        self.resumed_from = snap.iteration
        self._emit(
            "resumed",
            iteration=snap.iteration + 1,
            snapshot_iteration=snap.iteration,
            reason=f"spilled checkpoint at iteration {snap.iteration}",
        )
        return snap.iteration + 1

    # -- steady state -------------------------------------------------

    def observe(self, iteration: int, hpwl: float, overflow: float) -> Optional[str]:
        """Feed one iteration's metrics; returns a divergence trip reason."""
        if self.degraded:
            return None
        return self.monitor.feed(iteration, hpwl, overflow)

    def should_checkpoint(self, iteration: int) -> bool:
        return iteration % self.every == 0

    def checkpoint(
        self,
        iteration: int,
        lam: float,
        hpwl: float,
        overflow: float,
        optimizer: Any,
        scheduler: Any,
        engine: Any,
    ) -> None:
        """Snapshot end-of-iteration state (everything the loop carries)."""
        best_hpwl = self.monitor.best_hpwl
        snap = LoopSnapshot(
            iteration=int(iteration),
            lam=float(lam),
            hpwl=float(hpwl),
            overflow=float(overflow),
            best_hpwl=best_hpwl if math.isfinite(best_hpwl) else float(hpwl),
            best_iteration=int(self.monitor.best_iteration),
            optimizer=optimizer.state_dict(),
            scheduler=scheduler.state_dict(),
            engine=engine.state_dict(),
        )
        self.manager.save(snap)
        self._emit(
            "checkpoint",
            iteration=iteration,
            snapshot_iteration=iteration,
            reason=f"cadence ({self.every})",
        )

    # -- fault response -----------------------------------------------

    def rollback(
        self,
        reason: str,
        iteration: int,
        optimizer: Any,
        scheduler: Any,
        engine: Any,
        clamp: Any,
    ) -> Optional[int]:
        """Restore the last checkpoint with a mutated continuation.

        Returns the iteration to continue from, or None when the
        rollback budget is exhausted or no snapshot exists (the caller
        then degrades or re-raises).
        """
        if self.rollbacks >= self.params.rollback_budget:
            return None
        snap = self.manager.latest()
        if snap is None:
            return None
        self.rollbacks += 1
        self._restore(snap, optimizer, scheduler, engine)
        self._perturb(snap, optimizer, clamp)
        self._emit(
            "rollback",
            iteration=iteration,
            snapshot_iteration=snap.iteration,
            reason=reason,
        )
        return snap.iteration + 1

    def degrade(
        self,
        reason: str,
        iteration: int,
        optimizer: Any,
        scheduler: Any,
        engine: Any,
    ) -> bool:
        """Budget exhausted: fall back to the best-seen snapshot.

        Restores the best snapshot into the live objects and tells the
        caller to end the run with it (True), or reports that nothing
        can be restored (False) — in which case a fault must propagate.
        """
        snap = self.manager.best()
        if snap is None:
            return False
        self._restore(snap, optimizer, scheduler, engine)
        self.degraded = True
        self._emit(
            "degraded",
            iteration=iteration,
            snapshot_iteration=snap.iteration,
            reason=reason,
        )
        return True

    # -- internals ----------------------------------------------------

    def _restore(
        self, snap: LoopSnapshot, optimizer: Any, scheduler: Any, engine: Any
    ) -> None:
        optimizer.load_state_dict(snap.optimizer)
        scheduler.load_state_dict(snap.scheduler)
        engine.load_state_dict(snap.engine)
        self.monitor.rewind(snap.best_hpwl, snap.best_iteration, snap.iteration)

    def _perturb(self, snap: LoopSnapshot, optimizer: Any, clamp: Any) -> None:
        """Mutate the restored continuation so the retry takes a new path.

        Movable cells get a bounded uniform jitter (deterministic in
        ``(seed, rollback count, snapshot iteration)``), momentum is
        dropped, and the step length is cut — compounding per rollback,
        so each retry is more cautious than the last.
        """
        params = self.params
        n = self.num_movable
        if params.rollback_perturb > 0.0 and n > 0:
            rng = np.random.default_rng(
                [params.seed, _PERTURB_SEED_TAG, self.rollbacks, snap.iteration]
            )
            radius = params.rollback_perturb * self.bin_size
            sx, sy = optimizer.solution
            sx[:n] += rng.uniform(-radius, radius, size=n)
            sy[:n] += rng.uniform(-radius, radius, size=n)
        optimizer.reset_momentum()
        optimizer.scale_step(params.rollback_step_cut**self.rollbacks)
        optimizer.clamp(clamp)

    def _emit(
        self, action: str, iteration: int, snapshot_iteration: int, reason: str
    ) -> None:
        self.events.on_recovery(
            RecoveryEvent(
                design=self.design,
                action=action,
                iteration=int(iteration),
                snapshot_iteration=int(snapshot_iteration),
                reason=reason,
                rollbacks=self.rollbacks,
            )
        )
