"""Checkpoint forking: clone a spilled GP snapshot into a new trajectory.

A *fork* turns one placement run's durable checkpoint into the starting
state of another run.  The exploration layer (:mod:`repro.explore`) uses
two flavours:

identity fork
    An exact clone — the child resumes the parent's trajectory
    bit-for-bit, as if the parent's ``max_iterations`` had simply been
    larger.  This is how cohort survivors continue across
    synchronization rounds.

perturbed fork
    A bounded mutation of the clone: uniform position jitter on the
    movable cells (in bin units, mirroring the rollback perturbation of
    :class:`~repro.recovery.controller.RecoveryController`), an optional
    density-weight re-annealing (λ scaled down to re-open the density
    schedule), and optionally fresh optimizer momentum.  All randomness
    comes from a :class:`numpy.random.Generator` seeded by the fork
    spec, so the same spec always produces the same child state — the
    spec joins the job content hash, which keys the result cache.

Both flavours are *prepared* on the worker side by
:func:`prepare_fork`: read the parent's spill, mutate, write the child's
spill, and let the ordinary resume machinery
(:meth:`~repro.recovery.controller.RecoveryController.maybe_resume`)
pick it up.  This keeps fork jobs self-contained and retry-safe — a
crashed fork attempt re-prepares from the (immutable) parent spill.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.recovery.checkpoint import (
    LoopSnapshot,
    read_snapshot,
    write_snapshot,
)

#: Seed-stream tag separating fork jitter from every other consumer of
#: the job seed (rollback perturbation uses 0x7EC0).
_FORK_SEED_TAG = 0xF04C


class ForkError(RuntimeError):
    """A fork could not be prepared (missing/stale parent checkpoint)."""


@dataclass(frozen=True)
class ForkSpec:
    """Everything that determines a forked trajectory.

    ``parent`` is the parent job's content hash (locating its spill
    under the shared checkpoint root); ``iteration`` is the snapshot
    iteration the fork expects — a mismatch means the spill is stale and
    the fork must fail loudly rather than silently continue from the
    wrong state.  ``jitter`` is the uniform position-jitter radius in
    bin units; ``lambda_scale`` multiplies the snapshot's density weight
    λ; ``fresh_momentum`` restarts the Nesterov momentum sequence.
    """

    parent: str
    iteration: int
    seed: int
    jitter: float = 0.0
    lambda_scale: float = 1.0
    fresh_momentum: bool = False

    def __post_init__(self) -> None:
        if not self.parent:
            raise ValueError("fork parent hash must be set")
        if self.iteration < 0:
            raise ValueError("fork iteration must be >= 0")
        if self.jitter < 0.0:
            raise ValueError("fork jitter must be >= 0")
        if self.lambda_scale <= 0.0:
            raise ValueError("fork lambda_scale must be > 0")

    @property
    def is_identity(self) -> bool:
        """True when the child replays the parent bit-for-bit."""
        return (
            self.jitter == 0.0
            and self.lambda_scale == 1.0
            and not self.fresh_momentum
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parent": self.parent,
            "iteration": int(self.iteration),
            "seed": int(self.seed),
            "jitter": float(self.jitter),
            "lambda_scale": float(self.lambda_scale),
            "fresh_momentum": bool(self.fresh_momentum),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ForkSpec":
        return cls(
            parent=data["parent"],
            iteration=int(data["iteration"]),
            seed=int(data["seed"]),
            jitter=float(data.get("jitter", 0.0)),
            lambda_scale=float(data.get("lambda_scale", 1.0)),
            fresh_momentum=bool(data.get("fresh_momentum", False)),
        )


def fork_snapshot(
    snap: LoopSnapshot,
    spec: ForkSpec,
    num_movable: int,
    bin_size: float,
    region: Optional[Any] = None,
) -> LoopSnapshot:
    """A deep-copied snapshot with the spec's perturbation applied.

    An identity spec returns an exact clone.  Jitter touches only the
    first ``num_movable`` entries of the optimizer arrays (fillers keep
    their positions) and is clipped to the die ``region`` when given —
    the GP loop's own clamp projects onto per-cell bounds on the first
    step, so a plain box clip here is sufficient.
    """
    child = LoopSnapshot(
        iteration=snap.iteration,
        lam=snap.lam,
        hpwl=snap.hpwl,
        overflow=snap.overflow,
        best_hpwl=snap.best_hpwl,
        best_iteration=snap.best_iteration,
        optimizer=copy.deepcopy(snap.optimizer),
        scheduler=copy.deepcopy(snap.scheduler),
        engine=copy.deepcopy(snap.engine),
    )
    if spec.is_identity:
        return child

    opt = child.optimizer
    n = min(int(num_movable), len(opt.get("ux", ())))
    if spec.jitter > 0.0 and n > 0:
        rng = np.random.default_rng([spec.seed, _FORK_SEED_TAG, snap.iteration])
        radius = spec.jitter * float(bin_size)
        dx = rng.uniform(-radius, radius, size=n)
        dy = rng.uniform(-radius, radius, size=n)
        opt["ux"][:n] += dx
        opt["uy"][:n] += dy
        if not spec.fresh_momentum:
            # Shift the lookahead points by the same offset so momentum
            # still points along the parent's descent direction.
            opt["vx"][:n] += dx
            opt["vy"][:n] += dy
        if region is not None:
            for key, lo, hi in (
                ("ux", region.xl, region.xh),
                ("uy", region.yl, region.yh),
                ("vx", region.xl, region.xh),
                ("vy", region.yl, region.yh),
            ):
                np.clip(opt[key], lo, hi, out=opt[key])
    if spec.fresh_momentum:
        opt["a"] = 1.0
        opt["vx"] = opt["ux"].copy()
        opt["vy"] = opt["uy"].copy()
        for key in ("prev_vx", "prev_vy", "prev_gx", "prev_gy"):
            opt.pop(key, None)
    if spec.lambda_scale != 1.0:
        lam = child.scheduler.get("lam")
        if lam is not None:
            new_lam = float(lam) * spec.lambda_scale
            child.scheduler["lam"] = new_lam
            child.lam = new_lam
    return child


def prepare_fork(
    parent_dir: str,
    child_dir: str,
    spec: ForkSpec,
    num_movable: int,
    bin_size: float,
    region: Optional[Any] = None,
) -> LoopSnapshot:
    """Materialize a fork: parent spill → perturbed child spill.

    Reads the parent's durable checkpoint (never mutating it), applies
    the spec, atomically writes the child's spill, and returns the
    child snapshot.  Raises :class:`ForkError` when the parent spill is
    absent, unreadable, or at a different iteration than the spec
    expects.
    """
    try:
        snap = read_snapshot(parent_dir)
    except Exception as err:
        raise ForkError(
            f"unreadable parent checkpoint under {parent_dir}: {err}"
        ) from err
    if snap is None:
        raise ForkError(f"no parent checkpoint under {parent_dir}")
    if snap.iteration != spec.iteration:
        raise ForkError(
            f"stale parent checkpoint: snapshot is at iteration "
            f"{snap.iteration}, fork expects {spec.iteration}"
        )
    child = fork_snapshot(snap, spec, num_movable, bin_size, region)
    write_snapshot(child_dir, child)
    return child
