"""Divergence detection over the GP loop's metric stream.

Analytical placers are known to diverge — the density penalty ramps
faster than the optimizer can follow and HPWL explodes — and the
cheapest fix is detecting it early and restarting from a perturbed good
state (DG-RePlAce builds the check into its Nesterov loop; *Escaping
Local Optima in Global Placement* shows restart-with-perturbation beats
both plain restarts and pressing on).  The :class:`DivergenceMonitor`
is the detection half: it watches ``(iteration, hpwl, overflow)``
triples and trips on

* **HPWL explosion** — current HPWL exceeds ``hpwl_factor`` × the
  best (minimum) HPWL seen this run.  The factor defaults high (50×)
  because HPWL legitimately *grows* several-fold while cells spread
  from the clustered initial placement; genuine divergence overshoots
  by orders of magnitude, not a handful.
* **Overflow plateau** — the density overflow has not improved for
  ``plateau_window`` iterations while still above ``plateau_overflow``
  (0 disables; the GP schedule stalls legitimately near convergence, so
  the plateau check only fires while the placement is still congested).

Non-finite positions/gradients are *not* this monitor's job: the loop
guard and the PR 3 sanitizer raise
:class:`~repro.analysis.sanitizer.NumericalFault` for those, and the
:class:`~repro.recovery.controller.RecoveryController` funnels both
signals into the same rollback path.

The monitor is also a well-behaved
:class:`~repro.core.callbacks.IterationCallback` — attach one to any GP
loop for detection-only auditing; :meth:`feed` returns the trip reason
so embedders (the recovery controller) can poll instead of subclassing.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.callbacks import IterationCallback


class DivergenceMonitor(IterationCallback):
    """Trips on HPWL explosion or overflow plateau; tracks best-seen."""

    def __init__(
        self,
        hpwl_factor: float = 50.0,
        plateau_window: int = 0,
        plateau_overflow: float = 0.25,
    ) -> None:
        if hpwl_factor <= 1.0:
            raise ValueError("hpwl_factor must be > 1")
        if plateau_window < 0:
            raise ValueError("plateau_window must be >= 0")
        self.hpwl_factor = float(hpwl_factor)
        self.plateau_window = int(plateau_window)
        self.plateau_overflow = float(plateau_overflow)
        self.best_hpwl = math.inf
        self.best_iteration = -1
        self.best_overflow = math.inf
        self._overflow_improved_at = -1
        self.reason: Optional[str] = None

    # -- IterationCallback face --------------------------------------

    def on_iteration(self, record) -> None:
        self.feed(record.iteration, record.hpwl, record.overflow)

    # -- polling face ------------------------------------------------

    @property
    def tripped(self) -> bool:
        return self.reason is not None

    def feed(self, iteration: int, hpwl: float, overflow: float) -> Optional[str]:
        """Observe one iteration; returns the trip reason, or None.

        Best-seen bookkeeping happens *before* the explosion check so a
        single good iteration never trips against itself.
        """
        if math.isfinite(hpwl) and hpwl < self.best_hpwl:
            self.best_hpwl = hpwl
            self.best_iteration = iteration
        if math.isfinite(overflow) and overflow < self.best_overflow:
            self.best_overflow = overflow
            self._overflow_improved_at = iteration
        reason = self._judge(iteration, hpwl, overflow)
        if reason is not None:
            self.reason = reason
        return reason

    def _judge(self, iteration: int, hpwl: float, overflow: float) -> Optional[str]:
        if not math.isfinite(hpwl):
            return "non-finite-hpwl"
        if (
            math.isfinite(self.best_hpwl)
            and hpwl > self.hpwl_factor * self.best_hpwl
        ):
            return (
                f"hpwl-explosion: {hpwl:.4g} > {self.hpwl_factor:g} x "
                f"best {self.best_hpwl:.4g} (iteration {self.best_iteration})"
            )
        if (
            self.plateau_window > 0
            and overflow > self.plateau_overflow
            and self._overflow_improved_at >= 0
            and iteration - self._overflow_improved_at >= self.plateau_window
        ):
            return (
                f"overflow-plateau: no improvement below "
                f"{self.best_overflow:.4f} for {self.plateau_window} "
                f"iterations (overflow {overflow:.4f})"
            )
        return None

    # -- rollback cooperation ----------------------------------------

    def rewind(
        self, best_hpwl: float, best_iteration: int, iteration: int
    ) -> None:
        """Reset to a snapshot's view of history after a rollback.

        The plateau clock restarts at the rollback point — the replayed
        iterations should get a full window before re-tripping.
        """
        self.best_hpwl = float(best_hpwl)
        self.best_iteration = int(best_iteration)
        self.best_overflow = math.inf
        self._overflow_improved_at = int(iteration)
        self.reason = None
