"""Global routing substrate for routability evaluation.

The ISPD-2015 table of the paper scores placements by *top5 overflow*:
the average overflow of the 5 % most congested global-routing g-cells,
as reported by the NCTUgr router embedded in NTUplace4dr.  This package
provides the equivalent evaluator: a g-cell grid with edge capacities,
RSMT-style net decomposition, congestion-aware L/Z pattern routing with
a rip-up-and-reroute pass, and the overflow statistics.
"""

from repro.route.grid import RoutingGrid
from repro.route.steiner import decompose_net
from repro.route.router import GlobalRouter, RoutingResult
from repro.route.driven import (
    RoutabilityDrivenPlacer,
    RoutabilityResult,
    netlist_with_sizes,
)

__all__ = [
    "RoutingGrid",
    "decompose_net",
    "GlobalRouter",
    "RoutingResult",
    "RoutabilityDrivenPlacer",
    "RoutabilityResult",
    "netlist_with_sizes",
]
