"""Routability-driven placement (the paper's stated future work).

Classic inflation loop (Ripple / EhPlacer style): place, globally route,
measure per-g-cell congestion, virtually inflate the cells sitting in
congested g-cells (which makes the density system push them apart), and
re-place.  The loop keeps the best iterate by top5 overflow.

The inflation is *virtual*: only the density system sees the inflated
widths; HPWL, legalization and final output use the real cell sizes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import PlacementParams, XPlacer
from repro.netlist import Netlist
from repro.route.router import GlobalRouter, RoutingResult


def netlist_with_sizes(
    netlist: Netlist, cell_w: np.ndarray, cell_h: Optional[np.ndarray] = None
) -> Netlist:
    """A copy of ``netlist`` with overridden cell sizes (same connectivity)."""
    return Netlist(
        cell_name=netlist.cell_name,
        cell_w=np.asarray(cell_w, dtype=np.float64),
        cell_h=netlist.cell_h if cell_h is None else np.asarray(cell_h),
        movable=netlist.movable,
        fixed_x=netlist.fixed_x.copy(),
        fixed_y=netlist.fixed_y.copy(),
        pin2cell=netlist.pin2cell,
        pin_dx=netlist.pin_dx,
        pin_dy=netlist.pin_dy,
        pin2net=netlist.pin2net,
        net_start=netlist.net_start,
        net_name=netlist.net_name,
        net_weight=netlist.net_weight,
        region=netlist.region,
        name=netlist.name,
        fences=netlist.fences,
        cell_fence=netlist.cell_fence,
    )


@dataclass
class RoutabilityRound:
    """Metrics of one place-route-inflate round."""

    round_index: int
    hpwl: float
    top5_overflow: float
    total_overflow: float
    inflated_cells: int
    max_inflation: float


@dataclass
class RoutabilityResult:
    """Output of the routability-driven loop."""

    x: np.ndarray
    y: np.ndarray
    hpwl: float
    top5_overflow: float
    rounds: List[RoutabilityRound]
    best_round: int


class RoutabilityDrivenPlacer:
    """Iterative congestion-driven global placement.

    Parameters
    ----------
    inflation_gain : how aggressively width grows with congestion
        (width *= 1 + gain·max(congestion − 1, 0) per round).
    max_inflation : per-cell cumulative width cap, in multiples of the
        original width.
    """

    def __init__(
        self,
        netlist: Netlist,
        params: Optional[PlacementParams] = None,
        rounds: int = 3,
        inflation_gain: float = 0.4,
        max_inflation: float = 2.5,
        route_grid_m: int = 32,
    ) -> None:
        self.netlist = netlist
        self.params = params or PlacementParams()
        self.rounds = rounds
        self.inflation_gain = inflation_gain
        self.max_inflation = max_inflation
        self.route_grid_m = route_grid_m

    # ------------------------------------------------------------------
    def run(self) -> RoutabilityResult:
        netlist = self.netlist
        inflation = np.ones(netlist.num_cells)
        history: List[RoutabilityRound] = []
        best = None
        best_metric = np.inf

        for round_index in range(self.rounds):
            inflated = netlist_with_sizes(
                netlist, netlist.cell_w * inflation
            )
            params = dataclasses.replace(self.params, seed=self.params.seed)
            gp = XPlacer(inflated, params).run()

            # Evaluate with the *real* netlist (true HPWL, true routing).
            router = GlobalRouter(netlist, grid_m=self.route_grid_m)
            routing = router.route(gp.x, gp.y)

            from repro.wirelength import hpwl as hpwl_fn

            true_hpwl = hpwl_fn(netlist, gp.x, gp.y)
            congestion = self._cell_congestion(routing, gp.x, gp.y)
            new_inflation = self._next_inflation(inflation, congestion)
            inflated_count = int(np.count_nonzero(new_inflation > inflation + 1e-12))

            history.append(
                RoutabilityRound(
                    round_index=round_index,
                    hpwl=true_hpwl,
                    top5_overflow=routing.top5_overflow,
                    total_overflow=routing.total_overflow,
                    inflated_cells=inflated_count,
                    max_inflation=float(new_inflation.max()),
                )
            )
            # Best iterate: primarily routability, tie-broken by HPWL.
            metric = routing.top5_overflow * 1e12 + true_hpwl
            if metric < best_metric:
                best_metric = metric
                best = (gp.x.copy(), gp.y.copy(), true_hpwl,
                        routing.top5_overflow, round_index)
            if routing.total_overflow == 0.0:
                break
            inflation = new_inflation

        assert best is not None
        x, y, hpwl_value, top5, best_round = best
        return RoutabilityResult(
            x=x,
            y=y,
            hpwl=hpwl_value,
            top5_overflow=top5,
            rounds=history,
            best_round=best_round,
        )

    # ------------------------------------------------------------------
    def _next_inflation(
        self, inflation: np.ndarray, congestion: np.ndarray
    ) -> np.ndarray:
        """Grow only hotspot cells, within the whitespace budget.

        Inflation targets cells above the 90th congestion percentile
        (indiscriminate inflation just raises utilisation and makes
        everything worse), and the total inflated area is capped so the
        placement stays density-feasible.
        """
        netlist = self.netlist
        movable = netlist.movable
        hot = congestion[movable]
        threshold = max(1.0, float(np.quantile(hot, 0.9)))
        excess = np.clip(congestion - threshold, 0.0, None)
        growth = 1.0 + self.inflation_gain * excess
        growth[~movable] = 1.0
        new_inflation = np.minimum(inflation * growth, self.max_inflation)

        # Whitespace budget: Σ inflated area ≤ 95 % of target · free area.
        fixed_area = float(np.sum(netlist.cell_area[~movable]))
        free_area = max(netlist.region.area - fixed_area, 1e-9)
        budget = 0.95 * self.params.target_density * free_area
        area = netlist.cell_area[movable]
        inflated_area = float(np.sum(area * new_inflation[movable]))
        if inflated_area > budget:
            base_area = float(np.sum(area))
            headroom = max(budget - base_area, 0.0)
            added = inflated_area - base_area
            scale = headroom / added if added > 0 else 0.0
            new_inflation = 1.0 + (new_inflation - 1.0) * scale
        return new_inflation

    def _cell_congestion(
        self, routing: RoutingResult, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Per-cell congestion ratio sampled from the routed overflow map.

        Ratio 1.0 means the cell's g-cell is exactly at capacity; > 1
        means overflowed (inflation kicks in above 1).
        """
        grid = routing.grid
        over = grid.overflow_map()
        capacity = 0.5 * (grid.h_capacity + grid.v_capacity)
        ratio_map = 1.0 + over / max(capacity, 1e-9)
        i, j = grid.gcell_of(x, y)
        ratio = ratio_map[i, j]
        ratio[~self.netlist.movable] = 0.0
        return ratio
