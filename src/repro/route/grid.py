"""G-cell grid with horizontal/vertical edge capacities and demand."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.netlist import PlacementRegion


class RoutingGrid:
    """Uniform g-cell grid over the die.

    Demand is tracked on g-cell *edges*: ``h_demand[i, j]`` is the usage
    of the edge from g-cell (i, j) to (i+1, j) (a horizontal wire), and
    ``v_demand[i, j]`` the edge to (i, j+1).  Capacities default to a
    uniform track count per edge.
    """

    def __init__(
        self,
        region: PlacementRegion,
        m: int = 32,
        h_capacity: float = 10.0,
        v_capacity: float = 10.0,
    ) -> None:
        if m < 2:
            raise ValueError("routing grid needs at least 2x2 g-cells")
        self.region = region
        self.m = int(m)
        self.h_capacity = float(h_capacity)
        self.v_capacity = float(v_capacity)
        self.h_demand = np.zeros((self.m - 1, self.m))
        self.v_demand = np.zeros((self.m, self.m - 1))

    @property
    def gcell_w(self) -> float:
        return self.region.width / self.m

    @property
    def gcell_h(self) -> float:
        return self.region.height / self.m

    def gcell_of(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Clamped g-cell indices of points."""
        i = np.clip(
            ((np.asarray(x) - self.region.xl) / self.gcell_w).astype(np.int64),
            0,
            self.m - 1,
        )
        j = np.clip(
            ((np.asarray(y) - self.region.yl) / self.gcell_h).astype(np.int64),
            0,
            self.m - 1,
        )
        return i, j

    def reset(self) -> None:
        self.h_demand[:] = 0.0
        self.v_demand[:] = 0.0

    # ------------------------------------------------------------------
    def add_horizontal(self, i0: int, i1: int, j: int, amount: float = 1.0) -> None:
        """Add demand along the horizontal run between columns i0..i1."""
        lo, hi = (i0, i1) if i0 <= i1 else (i1, i0)
        if hi > lo:
            self.h_demand[lo:hi, j] += amount

    def add_vertical(self, i: int, j0: int, j1: int, amount: float = 1.0) -> None:
        lo, hi = (j0, j1) if j0 <= j1 else (j1, j0)
        if hi > lo:
            self.v_demand[i, lo:hi] += amount

    def path_cost(self, i0: int, j0: int, i1: int, j1: int, corner: str) -> float:
        """Total congestion-aware cost of an L path through one corner.

        ``corner='hv'`` routes horizontal-then-vertical; ``'vh'`` the
        opposite.  Cost per edge = 1 + overflow penalty (quadratic in the
        amount the edge exceeds capacity), the usual negotiated-congestion
        shape.
        """
        if corner == "hv":
            h = self._h_cost(i0, i1, j0)
            v = self._v_cost(i1, j0, j1)
        else:
            v = self._v_cost(i0, j0, j1)
            h = self._h_cost(i0, i1, j1)
        return h + v

    def _h_cost(self, i0: int, i1: int, j: int) -> float:
        lo, hi = (i0, i1) if i0 <= i1 else (i1, i0)
        if hi == lo:
            return 0.0
        usage = self.h_demand[lo:hi, j]
        over = np.clip(usage + 1.0 - self.h_capacity, 0.0, None)
        return float((hi - lo) + np.sum(over**2))

    def _v_cost(self, i: int, j0: int, j1: int) -> float:
        lo, hi = (j0, j1) if j0 <= j1 else (j1, j0)
        if hi == lo:
            return 0.0
        usage = self.v_demand[i, lo:hi]
        over = np.clip(usage + 1.0 - self.v_capacity, 0.0, None)
        return float((hi - lo) + np.sum(over**2))

    # ------------------------------------------------------------------
    def overflow_map(self) -> np.ndarray:
        """Per-g-cell overflow: excess demand of the edges leaving each
        g-cell over their capacities (the quantity NCTUgr reports)."""
        over = np.zeros((self.m, self.m))
        h_over = np.clip(self.h_demand - self.h_capacity, 0.0, None)
        v_over = np.clip(self.v_demand - self.v_capacity, 0.0, None)
        over[: self.m - 1, :] += h_over
        over[1:, :] += h_over
        over[:, : self.m - 1] += v_over
        over[:, 1:] += v_over
        return over / 2.0

    def top_overflow(self, fraction: float = 0.05) -> float:
        """Mean overflow of the top ``fraction`` most congested g-cells."""
        flat = np.sort(self.overflow_map().ravel())[::-1]
        count = max(1, int(np.ceil(fraction * flat.size)))
        return float(flat[:count].mean())

    def total_overflow(self) -> float:
        return float(
            np.sum(np.clip(self.h_demand - self.h_capacity, 0, None))
            + np.sum(np.clip(self.v_demand - self.v_capacity, 0, None))
        )

    def wirelength(self) -> float:
        """Total routed wirelength in physical units."""
        return float(
            self.h_demand.sum() * self.gcell_w + self.v_demand.sum() * self.gcell_h
        )
