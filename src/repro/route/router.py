"""Congestion-aware pattern router with rip-up-and-reroute."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.netlist import Netlist
from repro.route.grid import RoutingGrid
from repro.route.steiner import decompose_net


@dataclass
class RoutingResult:
    """Summary of one global routing run."""

    top5_overflow: float
    total_overflow: float
    wirelength: float
    num_edges: int
    gr_seconds: float
    grid: RoutingGrid


class GlobalRouter:
    """L/Z pattern router over a :class:`RoutingGrid`.

    Each two-pin edge is routed with the cheaper of the two L shapes
    under a congestion-aware edge cost.  Optional rip-up-and-reroute
    passes re-route the edges crossing overflowed g-cells, trying Z
    shapes as well.  This is the fidelity class of routers used for
    placement routability scoring (what top5 overflow needs), not a
    detailed router.
    """

    def __init__(
        self,
        netlist: Netlist,
        grid_m: int = 32,
        capacity_per_gcell: Optional[float] = None,
        rrr_passes: int = 1,
    ) -> None:
        self.netlist = netlist
        self.rrr_passes = rrr_passes
        if capacity_per_gcell is None:
            capacity_per_gcell = self._auto_capacity(grid_m)
        self.grid = RoutingGrid(
            netlist.region,
            m=grid_m,
            h_capacity=capacity_per_gcell,
            v_capacity=capacity_per_gcell,
        )

    def _auto_capacity(self, grid_m: int) -> float:
        """Capacity so that a well-spread placement is near (just under)
        saturation — the regime where top5 overflow discriminates."""
        nl = self.netlist
        # Expected demand ≈ pins · average edge span; calibrate to ~85%.
        expected_edges = max(nl.num_pins - nl.num_nets, 1)
        avg_span = grid_m / 6.0
        total_edge_slots = 2 * grid_m * (grid_m - 1)
        return max(2.0, 0.85 * expected_edges * avg_span / total_edge_slots)

    # ------------------------------------------------------------------
    def route(self, x: np.ndarray, y: np.ndarray) -> RoutingResult:
        """Route every net for the placement ``(x, y)``."""
        start = time.perf_counter()
        grid = self.grid
        grid.reset()
        nl = self.netlist
        px, py = nl.pin_positions(x, y)
        gi, gj = grid.gcell_of(px, py)

        all_edges: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
        for e in range(nl.num_nets):
            lo, hi = nl.net_start[e], nl.net_start[e + 1]
            if hi - lo < 2:
                continue
            all_edges.extend(decompose_net(gi[lo:hi], gj[lo:hi]))

        routes = [self._route_l(edge) for edge in all_edges]

        for __ in range(self.rrr_passes):
            if grid.total_overflow() <= 0:
                break
            self._rip_up_and_reroute(all_edges, routes)

        return RoutingResult(
            top5_overflow=grid.top_overflow(0.05),
            total_overflow=grid.total_overflow(),
            wirelength=grid.wirelength(),
            num_edges=len(all_edges),
            gr_seconds=time.perf_counter() - start,
            grid=grid,
        )

    # ------------------------------------------------------------------
    def _route_l(self, edge) -> str:
        """Commit the cheaper L shape; returns which corner was used."""
        (i0, j0), (i1, j1) = edge
        grid = self.grid
        if i0 == i1:
            grid.add_vertical(i0, j0, j1)
            return "v"
        if j0 == j1:
            grid.add_horizontal(i0, i1, j0)
            return "h"
        cost_hv = grid.path_cost(i0, j0, i1, j1, "hv")
        cost_vh = grid.path_cost(i0, j0, i1, j1, "vh")
        if cost_hv <= cost_vh:
            grid.add_horizontal(i0, i1, j0)
            grid.add_vertical(i1, j0, j1)
            return "hv"
        grid.add_vertical(i0, j0, j1)
        grid.add_horizontal(i0, i1, j1)
        return "vh"

    def _unroute(self, edge, shape: str) -> None:
        (i0, j0), (i1, j1) = edge
        grid = self.grid
        if shape == "v":
            grid.add_vertical(i0, j0, j1, -1.0)
        elif shape == "h":
            grid.add_horizontal(i0, i1, j0, -1.0)
        elif shape == "hv":
            grid.add_horizontal(i0, i1, j0, -1.0)
            grid.add_vertical(i1, j0, j1, -1.0)
        elif shape == "vh":
            grid.add_vertical(i0, j0, j1, -1.0)
            grid.add_horizontal(i0, i1, j1, -1.0)
        else:  # Z shapes carry their split coordinate: "z:<k>"
            k = int(shape.split(":")[1])
            grid.add_horizontal(i0, k, j0, -1.0)
            grid.add_vertical(k, j0, j1, -1.0)
            grid.add_horizontal(k, i1, j1, -1.0)

    def _rip_up_and_reroute(self, edges, routes) -> None:
        """Reroute the edges whose current path crosses overflow."""
        grid = self.grid
        over = grid.overflow_map()
        for index, (edge, shape) in enumerate(zip(edges, routes)):
            (i0, j0), (i1, j1) = edge
            if i0 == i1 and j0 == j1:
                continue
            if not self._crosses_overflow(edge, shape, over):
                continue
            self._unroute(edge, shape)
            routes[index] = self._best_shape(edge)

    def _crosses_overflow(self, edge, shape, over) -> bool:
        (i0, j0), (i1, j1) = edge
        lo_i, hi_i = min(i0, i1), max(i0, i1)
        lo_j, hi_j = min(j0, j1), max(j0, j1)
        return bool(np.any(over[lo_i : hi_i + 1, lo_j : hi_j + 1] > 0))

    def _best_shape(self, edge) -> str:
        """Choose among both Ls and a few Z splits; commit the cheapest."""
        (i0, j0), (i1, j1) = edge
        grid = self.grid
        if i0 == i1:
            grid.add_vertical(i0, j0, j1)
            return "v"
        if j0 == j1:
            grid.add_horizontal(i0, i1, j0)
            return "h"
        options = [
            ("hv", grid.path_cost(i0, j0, i1, j1, "hv")),
            ("vh", grid.path_cost(i0, j0, i1, j1, "vh")),
        ]
        lo, hi = min(i0, i1), max(i0, i1)
        if hi - lo > 1:
            for k in np.linspace(lo + 1, hi - 1, num=min(3, hi - lo - 1)).astype(int):
                cost = (
                    grid._h_cost(i0, k, j0)
                    + grid._v_cost(int(k), j0, j1)
                    + grid._h_cost(int(k), i1, j1)
                )
                options.append((f"z:{int(k)}", cost))
        shape = min(options, key=lambda t: t[1])[0]
        if shape == "hv":
            grid.add_horizontal(i0, i1, j0)
            grid.add_vertical(i1, j0, j1)
        elif shape == "vh":
            grid.add_vertical(i0, j0, j1)
            grid.add_horizontal(i0, i1, j1)
        else:
            k = int(shape.split(":")[1])
            grid.add_horizontal(i0, k, j0)
            grid.add_vertical(k, j0, j1)
            grid.add_horizontal(k, i1, j1)
        return shape
