"""Net decomposition into two-pin segments.

Multi-pin nets are broken into two-pin edges along a rectilinear minimum
spanning tree (Prim's algorithm on Manhattan distance), the standard
FLUTE-free decomposition for congestion estimation.  Duplicate terminals
(pins in the same g-cell) collapse first.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

Point = Tuple[int, int]
Edge = Tuple[Point, Point]


def decompose_net(xs: np.ndarray, ys: np.ndarray) -> List[Edge]:
    """Two-pin edges of the Manhattan MST over terminals (g-cell coords)."""
    points = np.unique(np.stack([xs, ys], axis=1), axis=0)
    n = points.shape[0]
    if n < 2:
        return []
    if n == 2:
        return [(tuple(points[0]), tuple(points[1]))]
    # Prim's algorithm, O(n^2) — nets are small after g-cell collapsing.
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best_dist = np.abs(points[:, 0] - points[0, 0]) + np.abs(
        points[:, 1] - points[0, 1]
    )
    best_from = np.zeros(n, dtype=np.int64)
    edges: List[Edge] = []
    for __ in range(n - 1):
        candidates = np.where(~in_tree, best_dist, np.inf)
        nxt = int(np.argmin(candidates))
        edges.append((tuple(points[best_from[nxt]]), tuple(points[nxt])))
        in_tree[nxt] = True
        dist = np.abs(points[:, 0] - points[nxt, 0]) + np.abs(
            points[:, 1] - points[nxt, 1]
        )
        closer = dist < best_dist
        best_dist = np.where(closer, dist, best_dist)
        best_from = np.where(closer, nxt, best_from)
    return edges
