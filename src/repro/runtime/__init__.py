"""repro.runtime — the parallel batch-placement execution layer.

Everything below :mod:`repro.flow` runs *one* placement; this package
runs *fleets* of them.  It turns a placement into a serializable
:class:`PlacementJob` spec, schedules jobs across worker processes with
timeouts, crash retries and progress events (:class:`WorkerPool` +
:class:`EventLog`), short-circuits repeats through a content-addressed
on-disk :class:`ResultCache`, and layers selection strategies on top —
:func:`race_seeds` / :func:`sweep_params` launch N variants and keep
the best (or the first) finisher.  ``repro batch`` is the CLI face of
:func:`run_batch`.

Quickstart::

    from repro.runtime import PlacementJob, WorkerPool, ResultCache

    jobs = [PlacementJob(design="fft_1", cells=400, seed=s)
            for s in range(4)]
    pool = WorkerPool(max_workers=4, cache=ResultCache(".repro-cache"))
    results = pool.run(jobs)
    best = min((r for r in results if r.ok), key=lambda r: r.hpwl)
"""

from repro.runtime.batch import load_manifest, run_batch, summary_table
from repro.runtime.cache import ResultCache
from repro.runtime.events import (
    EVENT_KINDS,
    EventLog,
    RuntimeEvent,
    read_event_log,
)
from repro.runtime.job import (
    CACHE_SCHEMA_VERSION,
    JobResult,
    PlacementJob,
    execute_job,
    job_checkpoint_dir,
)
from repro.runtime.pool import (
    DeadlineCallback,
    JobInterruptedError,
    JobTimeoutError,
    WorkerPool,
)
from repro.runtime.race import RaceResult, race_seeds, sweep_params

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DeadlineCallback",
    "EVENT_KINDS",
    "EventLog",
    "JobInterruptedError",
    "JobResult",
    "JobTimeoutError",
    "PlacementJob",
    "RaceResult",
    "ResultCache",
    "RuntimeEvent",
    "WorkerPool",
    "execute_job",
    "job_checkpoint_dir",
    "load_manifest",
    "race_seeds",
    "read_event_log",
    "run_batch",
    "summary_table",
    "sweep_params",
]
