"""Batch driver: job manifests in, summary table out.

This is the library behind ``repro batch``.  A manifest is either a
JSON file (a list of job dicts, or ``{"jobs": [...]}``) or a JSONL file
(one job dict per line); each dict follows the
:meth:`~repro.runtime.job.PlacementJob.from_dict` schema::

    {"design": "fft_1", "cells": 400, "placer": "xplace", "seed": 1,
     "params": {"max_iterations": 200}, "timeout": 600, "retries": 1}

:func:`run_batch` wires manifest → cache → pool → events together and
returns results aligned with the input order; :func:`summary_table`
renders the human-readable per-job table the CLI prints.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.runtime.cache import ResultCache
from repro.runtime.events import EventLog
from repro.runtime.job import JobResult, PlacementJob
from repro.runtime.pool import WorkerPool


def load_manifest(path: str) -> List[PlacementJob]:
    """Parse a ``.json``/``.jsonl`` job manifest into jobs."""
    with open(path) as fh:
        text = fh.read()
    if path.endswith(".jsonl"):
        entries = [json.loads(line) for line in text.splitlines()
                   if line.strip()]
    else:
        data = json.loads(text)
        if isinstance(data, dict):
            data = data.get("jobs")
        if not isinstance(data, list):
            raise ValueError(
                f"{path}: manifest must be a JSON list of jobs or "
                f"{{\"jobs\": [...]}}"
            )
        entries = data
    if not entries:
        raise ValueError(f"{path}: manifest contains no jobs")
    jobs = []
    for i, entry in enumerate(entries):
        try:
            jobs.append(PlacementJob.from_dict(entry))
        except (ValueError, TypeError) as err:
            raise ValueError(f"{path}: job #{i}: {err}") from None
    return jobs


def run_batch(
    jobs: List[PlacementJob],
    max_workers: int = 1,
    cache_dir: Optional[str] = None,
    events: Optional[EventLog] = None,
    start_method: Optional[str] = None,
    heartbeat_every: int = 25,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    cache: Optional[ResultCache] = None,
) -> Tuple[List[JobResult], EventLog]:
    """Run a batch; returns (results in input order, the event log).

    ``checkpoint_dir`` arms GP-loop checkpoint spilling (one
    content-addressed subdirectory per job), which lets crash/timeout
    retries resume mid-run; ``resume=True`` additionally makes *first*
    attempts pick up any checkpoint a previously killed batch left
    behind (``repro batch --resume``).  Pass a ``cache`` *object* (takes
    precedence over ``cache_dir``) when the caller wants to read its
    hit/miss/eviction counters afterwards, e.g. for
    :func:`summary_table`.
    """
    if cache is None:
        cache = ResultCache(cache_dir) if cache_dir else None
    events = events if events is not None else EventLog()
    pool = WorkerPool(
        max_workers=max_workers,
        start_method=start_method,
        cache=cache,
        heartbeat_every=heartbeat_every,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    results = pool.run(jobs, events=events)
    return results, events


def summary_table(jobs: List[PlacementJob],
                  results: List[JobResult],
                  cache: Optional[ResultCache] = None,
                  supervision: Optional[Dict[str, int]] = None) -> str:
    """Fixed-width per-job table (plus a one-line totals footer).

    With a ``cache`` handle, a second footer line reports its lookup
    counters (hits / misses / evictions) for the run.  ``supervision``
    takes a supervisor counter dict (see
    :meth:`~repro.supervision.supervisor.Supervisor.counters`) and adds
    a self-healing footer — preemptions, quarantines, breaker trips and
    shed submissions — when any counter is nonzero.
    """
    headers = ("job", "design", "placer", "seed", "status", "cached",
               "hpwl", "seconds", "attempts")
    rows = [headers]
    for job, result in zip(jobs, results):
        design = job.design or os.path.basename(job.aux or "?")
        rows.append((
            job.tag or job.job_id.rsplit(":", 1)[0],
            design,
            job.placer,
            str(result.seed),
            result.status,
            "true" if result.cached else "false",
            "-" if result.hpwl is None else format(result.hpwl, ".6g"),
            format(result.seconds, ".2f"),
            str(result.attempts),
        ))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    done = sum(1 for r in results if r.ok and not r.cached)
    cached = sum(1 for r in results if r.cached)
    failed = sum(1 for r in results if r.status in ("failed", "timeout"))
    cancelled = sum(1 for r in results if r.status == "cancelled")
    footer = (f"{len(results)} jobs: {done} done, "
              f"{cached} cached: true, {failed} failed")
    interrupted = sum(1 for r in results if r.status == "interrupted")
    if cancelled:
        footer += f", {cancelled} cancelled"
    if interrupted:
        footer += f", {interrupted} interrupted"
    lines.append(footer)
    reclaimed = sum(r.seconds for r in results
                    if r.status == "cancelled")
    if reclaimed > 0:
        lines.append(
            f"reclaimed {reclaimed:.2f} core-seconds from cancelled jobs"
        )
    if cache is not None:
        stats = cache.stats()
        lines.append(
            f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
            f"{stats['evictions']} eviction(s)"
        )
    if supervision and any(supervision.values()):
        lines.append(
            f"supervision: {supervision.get('preemptions', 0)} "
            f"preemption(s), {supervision.get('quarantines', 0)} "
            f"quarantine(s), {supervision.get('breaker_trips', 0)} "
            f"breaker trip(s), {supervision.get('shed', 0)} shed "
            f"submit(s)"
        )
    return "\n".join(lines)
