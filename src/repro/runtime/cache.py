"""On-disk result cache for placement jobs.

Keyed by :meth:`PlacementJob.content_hash` — netlist digest + effective
params + placer/flow knobs + cache schema version — so a repeat of the
same job anywhere on the machine short-circuits to the stored result.

Layout (two-level fan-out to keep directories small)::

    <root>/
      <hh>/<hash>/result.json      # job spec + JobResult + FlowReport
      <hh>/<hash>/positions.npy    # float64 (2, N): stacked x, y

Writes are atomic (temp file + ``os.replace``) so concurrent pools
sharing one cache directory never observe half-written entries; only
``status == "done"`` results are stored.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Callable, Optional

import numpy as np

from repro.runtime.job import CACHE_SCHEMA_VERSION, JobResult, PlacementJob


class ResultCache:
    """Content-addressed store of finished :class:`JobResult`\\ s."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        # Per-handle telemetry (not persisted): a lookup counts as a
        # hit or a miss; corrupt entries removed count as evictions
        # (their lookups also count as misses).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        os.makedirs(self.root, exist_ok=True)

    def stats(self) -> dict:
        """Lookup counters of this cache handle (for summaries/events)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    # -- lookup ------------------------------------------------------

    def get(
        self,
        job: PlacementJob,
        on_evict: Optional[Callable[[str, str], None]] = None,
    ) -> Optional[JobResult]:
        """The stored result for ``job``, or None (miss / stale schema).

        Hits come back with ``cached=True`` and ``attempts=0``.  A
        corrupt entry (unreadable JSON, truncated positions, missing
        keys) is *evicted* — its files are unlinked so the damage cannot
        shadow the key forever — and reported through ``on_evict(key,
        reason)`` before the lookup returns a plain miss.
        """
        key = job.content_hash()
        entry = self.path_for(key)
        meta_path = os.path.join(entry, "result.json")
        pos_path = os.path.join(entry, "positions.npy")
        if not (os.path.isfile(meta_path) and os.path.isfile(pos_path)):
            self.misses += 1
            return None
        try:
            with open(meta_path) as fh:
                data = json.load(fh)
            if data.get("schema") != CACHE_SCHEMA_VERSION:
                self.misses += 1
                return None    # stale but well-formed: leave it alone
            result = JobResult.from_dict(data["result"])
            positions = np.load(pos_path)
            result.x, result.y = positions[0], positions[1]
        except (KeyError, ValueError, OSError, EOFError) as err:
            reason = f"{type(err).__name__}: {err}"
            self.evict(key)
            self.evictions += 1
            self.misses += 1
            if on_evict is not None:
                on_evict(key, reason)
            return None
        result.cached = True
        result.attempts = 0
        self.hits += 1
        return result

    def evict(self, key: str) -> None:
        """Remove one entry (by content hash) from the store."""
        shutil.rmtree(self.path_for(key), ignore_errors=True)

    # -- store -------------------------------------------------------

    def put(self, job: PlacementJob, result: JobResult) -> bool:
        """Store a finished result; returns True when written."""
        if result.status != "done" or result.cached:
            return False
        if result.x is None or result.y is None:
            return False
        entry = self.path_for(job.content_hash())
        os.makedirs(entry, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": job.content_hash(),
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        positions = np.stack([result.x, result.y])
        self._write_atomic(
            os.path.join(entry, "positions.npy"),
            # Save through a handle: np.save(path) appends ".npy".
            lambda path: _save_npy(path, positions),
        )
        self._write_atomic(
            os.path.join(entry, "result.json"),
            lambda path: _dump_json(path, payload),
        )
        return True

    @staticmethod
    def _write_atomic(path: str, writer) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        os.close(fd)
        try:
            writer(tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    # -- maintenance -------------------------------------------------

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for name in files if name == "result.json")
        return count

    def __contains__(self, job: PlacementJob) -> bool:
        return os.path.isfile(
            os.path.join(self.path_for(job.content_hash()), "result.json")
        )

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)
        os.makedirs(self.root, exist_ok=True)


def _dump_json(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)


def _save_npy(path: str, positions: "np.ndarray") -> None:
    with open(path, "wb") as fh:
        np.save(fh, positions)
