"""The runtime's progress-event stream.

Every observable moment in a batch run — a job entering the queue, a
worker picking it up, a GP-loop heartbeat, a result or a failure — is
one :class:`RuntimeEvent`.  Events are produced by the
:class:`~repro.runtime.pool.WorkerPool` (scheduling events) and by the
workers themselves (loop events, bridged from the
:class:`~repro.core.callbacks.IterationCallback` seam through a
``multiprocessing.Queue`` via
:class:`~repro.core.callbacks.QueueCallback`), and collected by an
:class:`EventLog` which keeps them in memory and optionally appends
them to a JSONL run log — the durable record a dashboard or a CI gate
tails.

Event kinds
-----------
``queued``      job accepted by the pool
``started``     a worker (or the inline executor) began the job
``loop_start``  the GP loop is about to run (from the worker)
``heartbeat``   periodic GP-iteration progress (from the worker)
``loop_stop``   the GP loop ended (from the worker)
``finished``    job completed with a result
``cached``      job short-circuited by the result cache
``retry``       worker crashed, job re-queued
``failed``      job gave up (stage error, timeout or crash) — the
                payload carries ``reason`` and ``error``
``cancelled``   job abandoned because a race was already decided
``diagnostic``  a numerical fault aborted the GP loop (from the worker)
                — the payload names the iteration, stage and op
``recovery``    the GP loop self-healed (from the worker) — the payload
                carries the ``action`` (``checkpoint`` / ``rollback`` /
                ``resumed`` / ``degraded``), the iteration, the snapshot
                iteration involved and the rollback count
``cache-evicted``  the result cache detected a corrupt entry and
                removed it (the lookup then proceeds as a miss)
``deduped``     an identical in-flight job (same content hash) already
                covers this submission; the follower resolves with the
                leader's result (service scheduler only)
``interrupted`` a shutdown signal stopped the pool before the job could
                finish — the payload says whether the job is resumable
                from its spilled checkpoint
``explore``     population-controller telemetry (from
                :mod:`repro.explore`) — the payload carries the
                ``action`` (``round`` / ``fork`` / ``cull`` / ``done``),
                the cohort round and the members involved
``preempted``   the LivenessMonitor killed a hung worker early (no
                progress within the hang timeout) and requeued the job
                with checkpoint resume — the payload carries the
                worker, the silent interval and the last iteration seen
``quarantine``  worker-health state change (service supervisor) — the
                payload carries the ``action`` (``enter`` / ``probe`` /
                ``restore`` / ``replace``), the worker and its score
``breaker``     a circuit breaker transitioned (service supervisor) —
                the payload names the breaker and the old/new states
``shed``        the brownout controller refused a submission (service
                degraded or draining) — the payload carries the state,
                priority and the Retry-After hint
``chaos``       the chaos harness injected a service fault — the
                payload names the fault kind and its target
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional

EVENT_KINDS = (
    "queued",
    "started",
    "loop_start",
    "heartbeat",
    "loop_stop",
    "finished",
    "cached",
    "retry",
    "failed",
    "cancelled",
    "diagnostic",
    "recovery",
    "cache-evicted",
    "deduped",
    "interrupted",
    "explore",
    "preempted",
    "quarantine",
    "breaker",
    "shed",
    "chaos",
)


@dataclass
class RuntimeEvent:
    """One timestamped progress event of one job."""

    kind: str
    job_id: str
    ts: float = field(default_factory=time.time)
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "job_id": self.job_id, "ts": self.ts,
                **self.payload}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RuntimeEvent":
        payload = {k: v for k, v in data.items()
                   if k not in ("kind", "job_id", "ts")}
        return cls(kind=data["kind"], job_id=data.get("job_id", "?"),
                   ts=float(data.get("ts", 0.0)), payload=payload)


class EventLog:
    """Collects :class:`RuntimeEvent`\\ s, optionally mirrored to JSONL.

    Doubles as a queue-like sink (it has :meth:`put`), so the same
    object can be handed to :class:`~repro.core.callbacks.QueueCallback`
    for in-process runs and used by the pool to route worker messages.
    Thread-safe: the pool's drain loop and inline callbacks may emit
    concurrently.
    """

    def __init__(self, path: Optional[str] = None, echo: bool = False) -> None:
        self.events: List[RuntimeEvent] = []
        self.echo = echo
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "a") if path else None
        self._lock = threading.Lock()

    # -- producing ---------------------------------------------------

    def emit(self, kind: str, job_id: str, **payload: Any) -> RuntimeEvent:
        event = RuntimeEvent(kind=kind, job_id=job_id, payload=payload)
        with self._lock:
            self.events.append(event)
            if self._fh is not None:
                self._fh.write(event.to_json() + "\n")
                self._fh.flush()
        if self.echo:
            print(f"[{event.kind}] {event.job_id} "
                  + " ".join(f"{k}={v}" for k, v in payload.items()))
        return event

    def put(self, message: Dict[str, Any]) -> None:
        """Queue-style adapter: accepts the worker/callback dict schema.

        The message must carry an ``"event"`` key (the kind); a
        ``"job_id"`` key and any further keys become the event payload.
        """
        message = dict(message)
        kind = message.pop("event")
        job_id = message.pop("job_id", "?")
        self.emit(kind, job_id, **message)

    # -- querying ----------------------------------------------------
    # Queries snapshot the list under the lock: emitters append from
    # worker-drain and HTTP threads while tests/stats iterate.

    def snapshot(self) -> List[RuntimeEvent]:
        with self._lock:
            return list(self.events)

    def of_kind(self, *kinds: str) -> List[RuntimeEvent]:
        return [e for e in self.snapshot() if e.kind in kinds]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.snapshot() if e.kind == kind)

    @property
    def failures(self) -> List[RuntimeEvent]:
        return self.of_kind("failed")

    def for_job(self, job_id: str) -> List[RuntimeEvent]:
        return [e for e in self.snapshot() if e.job_id == job_id]

    # -- lifecycle ---------------------------------------------------

    def flush(self) -> None:
        """Force the JSONL mirror to disk (no-op for in-memory logs)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)


def read_event_log(path: str) -> List[RuntimeEvent]:
    """Parse a JSONL run log back into events."""
    events: List[RuntimeEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(RuntimeEvent.from_dict(json.loads(line)))
    return events
