"""Serializable placement job specs and the per-job executor.

A :class:`PlacementJob` is everything needed to reproduce one placement
run — which design (a named benchgen recipe or a bookshelf ``.aux``
path), which engine, the full :class:`~repro.core.params.PlacementParams`
knob set, a seed, an optional custom pipeline factory, and the runtime
policy (timeout, crash retries).  It serializes to a flat JSON dict (the
manifest format of ``repro batch``) and has a stable
:meth:`~PlacementJob.content_hash` — netlist digest + params + flow
knobs — which keys the on-disk result cache.

:func:`execute_job` runs one job in the *current* process: it loads the
netlist, composes the pipeline, installs a fresh per-process
:class:`~repro.ops.profiler.KernelProfiler` (the thread-local profiler
of the parent is never inherited by workers — see
:mod:`repro.ops.profiler`), bridges GP-loop progress into the caller's
event sink, and returns a :class:`JobResult` whose
:class:`~repro.pipeline.context.FlowReport` carries a synthetic
``runtime`` stage with the kernel-launch totals, the seed and the
worker pid.  The :class:`~repro.runtime.pool.WorkerPool` calls it from
worker processes; :func:`repro.flow.run_job` calls it inline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import time
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.callbacks import IterationCallback, QueueCallback
from repro.core.params import PlacementParams
from repro.netlist import Netlist
from repro.ops.profiler import KernelProfiler, use_profiler
from repro.pipeline import FlowReport, Pipeline, PlacementContext, StageReport
from repro.wirelength import hpwl as hpwl_fn

#: Bump when the meaning of cached results changes (stage semantics,
#: metric definitions, hash inputs) — invalidates every existing entry.
#: v2: fault plans joined the hash inputs (a chaos run and a clean run
#: of the same spec are different results).
#: v3: fork specs and the final-checkpoint flag joined the hash inputs
#: (a forked continuation and a from-scratch run of the same params are
#: different results; a segment that pins its boundary state differs
#: from one that clears it).
CACHE_SCHEMA_VERSION = 3

#: Param knobs that cannot change the computed placement and therefore
#: must not contribute to the content hash (a verbose rerun of a quiet
#: job is still the same job).
_NON_SEMANTIC_PARAMS = ("verbose",)


@dataclass
class PlacementJob:
    """One schedulable placement run.

    Exactly one of ``design`` (named synthetic suite design) and ``aux``
    (bookshelf benchmark path) must be set.  ``seed`` overrides
    ``params.seed`` when given, so seed sweeps can share one params
    object.  ``pipeline`` optionally names a ``"module:function"``
    factory (called with the job, returning a
    :class:`~repro.pipeline.stage.Pipeline`) replacing the standard
    GP→LG→DP composition.  ``timeout``/``retries`` are runtime policy:
    wall-clock budget in seconds, and how many times a *crashed* worker
    is restarted (deterministic stage errors are never retried).
    """

    design: Optional[str] = None
    aux: Optional[str] = None
    cells: Optional[int] = None          # override the scaled suite size
    scale: float = 0.01                  # suite scale factor
    placer: str = "xplace"
    params: PlacementParams = field(default_factory=PlacementParams)
    seed: Optional[int] = None
    dp_passes: int = 1
    route: bool = False
    route_grid_m: int = 32
    pipeline: Optional[str] = None       # "module:function" factory
    timeout: Optional[float] = None      # seconds, None = unbounded
    retries: int = 0                     # restarts after worker crashes
    timeout_retries: int = 0             # restarts after timeouts
    faults: Optional[Dict[str, Any]] = None   # serialized FaultPlan
    tag: Optional[str] = None            # free-form label for humans
    fork: Optional[Dict[str, Any]] = None     # serialized ForkSpec
    final_checkpoint: bool = False       # pin the boundary state on stop

    def __post_init__(self) -> None:
        if (self.design is None) == (self.aux is None):
            raise ValueError("set exactly one of 'design' and 'aux'")
        if isinstance(self.params, dict):
            try:
                self.params = PlacementParams(**self.params)
            except TypeError as err:
                raise ValueError(f"bad job params: {err}") from None
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_retries < 0:
            raise ValueError("timeout_retries must be >= 0")
        if self.faults is not None and not isinstance(self.faults, dict):
            # Accept a FaultPlan object for convenience; store its dict
            # form so the job stays JSON-serializable.
            self.faults = self.faults.to_dict()
        if self.fork is not None and not isinstance(self.fork, dict):
            # Same convenience for ForkSpec objects.
            self.fork = self.fork.to_dict()
        if self.fork is not None:
            # Validate eagerly so a malformed manifest fails at parse
            # time, not inside a worker.
            self.fork_spec()
        self._hash: Optional[str] = None

    def fork_spec(self):
        """The job's :class:`~repro.recovery.fork.ForkSpec`, or None."""
        if self.fork is None:
            return None
        from repro.recovery.fork import ForkSpec

        try:
            return ForkSpec.from_dict(self.fork)
        except (KeyError, TypeError, ValueError) as err:
            raise ValueError(f"bad fork spec: {err}") from None

    def fault_plan(self):
        """The job's :class:`~repro.faults.FaultPlan`, or None."""
        if self.faults is None:
            return None
        from repro.faults import FaultPlan

        return FaultPlan.from_dict(self.faults)

    # -- identity ----------------------------------------------------

    def effective_seed(self) -> int:
        return self.params.seed if self.seed is None else self.seed

    def effective_params(self) -> PlacementParams:
        """The params actually run: ``seed`` folded in."""
        if self.seed is None:
            return self.params
        return dataclasses.replace(self.params, seed=self.seed)

    def design_digest(self) -> Dict[str, Any]:
        """What identifies the input circuit, for hashing.

        Named designs are deterministic functions of their recipe, so
        the recipe *is* the digest; file-backed designs hash the bytes
        of the ``.aux`` and every sibling file it references.
        """
        if self.design is not None:
            return {
                "kind": "benchgen",
                "design": self.design,
                "scale": self.scale,
                "cells": self.cells,
            }
        digest = hashlib.sha256()
        for path in self._bookshelf_files():
            with open(path, "rb") as fh:
                digest.update(fh.read())
        return {"kind": "bookshelf", "sha256": digest.hexdigest()}

    def _bookshelf_files(self) -> List[str]:
        """The ``.aux`` plus the files it names, in a stable order."""
        paths = [self.aux]
        base = os.path.dirname(os.path.abspath(self.aux))
        with open(self.aux) as fh:
            text = fh.read()
        for token in sorted(set(text.replace(":", " ").split())):
            candidate = os.path.join(base, token)
            if os.path.isfile(candidate):
                paths.append(candidate)
        return paths

    def content_hash(self) -> str:
        """Stable SHA-256 of everything that determines the result."""
        if self._hash is None:
            params = dataclasses.asdict(self.effective_params())
            for knob in _NON_SEMANTIC_PARAMS:
                params.pop(knob, None)
            payload = {
                "schema": CACHE_SCHEMA_VERSION,
                "design": self.design_digest(),
                "placer": self.placer,
                "params": params,
                "dp_passes": self.dp_passes,
                "route": self.route,
                "route_grid_m": self.route_grid_m if self.route else None,
                "pipeline": self.pipeline,
                # An injected fault changes the computed result, so a
                # chaos run must never be served a clean cached one.
                "faults": self.faults,
                # A fork's identity includes its parent checkpoint and
                # perturbation seed; pinning the boundary checkpoint
                # changes what the run leaves on disk, so segments with
                # and without it must not share cache entries.
                "fork": self.fork,
                "final_checkpoint": self.final_checkpoint,
            }
            canonical = json.dumps(payload, sort_keys=True,
                                   separators=(",", ":"))
            self._hash = hashlib.sha256(canonical.encode()).hexdigest()
        return self._hash

    @property
    def job_id(self) -> str:
        """Human-readable, content-stable identifier."""
        name = self.tag or self.design or os.path.basename(self.aux or "?")
        return (f"{name}:{self.placer}:s{self.effective_seed()}"
                f":{self.content_hash()[:8]}")

    # -- (de)serialization -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "design": self.design,
            "aux": self.aux,
            "cells": self.cells,
            "scale": self.scale,
            "placer": self.placer,
            "params": dataclasses.asdict(self.params),
            "seed": self.seed,
            "dp_passes": self.dp_passes,
            "route": self.route,
            "route_grid_m": self.route_grid_m,
            "pipeline": self.pipeline,
            "timeout": self.timeout,
            "retries": self.retries,
            "timeout_retries": self.timeout_retries,
            "faults": self.faults,
            "tag": self.tag,
            "fork": self.fork,
            "final_checkpoint": self.final_checkpoint or None,
        }
        return {k: v for k, v in data.items() if v is not None}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlacementJob":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown job manifest keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PlacementJob":
        return cls.from_dict(json.loads(text))

    # -- variants (racing / sweeps) ----------------------------------

    def with_seed(self, seed: int) -> "PlacementJob":
        return dataclasses.replace(self, seed=int(seed))

    def with_params(self, **overrides: Any) -> "PlacementJob":
        """Variant with some :class:`PlacementParams` knobs replaced."""
        return dataclasses.replace(
            self, params=dataclasses.replace(self.params, **overrides)
        )

    # -- execution building blocks -----------------------------------

    def load_netlist(self) -> Netlist:
        if self.aux is not None:
            from repro.bookshelf import read_bookshelf

            return read_bookshelf(self.aux)
        from repro.benchgen import make_design

        return make_design(self.design, scale=self.scale,
                           num_cells=self.cells)

    def build_pipeline(self) -> Pipeline:
        if self.pipeline:
            module_name, _, func_name = self.pipeline.partition(":")
            if not func_name:
                raise ValueError(
                    f"pipeline factory {self.pipeline!r} is not of the "
                    f"form 'module:function'"
                )
            factory: Callable[["PlacementJob"], Pipeline] = getattr(
                importlib.import_module(module_name), func_name
            )
            return factory(self)
        from repro.flow import build_standard_pipeline

        return build_standard_pipeline(
            placer=self.placer,
            dp_passes=self.dp_passes,
            route=self.route,
            route_grid_m=self.route_grid_m,
        )


@dataclass
class JobResult:
    """Outcome of one job attempt (or a cache hit).

    ``status`` is ``"done"``, ``"failed"``, ``"timeout"`` or
    ``"cancelled"``; ``cached`` marks results served from the
    :class:`~repro.runtime.cache.ResultCache` without recompute.
    ``hpwl`` is the final HPWL of the original netlist at the flow's
    final positions (``x``/``y``, cell centers).
    """

    job_id: str
    status: str
    seed: int
    hpwl: Optional[float] = None
    seconds: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    report: Optional[FlowReport] = None
    x: Optional[np.ndarray] = None
    y: Optional[np.ndarray] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "done"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form. Positions travel separately (they are
        arrays); the pool and the cache reattach them."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "seed": self.seed,
            "hpwl": self.hpwl,
            "seconds": self.seconds,
            "cached": self.cached,
            "error": self.error,
            "attempts": self.attempts,
            "report": self.report.to_dict() if self.report else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        report = data.get("report")
        return cls(
            job_id=data["job_id"],
            status=data["status"],
            seed=int(data["seed"]),
            hpwl=data.get("hpwl"),
            seconds=float(data.get("seconds", 0.0)),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
            report=FlowReport.from_dict(report) if report else None,
            attempts=int(data.get("attempts", 1)),
        )


def job_checkpoint_dir(root: Optional[str], job: PlacementJob) -> Optional[str]:
    """The per-job checkpoint spill directory under ``root``.

    Mirrors the result cache's two-level content-hash fan-out, so a
    retried/resumed attempt of the *same* job finds the same spill and
    different jobs never collide.
    """
    if root is None:
        return None
    key = job.content_hash()
    return os.path.join(os.path.abspath(root), key[:2], key)


def execute_job(
    job: PlacementJob,
    emit=None,
    heartbeat_every: int = 25,
    callbacks: Optional[Sequence[IterationCallback]] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    in_worker: bool = False,
    netlist: Optional[Netlist] = None,
    extra_metrics: Optional[Dict[str, Any]] = None,
) -> JobResult:
    """Run one job in this process and return its :class:`JobResult`.

    ``emit`` is an event sink (queue-like ``.put(dict)`` or callable)
    receiving the GP loop's ``loop_start``/``heartbeat``/``loop_stop``
    messages; ``callbacks`` are extra iteration callbacks (the inline
    pool passes its cooperative deadline watchdog here).  Exceptions
    propagate to the caller — the worker wrapper and the inline pool
    turn them into ``failed`` results/events.

    ``checkpoint_dir`` is the pool's spill *root*: the GP loop spills
    checkpoints under a per-job subdirectory so a crash/timeout retry
    launched with ``resume=True`` picks the run up from its last
    checkpoint instead of iteration 0.  ``in_worker`` tells the fault
    injector it may hard-exit the process for ``crash`` faults.

    ``netlist`` injects an already-loaded design (warm workers keep
    designs resident and share arrays via shared memory) — the caller
    guarantees it matches what :meth:`PlacementJob.load_netlist` would
    produce.  ``extra_metrics`` are folded into the synthetic
    ``runtime`` stage (e.g. the warm/cold design-load path taken).
    """
    start = time.perf_counter()
    params = job.effective_params()
    if netlist is None:
        netlist = job.load_netlist()
    attached: List[IterationCallback] = list(callbacks or ())
    spill_dir = job_checkpoint_dir(checkpoint_dir, job)
    resuming = bool(
        resume
        and spill_dir is not None
        and os.path.isfile(os.path.join(spill_dir, "checkpoint.json"))
    )
    spec = job.fork_spec()
    if spec is not None and not resuming:
        # A fork job materializes its starting checkpoint from the
        # parent's spill under the shared root, then resumes from it
        # like any interrupted run.  (A crash retry that already wrote
        # its *own* spill resumes from that instead — strictly newer.)
        if checkpoint_dir is None:
            raise ValueError("fork jobs require a checkpoint root")
        from repro.density import BinGrid
        from repro.recovery.fork import prepare_fork

        parent_dir = os.path.join(
            os.path.abspath(checkpoint_dir), spec.parent[:2], spec.parent
        )
        grid = BinGrid.for_netlist(netlist, params.grid_m)
        prepare_fork(
            parent_dir,
            spill_dir,
            spec,
            num_movable=len(netlist.movable_index),
            bin_size=min(grid.bin_w, grid.bin_h),
            region=netlist.region,
        )
        resuming = True
    plan = job.fault_plan()
    if plan is not None:
        from repro.faults import loop_fault_callback

        injector = loop_fault_callback(
            plan, job.job_id, hard_exit=in_worker, resumed=resuming
        )
        if injector is not None:
            attached.append(injector)
    if emit is not None:
        attached.append(
            QueueCallback(emit, label=job.job_id, every=heartbeat_every)
        )
    ctx = PlacementContext(
        netlist=netlist,
        params=params,
        placer=job.placer,
        callbacks=attached,
        checkpoint_dir=spill_dir,
        resume=resuming,
        final_checkpoint=job.final_checkpoint,
    )
    pipeline = job.build_pipeline()
    # The profiler is thread-local, so a worker process starts without
    # one: install a fresh timed profiler here and fold its totals into
    # the report, whichever process we are running in.  Timing is cheap
    # at this granularity (a few clock reads per GP iteration) and gives
    # every batch job a per-operator wall-time breakdown for free.
    with use_profiler(KernelProfiler(timed=True)) as profiler:
        report = pipeline.run(ctx)
    x, y = ctx.positions()
    final_hpwl = float(hpwl_fn(ctx.original_netlist, x, y))
    report.stages.append(
        StageReport(
            name="runtime",
            seconds=0.0,
            metrics={
                "seed": job.effective_seed(),
                "worker_pid": os.getpid(),
                "final_hpwl": final_hpwl,
                "kernel_launches": profiler.total,
                "kernel_counts": profiler.snapshot(),
                "kernel_seconds": profiler.snapshot_seconds(),
                "kernel_seconds_total": profiler.total_seconds,
                "resumed": resuming,
                **({"forked_from": spec.parent} if spec is not None else {}),
                **(extra_metrics or {}),
            },
        )
    )
    return JobResult(
        job_id=job.job_id,
        status="done",
        seed=job.effective_seed(),
        hpwl=final_hpwl,
        seconds=time.perf_counter() - start,
        report=report,
        x=np.asarray(x, dtype=np.float64),
        y=np.asarray(y, dtype=np.float64),
    )
