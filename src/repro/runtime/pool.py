"""Process-based executor for placement jobs.

A :class:`WorkerPool` is the *executor* half of the runtime: job
lifecycle (who runs next, states, cancellation, dedupe, retry queues)
lives in the :class:`~repro.service.scheduler.Scheduler` core; the pool
leases runnable entries from it and owns everything process-shaped —
spawning one OS process per attempt (so a hung or crashed placement can
always be killed without poisoning a long-lived worker), enforcing
per-job wall-clock timeouts, deciding crash/timeout retries up to
``job.retries`` / ``job.timeout_retries`` (separate budgets, jittered
exponential backoff between attempts, and — when a ``checkpoint_dir``
is armed — each retry resumes from the last spilled GP checkpoint),
and streaming :class:`~repro.runtime.events.RuntimeEvent`\\ s —
including the GP-loop heartbeats each worker bridges through a shared
``multiprocessing.Queue`` via
:class:`~repro.core.callbacks.QueueCallback`.  Cache short-circuiting
goes through :meth:`Scheduler.cache_lookup` at dispatch time.

Graceful degradation: with ``max_workers=1``, or on platforms where
neither ``fork`` nor ``spawn`` contexts are available, the pool runs
jobs sequentially **in-process**.  Inline mode keeps the same event
stream and cache behaviour; timeouts are enforced *cooperatively* by a
:class:`DeadlineCallback` raised from inside the GP loop (a stage that
never yields to the iteration-callback seam cannot be preempted without
a process boundary — that is the documented trade-off).

``stop_when`` turns the pool into a race: the first finalized result
satisfying the predicate cancels every pending and running job (used by
:func:`repro.runtime.race.race_seeds` in first-past-the-post mode).

Graceful shutdown: during :meth:`WorkerPool.run` the pool traps
SIGINT/SIGTERM (main thread only).  On a signal it stops dispatching,
gives in-flight jobs ``drain_grace`` seconds to finish, terminates the
stragglers, marks every undrained job ``interrupted`` (resumable from
its spilled checkpoint when a ``checkpoint_dir`` is armed — a rerun
with ``resume=True`` picks it up mid-run), flushes the JSONL event
stream and returns — no orphaned worker processes.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import queue as queue_mod
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.callbacks import IterationCallback
from repro.pipeline import FlowReport
from repro.runtime.events import EventLog
from repro.runtime.job import JobResult, PlacementJob, execute_job

StopPredicate = Callable[[JobResult], bool]

#: Reason string used when a race winner cancels the remaining field.
_RACE_DECIDED = "race already decided"


class JobTimeoutError(RuntimeError):
    """Raised inside the GP loop when a cooperative deadline passes."""


class JobInterruptedError(RuntimeError):
    """Raised inside an inline GP loop when a shutdown signal arrived."""


class JobCancelledError(RuntimeError):
    """Raised inside an inline GP loop when its entry was cancelled."""


class DeadlineCallback(IterationCallback):
    """Aborts an in-process job when its wall-clock budget runs out.

    Piggy-backs on ``on_iteration`` — the only seam an inline run
    yields control through — so enforcement granularity is one GP
    iteration.
    """

    def __init__(self, deadline: float, budget: float) -> None:
        self.deadline = deadline
        self.budget = budget

    def _check(self) -> None:
        if time.perf_counter() > self.deadline:
            raise JobTimeoutError(
                f"timeout after {self.budget:g}s (cooperative)"
            )

    def on_start(self, info) -> None:
        self._check()

    def on_iteration(self, record) -> None:
        self._check()


class _ShutdownCallback(IterationCallback):
    """Aborts an inline job when the pool received a shutdown signal."""

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool

    def _check(self) -> None:
        if self._pool._shutdown:
            raise JobInterruptedError("shutdown requested")

    def on_start(self, info) -> None:
        self._check()

    def on_iteration(self, record) -> None:
        self._check()


class _CancelCallback(IterationCallback):
    """Aborts an inline job when its scheduler entry is cancel-requested.

    This is the cooperative half of :meth:`Scheduler.cancel` for inline
    execution — process-mode cancels terminate the worker instead.
    """

    def __init__(self, entry: Any) -> None:
        self._entry = entry

    def _check(self) -> None:
        if getattr(self._entry, "cancel_requested", False):
            raise JobCancelledError("cancel requested")

    def on_start(self, info) -> None:
        self._check()

    def on_iteration(self, record) -> None:
        self._check()


def _worker_entry(payload: Dict[str, Any], index: int, out_queue,
                  heartbeat_every: int, checkpoint_dir: Optional[str] = None,
                  resume: bool = False) -> None:
    """Worker-process main: run one job, send events + a final result.

    Every message on ``out_queue`` is a dict; loop progress uses the
    :class:`QueueCallback` schema (``{"event": ..., "job_id": ...}``)
    and the terminal message uses the reserved ``"_result"`` kind with
    the job ``index`` so the parent can match it to its submission.
    ``checkpoint_dir``/``resume`` thread the pool's recovery policy
    through: a retried attempt resumes from the previous attempt's
    spilled checkpoint instead of iteration 0.
    """
    # A worker forked while the parent's shutdown handlers were armed
    # inherits them — and the parent's handler only flips a flag on the
    # (now copied) pool object, so ``terminate()`` would never kill the
    # child.  Workers must die on SIGTERM: restore the defaults.
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(ValueError, OSError):  # platform-dependent
            signal.signal(sig, signal.SIG_DFL)
    job = PlacementJob.from_dict(payload)
    try:
        result = execute_job(job, emit=out_queue.put,
                             heartbeat_every=heartbeat_every,
                             checkpoint_dir=checkpoint_dir,
                             resume=resume, in_worker=True)
    except Exception as err:  # noqa: BLE001 — every failure must surface
        report = getattr(err, "flow_report", None)
        out_queue.put({
            "event": "_result",
            "index": index,
            "status": "failed",
            "job_id": job.job_id,
            "seed": job.effective_seed(),
            "error": f"{type(err).__name__}: {err}",
            "report": report.to_dict() if report is not None else None,
        })
    else:
        out_queue.put({
            "event": "_result",
            "index": index,
            "status": "done",
            "job_id": job.job_id,
            "result": result.to_dict(),
            "x": result.x,
            "y": result.y,
        })


@dataclass
class _Active:
    """Bookkeeping for one running worker process."""

    index: int
    entry: Any                    # the leased ScheduledJob
    process: Any
    attempt: int
    started: float
    deadline: Optional[float] = None

    @property
    def job(self) -> PlacementJob:
        return self.entry.job


class WorkerPool:
    """Executes placement jobs across processes (or inline).

    Parameters
    ----------
    max_workers : parallel worker processes; ``1`` selects inline mode.
    start_method : ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default
        prefers ``fork`` (cheap on Linux), falling back to ``spawn``,
        falling back to inline execution when neither exists.
    cache : optional :class:`ResultCache` consulted before dispatch and
        updated with every finished result (via the scheduler).
    heartbeat_every : GP iterations between heartbeat events.
    checkpoint_dir : spill root for GP-loop checkpoints; arms recovery
        in every job and lets crash/timeout retries (and ``resume=True``
        reruns) pick runs up from their last checkpoint.
    resume : start even *first* attempts with ``resume`` semantics —
        the ``repro batch --resume`` path after a killed batch.
    retry_backoff : base seconds of the jittered exponential backoff
        between retry attempts (attempt n waits
        ``retry_backoff · 2^(n−1) · (1 + jitter)``, jitter ∈ [0, 0.5)
        deterministic per (job, n)).
    retry_backoff_max : ceiling on any single computed backoff delay —
        the exponential stops growing here instead of unboundedly.
        Every ``retry`` event carries the computed ``backoff`` and the
        ``attempt`` ordinal it gates.
    drain_grace : seconds in-flight jobs get to finish after a
        SIGINT/SIGTERM before they are terminated and marked
        ``interrupted``.
    """

    def __init__(
        self,
        max_workers: int = 1,
        start_method: Optional[str] = None,
        cache=None,
        heartbeat_every: int = 25,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        retry_backoff: float = 0.25,
        retry_backoff_max: float = 30.0,
        drain_grace: float = 5.0,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.cache = cache
        self.heartbeat_every = heartbeat_every
        self.checkpoint_dir = checkpoint_dir
        self.resume = bool(resume)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_max = float(retry_backoff_max)
        self.drain_grace = float(drain_grace)
        self._shutdown = False
        self._mp_context = None
        if self.max_workers > 1:
            self._mp_context = _resolve_context(start_method)

    def _backoff_delay(self, job_id: str, retry_number: int) -> float:
        return backoff_delay(job_id, retry_number, self.retry_backoff,
                             max_delay=self.retry_backoff_max)

    @property
    def inline(self) -> bool:
        """True when jobs run sequentially in this process."""
        return self._mp_context is None

    # -- shutdown signalling -----------------------------------------

    def request_shutdown(self) -> None:
        """Ask a running :meth:`run` to drain and stop (signal-safe)."""
        self._shutdown = True

    def _install_signal_handlers(self):
        """Trap SIGINT/SIGTERM for the duration of a run (main thread
        only — executors driven from daemon threads keep the process
        handlers and use :meth:`request_shutdown` instead)."""
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}
        def handler(signum, frame):  # noqa: ARG001 — signal signature
            self._shutdown = True
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(ValueError, OSError):  # platform-dependent
                previous[sig] = signal.signal(sig, handler)
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        for sig, old in (previous or {}).items():
            with contextlib.suppress(ValueError, OSError):  # platform-dependent
                signal.signal(sig, old)

    # -- public API --------------------------------------------------

    def run(
        self,
        jobs: List[PlacementJob],
        events: Optional[EventLog] = None,
        stop_when: Optional[StopPredicate] = None,
    ) -> List[JobResult]:
        """Run all jobs; returns results in submission order."""
        from repro.service.scheduler import Scheduler

        jobs = list(jobs)
        events = events if events is not None else EventLog()
        # Dedupe stays off for batch parity: a manifest that lists the
        # same spec twice runs it twice (modulo the result cache),
        # exactly as before the scheduler split.
        scheduler = Scheduler(cache=self.cache, events=events, dedupe=False)
        entries = [scheduler.submit(job, resume=self.resume) for job in jobs]
        try:
            self.execute(scheduler, entries, events, stop_when)
        finally:
            scheduler.close()
        return [entry.result for entry in entries]

    def execute(
        self,
        scheduler,
        entries: List[Any],
        events: Optional[EventLog] = None,
        stop_when: Optional[StopPredicate] = None,
    ) -> List[JobResult]:
        """Execute already-submitted scheduler entries to completion.

        The caller owns the scheduler — it is *not* closed here, so a
        long-lived scheduler (the exploration controller runs one per
        cohort) can dispatch successive waves of entries through the
        same pool.  Returns the entries' results in order.
        """
        events = events if events is not None else scheduler.events
        self._shutdown = False
        previous = self._install_signal_handlers()
        try:
            if self.inline:
                self._run_inline(scheduler, entries, events, stop_when)
            else:
                self._run_processes(scheduler, entries, events, stop_when)
        finally:
            self._restore_signal_handlers(previous)
        return [entry.result for entry in entries]

    # -- inline (degraded) mode --------------------------------------

    def _run_inline(self, scheduler, entries, events: EventLog,
                    stop_when: Optional[StopPredicate]) -> None:
        while True:
            if self._shutdown:
                self._interrupt_pending(scheduler, events)
                return
            entry = scheduler.lease(timeout=0.0)
            if entry is None:
                return
            hit = scheduler.cache_lookup(entry)
            if hit is not None:
                if _matches(stop_when, hit):
                    self._cancel_pending(scheduler, events)
                    return
                continue
            result = self._run_one_inline(entry, events)
            scheduler.finish(entry, result)
            if self._shutdown:
                self._interrupt_pending(scheduler, events)
                return
            if _matches(stop_when, result):
                self._cancel_pending(scheduler, events)
                return

    def _run_one_inline(self, entry, events: EventLog) -> JobResult:
        """One job in-process, with cooperative timeout retries.

        Crashes cannot be retried without a process boundary, but a
        cooperative timeout can: each retry resumes from the last
        spilled checkpoint (when a ``checkpoint_dir`` is armed), so the
        budget buys *progress*, not repetition.
        """
        job = entry.job
        attempt = entry.attempts - 1   # lease already counted attempt 1
        while True:
            attempt += 1
            entry.attempts = attempt
            events.emit("started", job.job_id, mode="inline",
                        attempt=attempt)
            watchdogs: List[IterationCallback] = [
                _ShutdownCallback(self),
                _CancelCallback(entry),
            ]
            if job.timeout is not None:
                watchdogs.append(
                    DeadlineCallback(time.perf_counter() + job.timeout,
                                     job.timeout)
                )
            start = time.perf_counter()
            try:
                result = execute_job(
                    job,
                    emit=events.put,
                    heartbeat_every=self.heartbeat_every,
                    callbacks=watchdogs,
                    checkpoint_dir=self.checkpoint_dir,
                    resume=self.resume or entry.resume or attempt > 1,
                )
            except JobInterruptedError:
                from repro.service.scheduler import interrupted_result

                resumable = self.checkpoint_dir is not None
                events.emit("interrupted", job.job_id, attempt=attempt,
                            resumable=resumable)
                result = interrupted_result(
                    job, resumable,
                    seconds=time.perf_counter() - start,
                    attempts=attempt,
                )
                events.flush()
                return result
            except JobCancelledError:
                from repro.service.scheduler import cancelled_result

                events.emit("cancelled", job.job_id, attempt=attempt)
                result = cancelled_result(
                    job, "cancel requested",
                    seconds=time.perf_counter() - start,
                )
                result.attempts = attempt
                return result
            except JobTimeoutError as err:
                timeouts = attempt  # every inline retry is a timeout retry
                if timeouts <= job.timeout_retries:
                    backoff = self._backoff_delay(job.job_id, attempt)
                    events.emit(
                        "retry", job.job_id, reason="timeout",
                        attempt=attempt + 1, timeouts=timeouts,
                        backoff=round(backoff, 4),
                        resume=self.checkpoint_dir is not None,
                    )
                    time.sleep(backoff)
                    continue
                message = (f"{err} — timeout budget exhausted "
                           f"({timeouts} timeout(s), "
                           f"{job.timeout_retries} retry(ies) allowed)")
                events.emit("failed", job.job_id, reason="timeout",
                            error=message, attempt=attempt,
                            timeouts=timeouts, crashes=0)
                result = _failure(job, "timeout", message, start,
                                  getattr(err, "flow_report", None))
            except Exception as err:  # noqa: BLE001 — surface, stay healthy
                message = f"{type(err).__name__}: {err}"
                events.emit("failed", job.job_id, reason="error",
                            error=message, attempt=attempt)
                result = _failure(job, "failed", message, start,
                                  getattr(err, "flow_report", None))
            else:
                events.emit("finished", job.job_id, hpwl=result.hpwl,
                            seconds=result.seconds, attempt=attempt,
                            kernel_seconds=_kernel_seconds(result),
                            **_cache_counters(self.cache))
            result.attempts = attempt
            return result

    # -- multiprocess mode -------------------------------------------

    def _run_processes(self, scheduler, entries, events: EventLog,
                       stop_when: Optional[StopPredicate]) -> None:
        ctx = self._mp_context
        out_queue = ctx.Queue()
        index_of = {entry.ticket: i for i, entry in enumerate(entries)}
        active: Dict[int, _Active] = {}
        received: Dict[int, Dict[str, Any]] = {}
        crash_counts: Dict[int, int] = {}    # per-job crash retries used
        timeout_counts: Dict[int, int] = {}  # per-job timeout kills
        stopping = False

        def launch(entry) -> None:
            index = index_of[entry.ticket]
            process = ctx.Process(
                target=_worker_entry,
                args=(entry.job.to_dict(), index, out_queue,
                      self.heartbeat_every, self.checkpoint_dir,
                      entry.resume),
                daemon=True,
            )
            process.start()
            now = time.perf_counter()
            timeout = entry.job.timeout
            active[index] = _Active(
                index=index,
                entry=entry,
                process=process,
                attempt=entry.attempts,
                started=now,
                deadline=(now + timeout) if timeout else None,
            )
            events.emit("started", entry.job.job_id, pid=process.pid,
                        attempt=entry.attempts, resume=entry.resume)

        def requeue(index: int, entry, reason: str) -> None:
            """Schedule a retry with jittered exponential backoff."""
            backoff = self._backoff_delay(entry.job.job_id, entry.attempts)
            events.emit(
                "retry", entry.job.job_id, reason=reason,
                attempt=entry.attempts + 1,
                backoff=round(backoff, 4),
                resume=self.checkpoint_dir is not None,
                crashes=crash_counts.get(index, 0),
                timeouts=timeout_counts.get(index, 0),
            )
            scheduler.requeue(entry, delay=backoff, resume=True)

        def drain(timeout: float = 0.0) -> None:
            deadline = time.perf_counter() + timeout
            while True:
                try:
                    message = out_queue.get(
                        timeout=max(0.0, deadline - time.perf_counter())
                        or 0.001
                    )
                except queue_mod.Empty:
                    return
                if message.get("event") == "_result":
                    received[message["index"]] = message
                else:
                    events.put(message)
                if time.perf_counter() >= deadline:
                    return

        def finalize(index: int, record: _Active,
                     result: JobResult) -> None:
            scheduler.finish(record.entry, result)
            active.pop(index, None)
            record.process.join(timeout=5)

        while active or any(not e.terminal for e in entries):
            if self._shutdown:
                self._drain_and_interrupt(scheduler, entries, active,
                                          received, events, drain)
                return
            while not stopping and len(active) < self.max_workers:
                entry = scheduler.lease(timeout=0.0)
                if entry is None:
                    break
                hit = (scheduler.cache_lookup(entry)
                       if entry.attempts == 1 else None)
                if hit is not None:
                    if _matches(stop_when, hit):
                        stopping = True
                    continue
                launch(entry)

            # Sleep while anything is running *or* backing off — an
            # all-deferred queue must not busy-spin the dispatch loop.
            waiting = any(not e.terminal for e in entries)
            drain(timeout=0.05 if (active or waiting) else 0.0)

            now = time.perf_counter()
            for index in list(active):
                record = active[index]
                entry = record.entry
                job = record.job
                if index in received:
                    message = received.pop(index)
                    result = self._assemble(job, message, record)
                    if result.ok:
                        events.emit("finished", job.job_id,
                                    hpwl=result.hpwl,
                                    seconds=result.seconds,
                                    attempt=record.attempt,
                                    kernel_seconds=_kernel_seconds(result),
                                    **_cache_counters(self.cache))
                    else:
                        events.emit("failed", job.job_id, reason="error",
                                    error=result.error,
                                    attempt=record.attempt)
                    finalize(index, record, result)
                elif entry.cancel_requested:
                    record.process.terminate()
                    record.process.join(timeout=5)
                    del active[index]
                    scheduler.mark_cancelled(
                        entry, reason="cancel requested",
                        seconds=now - record.started,
                    )
                elif record.deadline is not None and now > record.deadline:
                    record.process.terminate()
                    record.process.join(timeout=5)
                    del active[index]
                    timeout_counts[index] = timeout_counts.get(index, 0) + 1
                    if timeout_counts[index] <= job.timeout_retries:
                        requeue(index, entry, "timeout")
                    else:
                        message = (
                            f"timeout after {job.timeout:g}s (killed); "
                            f"budget exhausted "
                            f"({timeout_counts[index]} timeout(s), "
                            f"{job.timeout_retries} retry(ies) allowed)"
                        )
                        events.emit(
                            "failed", job.job_id, reason="timeout",
                            error=message, attempt=record.attempt,
                            crashes=crash_counts.get(index, 0),
                            timeouts=timeout_counts[index],
                        )
                        scheduler.finish(entry, JobResult(
                            job_id=job.job_id,
                            status="timeout",
                            seed=job.effective_seed(),
                            seconds=now - record.started,
                            error=message,
                            attempts=record.attempt,
                        ))
                        record.process.join(timeout=5)
                elif not record.process.is_alive():
                    # The result may still be in the queue's buffer:
                    # give it one generous drain before declaring death.
                    drain(timeout=0.2)
                    if index in received:
                        continue  # handled on the next sweep
                    exitcode = record.process.exitcode
                    record.process.join(timeout=5)
                    del active[index]
                    crash_counts[index] = crash_counts.get(index, 0) + 1
                    if crash_counts[index] <= job.retries:
                        requeue(index, entry, "crash")
                    else:
                        message = (
                            f"worker crashed (exitcode {exitcode}); "
                            f"budget exhausted "
                            f"({crash_counts[index]} crash(es), "
                            f"{job.retries} retry(ies) allowed)"
                        )
                        events.emit(
                            "failed", job.job_id, reason="crash",
                            error=message, attempt=record.attempt,
                            crashes=crash_counts[index],
                            timeouts=timeout_counts.get(index, 0),
                        )
                        scheduler.finish(entry, JobResult(
                            job_id=job.job_id,
                            status="failed",
                            seed=job.effective_seed(),
                            seconds=now - record.started,
                            error=message,
                            attempts=record.attempt,
                        ))
                result_now = entry.result
                if result_now is not None and _matches(stop_when, result_now):
                    stopping = True

            if stopping:
                for index in list(active):
                    record = active.pop(index)
                    record.process.terminate()
                    record.process.join(timeout=5)
                    # The loser's partial runtime is what first-past-
                    # the-post *reclaimed* — the batch summary adds
                    # these up as saved core-seconds.
                    scheduler.mark_cancelled(
                        record.entry, reason=_RACE_DECIDED,
                        seconds=time.perf_counter() - record.started,
                    )
                self._cancel_pending(scheduler, events)

        drain(timeout=0.05)  # tail events (loop_stop racing the result)

    # -- shutdown / cancellation helpers ------------------------------

    def _cancel_pending(self, scheduler, events: EventLog) -> None:
        """Cancel every still-queued entry (race decided / stop)."""
        for entry in scheduler.pending():
            if entry.state == "queued":
                scheduler.cancel(entry.ticket, reason=_RACE_DECIDED)
            else:
                scheduler.mark_cancelled(entry, reason=_RACE_DECIDED)

    def _interrupt_pending(self, scheduler, events: EventLog) -> None:
        """Mark every unresolved entry interrupted (inline shutdown)."""
        from repro.service.scheduler import interrupted_result

        resumable = self.checkpoint_dir is not None
        for entry in scheduler.pending():
            events.emit("interrupted", entry.job.job_id,
                        resumable=resumable, pending=True)
            scheduler.finish(entry, interrupted_result(
                entry.job, resumable, attempts=entry.attempts))
        events.flush()

    def _drain_and_interrupt(self, scheduler, entries, active, received,
                             events: EventLog, drain) -> None:
        """SIGINT/SIGTERM path: drain in-flight jobs for ``drain_grace``
        seconds, terminate the stragglers, mark everything undrained
        ``interrupted`` (resumable when checkpoints are armed), flush
        the event stream."""
        from repro.service.scheduler import interrupted_result

        resumable = self.checkpoint_dir is not None
        deadline = time.perf_counter() + self.drain_grace
        while active and time.perf_counter() < deadline:
            drain(timeout=0.05)
            for index in list(active):
                if index not in received:
                    continue
                record = active[index]
                message = received.pop(index)
                result = self._assemble(record.job, message, record)
                if result.ok:
                    events.emit("finished", record.job.job_id,
                                hpwl=result.hpwl, seconds=result.seconds,
                                attempt=record.attempt,
                                kernel_seconds=_kernel_seconds(result),
                                **_cache_counters(self.cache))
                else:
                    events.emit("failed", record.job.job_id,
                                reason="error", error=result.error,
                                attempt=record.attempt)
                scheduler.finish(record.entry, result)
                active.pop(index, None)
                record.process.join(timeout=5)
        for index in list(active):
            record = active.pop(index)
            record.process.terminate()
            record.process.join(timeout=5)
            events.emit("interrupted", record.job.job_id,
                        attempt=record.attempt, resumable=resumable)
            scheduler.finish(record.entry, interrupted_result(
                record.job, resumable,
                seconds=time.perf_counter() - record.started,
                attempts=record.attempt,
            ))
        for entry in scheduler.pending():
            events.emit("interrupted", entry.job.job_id,
                        resumable=resumable, pending=True)
            scheduler.finish(entry, interrupted_result(
                entry.job, resumable, attempts=entry.attempts))
        events.flush()

    # -- helpers -----------------------------------------------------

    def _assemble(self, job: PlacementJob, message: Dict[str, Any],
                  record: _Active) -> JobResult:
        """Rebuild a JobResult from a worker's terminal message."""
        if message["status"] == "done":
            result = JobResult.from_dict(message["result"])
            result.x = message.get("x")
            result.y = message.get("y")
        else:
            report = message.get("report")
            result = JobResult(
                job_id=message["job_id"],
                status="failed",
                seed=message.get("seed", job.effective_seed()),
                seconds=time.perf_counter() - record.started,
                error=message.get("error"),
                report=FlowReport.from_dict(report) if report else None,
            )
        result.attempts = record.attempt
        return result


def backoff_delay(job_id: str, retry_number: int, base: float,
                  max_delay: Optional[float] = None) -> float:
    """Jittered exponential backoff before retry ``retry_number``.

    Deterministic in (job, retry ordinal): reruns of the same batch
    wait the same amounts, so chaos tests can assert on schedules.
    Shared by the batch pool and the service daemon.

    ``max_delay`` caps the result *after* jitter — without it the
    exponential grows unboundedly (retry 20 of a flapping job would
    wait days), which is exactly wrong for a job that only needs its
    worker replaced.
    """
    scaled = base * (2 ** max(0, retry_number - 1))
    jitter = random.Random(f"{job_id}:{retry_number}").uniform(0.0, 0.5)
    delay = scaled * (1.0 + jitter)
    if max_delay is not None:
        delay = min(delay, float(max_delay))
    return delay


def _resolve_context(start_method: Optional[str]):
    """A usable multiprocessing context, or None (→ inline mode)."""
    methods = mp.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            return None
        return mp.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in methods:
            return mp.get_context(method)
    return None


def _matches(stop_when: Optional[StopPredicate],
             result: JobResult) -> bool:
    return stop_when is not None and bool(stop_when(result))


def _kernel_seconds(result: JobResult) -> Optional[float]:
    """Total in-kernel wall time from the job's runtime stage metrics.

    ``None`` when the worker ran without a timed profiler (or the job
    failed before producing a report) — the event payload stays honest
    instead of reporting 0.0 for "not measured".
    """
    if result.report is None:
        return None
    for stage in result.report.stages:
        if stage.name == "runtime":
            value = stage.metrics.get("kernel_seconds_total")
            return float(value) if value is not None else None
    return None


def _cache_counters(cache) -> Dict[str, int]:
    """Cache hit/miss/eviction counters for ``finished`` events
    (empty when the pool runs uncached — absent keys stay honest)."""
    if cache is None:
        return {}
    return {
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_evictions": cache.evictions,
    }


def _failure(
    job: PlacementJob,
    status: str,
    message: str,
    start: float,
    report: Optional[FlowReport],
) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        status=status,
        seed=job.effective_seed(),
        seconds=time.perf_counter() - start,
        error=message,
        report=report,
    )
