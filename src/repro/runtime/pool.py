"""Process-based worker pool for placement jobs.

One :class:`WorkerPool` fans a list of :class:`PlacementJob`\\ s out
across ``max_workers`` OS processes (process-per-job, so a hung or
crashed placement can always be killed without poisoning a long-lived
worker), enforcing per-job wall-clock timeouts, restarting crashed
workers up to ``job.retries`` times, short-circuiting through an
optional :class:`~repro.runtime.cache.ResultCache`, and streaming
:class:`~repro.runtime.events.RuntimeEvent`\\ s — including the GP-loop
heartbeats each worker bridges through a shared
``multiprocessing.Queue`` via
:class:`~repro.core.callbacks.QueueCallback`.

Graceful degradation: with ``max_workers=1``, or on platforms where
neither ``fork`` nor ``spawn`` contexts are available, the pool runs
jobs sequentially **in-process**.  Inline mode keeps the same event
stream and cache behaviour; timeouts are enforced *cooperatively* by a
:class:`DeadlineCallback` raised from inside the GP loop (a stage that
never yields to the iteration-callback seam cannot be preempted without
a process boundary — that is the documented trade-off).

``stop_when`` turns the pool into a race: the first finalized result
satisfying the predicate cancels every pending and running job (used by
:func:`repro.runtime.race.race_seeds` in first-past-the-post mode).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.callbacks import IterationCallback
from repro.pipeline import FlowReport
from repro.runtime.events import EventLog
from repro.runtime.job import JobResult, PlacementJob, execute_job

StopPredicate = Callable[[JobResult], bool]


class JobTimeoutError(RuntimeError):
    """Raised inside the GP loop when a cooperative deadline passes."""


class DeadlineCallback(IterationCallback):
    """Aborts an in-process job when its wall-clock budget runs out.

    Piggy-backs on ``on_iteration`` — the only seam an inline run
    yields control through — so enforcement granularity is one GP
    iteration.
    """

    def __init__(self, deadline: float, budget: float) -> None:
        self.deadline = deadline
        self.budget = budget

    def _check(self) -> None:
        if time.perf_counter() > self.deadline:
            raise JobTimeoutError(
                f"timeout after {self.budget:g}s (cooperative)"
            )

    def on_start(self, info) -> None:
        self._check()

    def on_iteration(self, record) -> None:
        self._check()


def _worker_entry(payload: Dict[str, Any], index: int, out_queue,
                  heartbeat_every: int) -> None:
    """Worker-process main: run one job, send events + a final result.

    Every message on ``out_queue`` is a dict; loop progress uses the
    :class:`QueueCallback` schema (``{"event": ..., "job_id": ...}``)
    and the terminal message uses the reserved ``"_result"`` kind with
    the job ``index`` so the parent can match it to its submission.
    """
    job = PlacementJob.from_dict(payload)
    try:
        result = execute_job(job, emit=out_queue.put,
                             heartbeat_every=heartbeat_every)
    except Exception as err:  # noqa: BLE001 — every failure must surface
        report = getattr(err, "flow_report", None)
        out_queue.put({
            "event": "_result",
            "index": index,
            "status": "failed",
            "job_id": job.job_id,
            "seed": job.effective_seed(),
            "error": f"{type(err).__name__}: {err}",
            "report": report.to_dict() if report is not None else None,
        })
    else:
        out_queue.put({
            "event": "_result",
            "index": index,
            "status": "done",
            "job_id": job.job_id,
            "result": result.to_dict(),
            "x": result.x,
            "y": result.y,
        })


@dataclass
class _Active:
    """Bookkeeping for one running worker process."""

    index: int
    job: PlacementJob
    process: Any
    attempt: int
    started: float
    deadline: Optional[float] = None


class WorkerPool:
    """Schedules placement jobs across processes (or inline).

    Parameters
    ----------
    max_workers : parallel worker processes; ``1`` selects inline mode.
    start_method : ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default
        prefers ``fork`` (cheap on Linux), falling back to ``spawn``,
        falling back to inline execution when neither exists.
    cache : optional :class:`ResultCache` consulted before dispatch and
        updated with every finished result.
    heartbeat_every : GP iterations between heartbeat events.
    """

    def __init__(
        self,
        max_workers: int = 1,
        start_method: Optional[str] = None,
        cache=None,
        heartbeat_every: int = 25,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.cache = cache
        self.heartbeat_every = heartbeat_every
        self._mp_context = None
        if self.max_workers > 1:
            self._mp_context = _resolve_context(start_method)

    @property
    def inline(self) -> bool:
        """True when jobs run sequentially in this process."""
        return self._mp_context is None

    # -- public API --------------------------------------------------

    def run(
        self,
        jobs: List[PlacementJob],
        events: Optional[EventLog] = None,
        stop_when: Optional[StopPredicate] = None,
    ) -> List[JobResult]:
        """Run all jobs; returns results in submission order."""
        jobs = list(jobs)
        events = events if events is not None else EventLog()
        for job in jobs:
            events.emit("queued", job.job_id, seed=job.effective_seed(),
                        placer=job.placer)
        if self.inline:
            return self._run_inline(jobs, events, stop_when)
        return self._run_processes(jobs, events, stop_when)

    # -- inline (degraded) mode --------------------------------------

    def _run_inline(
        self,
        jobs: List[PlacementJob],
        events: EventLog,
        stop_when: Optional[StopPredicate],
    ) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        stopped = False
        for index, job in enumerate(jobs):
            if stopped:
                results[index] = _cancelled(job, events)
                continue
            hit = self._cache_lookup(job, events)
            if hit is not None:
                results[index] = hit
                stopped = stopped or _matches(stop_when, hit)
                continue
            events.emit("started", job.job_id, mode="inline", attempt=1)
            watchdogs: List[IterationCallback] = []
            if job.timeout is not None:
                watchdogs.append(
                    DeadlineCallback(time.perf_counter() + job.timeout,
                                     job.timeout)
                )
            start = time.perf_counter()
            try:
                result = execute_job(
                    job,
                    emit=events.put,
                    heartbeat_every=self.heartbeat_every,
                    callbacks=watchdogs,
                )
            except JobTimeoutError as err:
                result = _failure(job, "timeout", str(err), start,
                                  getattr(err, "flow_report", None))
                events.emit("failed", job.job_id, reason="timeout",
                            error=str(err))
            except Exception as err:  # noqa: BLE001 — surface, stay healthy
                message = f"{type(err).__name__}: {err}"
                result = _failure(job, "failed", message, start,
                                  getattr(err, "flow_report", None))
                events.emit("failed", job.job_id, reason="error",
                            error=message)
            else:
                events.emit("finished", job.job_id, hpwl=result.hpwl,
                            seconds=result.seconds)
                if self.cache is not None:
                    self.cache.put(job, result)
            results[index] = result
            stopped = stopped or _matches(stop_when, result)
        return results  # type: ignore[return-value]

    # -- multiprocess mode -------------------------------------------

    def _run_processes(
        self,
        jobs: List[PlacementJob],
        events: EventLog,
        stop_when: Optional[StopPredicate],
    ) -> List[JobResult]:
        ctx = self._mp_context
        out_queue = ctx.Queue()
        pending: List[tuple] = [(i, job, 1) for i, job in enumerate(jobs)]
        active: Dict[int, _Active] = {}
        received: Dict[int, Dict[str, Any]] = {}
        results: List[Optional[JobResult]] = [None] * len(jobs)
        stopping = False

        def launch(index: int, job: PlacementJob, attempt: int) -> None:
            process = ctx.Process(
                target=_worker_entry,
                args=(job.to_dict(), index, out_queue,
                      self.heartbeat_every),
                daemon=True,
            )
            process.start()
            now = time.perf_counter()
            active[index] = _Active(
                index=index,
                job=job,
                process=process,
                attempt=attempt,
                started=now,
                deadline=(now + job.timeout) if job.timeout else None,
            )
            events.emit("started", job.job_id, pid=process.pid,
                        attempt=attempt)

        def drain(timeout: float = 0.0) -> None:
            deadline = time.perf_counter() + timeout
            while True:
                try:
                    message = out_queue.get(
                        timeout=max(0.0, deadline - time.perf_counter())
                        or 0.001
                    )
                except queue_mod.Empty:
                    return
                if message.get("event") == "_result":
                    received[message["index"]] = message
                else:
                    events.put(message)
                if time.perf_counter() >= deadline:
                    return

        def finalize(index: int, result: JobResult) -> None:
            results[index] = result
            record = active.pop(index, None)
            if record is not None:
                record.process.join(timeout=5)

        while pending or active:
            while (pending and not stopping
                   and len(active) < self.max_workers):
                index, job, attempt = pending.pop(0)
                hit = self._cache_lookup(job, events) if attempt == 1 else None
                if hit is not None:
                    results[index] = hit
                    if _matches(stop_when, hit):
                        stopping = True
                    continue
                launch(index, job, attempt)

            drain(timeout=0.05 if active else 0.0)

            now = time.perf_counter()
            for index in list(active):
                record = active[index]
                job = record.job
                if index in received:
                    message = received.pop(index)
                    result = self._assemble(job, message, record)
                    if result.ok:
                        events.emit("finished", job.job_id,
                                    hpwl=result.hpwl,
                                    seconds=result.seconds,
                                    attempt=record.attempt)
                        if self.cache is not None:
                            self.cache.put(job, result)
                    else:
                        events.emit("failed", job.job_id, reason="error",
                                    error=result.error,
                                    attempt=record.attempt)
                    finalize(index, result)
                elif record.deadline is not None and now > record.deadline:
                    record.process.terminate()
                    message = f"timeout after {job.timeout:g}s (killed)"
                    events.emit("failed", job.job_id, reason="timeout",
                                error=message, attempt=record.attempt)
                    finalize(index, JobResult(
                        job_id=job.job_id,
                        status="timeout",
                        seed=job.effective_seed(),
                        seconds=now - record.started,
                        error=message,
                        attempts=record.attempt,
                    ))
                elif not record.process.is_alive():
                    # The result may still be in the queue's buffer:
                    # give it one generous drain before declaring death.
                    drain(timeout=0.2)
                    if index in received:
                        continue  # handled on the next sweep
                    exitcode = record.process.exitcode
                    if record.attempt <= job.retries:
                        events.emit("retry", job.job_id,
                                    exitcode=exitcode,
                                    attempt=record.attempt + 1)
                        record.process.join(timeout=5)
                        del active[index]
                        pending.insert(0, (index, job, record.attempt + 1))
                    else:
                        message = (f"worker crashed "
                                   f"(exitcode {exitcode})")
                        events.emit("failed", job.job_id, reason="crash",
                                    error=message, attempt=record.attempt)
                        finalize(index, JobResult(
                            job_id=job.job_id,
                            status="failed",
                            seed=job.effective_seed(),
                            seconds=now - record.started,
                            error=message,
                            attempts=record.attempt,
                        ))
                result_now = results[index]
                if result_now is not None and _matches(stop_when, result_now):
                    stopping = True

            if stopping:
                for index in list(active):
                    record = active.pop(index)
                    record.process.terminate()
                    record.process.join(timeout=5)
                    results[index] = _cancelled(record.job, events)
                while pending:
                    index, job, _ = pending.pop(0)
                    results[index] = _cancelled(job, events)

        drain(timeout=0.05)  # tail events (loop_stop racing the result)
        return results  # type: ignore[return-value]

    # -- helpers -----------------------------------------------------

    def _cache_lookup(self, job: PlacementJob,
                      events: EventLog) -> Optional[JobResult]:
        if self.cache is None:
            return None
        hit = self.cache.get(job)
        if hit is not None:
            events.emit("cached", job.job_id, hpwl=hit.hpwl,
                        key=job.content_hash())
        return hit

    def _assemble(self, job: PlacementJob, message: Dict[str, Any],
                  record: _Active) -> JobResult:
        """Rebuild a JobResult from a worker's terminal message."""
        if message["status"] == "done":
            result = JobResult.from_dict(message["result"])
            result.x = message.get("x")
            result.y = message.get("y")
        else:
            report = message.get("report")
            result = JobResult(
                job_id=message["job_id"],
                status="failed",
                seed=message.get("seed", job.effective_seed()),
                seconds=time.perf_counter() - record.started,
                error=message.get("error"),
                report=FlowReport.from_dict(report) if report else None,
            )
        result.attempts = record.attempt
        return result


def _resolve_context(start_method: Optional[str]):
    """A usable multiprocessing context, or None (→ inline mode)."""
    methods = mp.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            return None
        return mp.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in methods:
            return mp.get_context(method)
    return None


def _matches(stop_when: Optional[StopPredicate],
             result: JobResult) -> bool:
    return stop_when is not None and bool(stop_when(result))


def _failure(
    job: PlacementJob,
    status: str,
    message: str,
    start: float,
    report: Optional[FlowReport],
) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        status=status,
        seed=job.effective_seed(),
        seconds=time.perf_counter() - start,
        error=message,
        report=report,
    )


def _cancelled(job: PlacementJob, events: EventLog) -> JobResult:
    events.emit("cancelled", job.job_id)
    return JobResult(
        job_id=job.job_id,
        status="cancelled",
        seed=job.effective_seed(),
        error="cancelled: race already decided",
        attempts=0,
    )
