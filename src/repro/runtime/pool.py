"""Process-based worker pool for placement jobs.

One :class:`WorkerPool` fans a list of :class:`PlacementJob`\\ s out
across ``max_workers`` OS processes (process-per-job, so a hung or
crashed placement can always be killed without poisoning a long-lived
worker), enforcing per-job wall-clock timeouts, retrying crashes up to
``job.retries`` times and timeouts up to ``job.timeout_retries`` times
(separate budgets, jittered exponential backoff between attempts, and —
when a ``checkpoint_dir`` is armed — each retry resumes from the last
spilled GP checkpoint), short-circuiting through an
optional :class:`~repro.runtime.cache.ResultCache`, and streaming
:class:`~repro.runtime.events.RuntimeEvent`\\ s — including the GP-loop
heartbeats each worker bridges through a shared
``multiprocessing.Queue`` via
:class:`~repro.core.callbacks.QueueCallback`.

Graceful degradation: with ``max_workers=1``, or on platforms where
neither ``fork`` nor ``spawn`` contexts are available, the pool runs
jobs sequentially **in-process**.  Inline mode keeps the same event
stream and cache behaviour; timeouts are enforced *cooperatively* by a
:class:`DeadlineCallback` raised from inside the GP loop (a stage that
never yields to the iteration-callback seam cannot be preempted without
a process boundary — that is the documented trade-off).

``stop_when`` turns the pool into a race: the first finalized result
satisfying the predicate cancels every pending and running job (used by
:func:`repro.runtime.race.race_seeds` in first-past-the-post mode).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.callbacks import IterationCallback
from repro.pipeline import FlowReport
from repro.runtime.events import EventLog
from repro.runtime.job import JobResult, PlacementJob, execute_job

StopPredicate = Callable[[JobResult], bool]


class JobTimeoutError(RuntimeError):
    """Raised inside the GP loop when a cooperative deadline passes."""


class DeadlineCallback(IterationCallback):
    """Aborts an in-process job when its wall-clock budget runs out.

    Piggy-backs on ``on_iteration`` — the only seam an inline run
    yields control through — so enforcement granularity is one GP
    iteration.
    """

    def __init__(self, deadline: float, budget: float) -> None:
        self.deadline = deadline
        self.budget = budget

    def _check(self) -> None:
        if time.perf_counter() > self.deadline:
            raise JobTimeoutError(
                f"timeout after {self.budget:g}s (cooperative)"
            )

    def on_start(self, info) -> None:
        self._check()

    def on_iteration(self, record) -> None:
        self._check()


def _worker_entry(payload: Dict[str, Any], index: int, out_queue,
                  heartbeat_every: int, checkpoint_dir: Optional[str] = None,
                  resume: bool = False) -> None:
    """Worker-process main: run one job, send events + a final result.

    Every message on ``out_queue`` is a dict; loop progress uses the
    :class:`QueueCallback` schema (``{"event": ..., "job_id": ...}``)
    and the terminal message uses the reserved ``"_result"`` kind with
    the job ``index`` so the parent can match it to its submission.
    ``checkpoint_dir``/``resume`` thread the pool's recovery policy
    through: a retried attempt resumes from the previous attempt's
    spilled checkpoint instead of iteration 0.
    """
    job = PlacementJob.from_dict(payload)
    try:
        result = execute_job(job, emit=out_queue.put,
                             heartbeat_every=heartbeat_every,
                             checkpoint_dir=checkpoint_dir,
                             resume=resume, in_worker=True)
    except Exception as err:  # noqa: BLE001 — every failure must surface
        report = getattr(err, "flow_report", None)
        out_queue.put({
            "event": "_result",
            "index": index,
            "status": "failed",
            "job_id": job.job_id,
            "seed": job.effective_seed(),
            "error": f"{type(err).__name__}: {err}",
            "report": report.to_dict() if report is not None else None,
        })
    else:
        out_queue.put({
            "event": "_result",
            "index": index,
            "status": "done",
            "job_id": job.job_id,
            "result": result.to_dict(),
            "x": result.x,
            "y": result.y,
        })


@dataclass
class _Active:
    """Bookkeeping for one running worker process."""

    index: int
    job: PlacementJob
    process: Any
    attempt: int
    started: float
    deadline: Optional[float] = None


class WorkerPool:
    """Schedules placement jobs across processes (or inline).

    Parameters
    ----------
    max_workers : parallel worker processes; ``1`` selects inline mode.
    start_method : ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default
        prefers ``fork`` (cheap on Linux), falling back to ``spawn``,
        falling back to inline execution when neither exists.
    cache : optional :class:`ResultCache` consulted before dispatch and
        updated with every finished result.
    heartbeat_every : GP iterations between heartbeat events.
    checkpoint_dir : spill root for GP-loop checkpoints; arms recovery
        in every job and lets crash/timeout retries (and ``resume=True``
        reruns) pick runs up from their last checkpoint.
    resume : start even *first* attempts with ``resume`` semantics —
        the ``repro batch --resume`` path after a killed batch.
    retry_backoff : base seconds of the jittered exponential backoff
        between retry attempts (attempt n waits
        ``retry_backoff · 2^(n−1) · (1 + jitter)``, jitter ∈ [0, 0.5)
        deterministic per (job, n)).
    """

    def __init__(
        self,
        max_workers: int = 1,
        start_method: Optional[str] = None,
        cache=None,
        heartbeat_every: int = 25,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        retry_backoff: float = 0.25,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.cache = cache
        self.heartbeat_every = heartbeat_every
        self.checkpoint_dir = checkpoint_dir
        self.resume = bool(resume)
        self.retry_backoff = float(retry_backoff)
        self._mp_context = None
        if self.max_workers > 1:
            self._mp_context = _resolve_context(start_method)

    def _backoff_delay(self, job_id: str, retry_number: int) -> float:
        """Jittered exponential backoff before retry ``retry_number``.

        Deterministic in (job, retry ordinal): reruns of the same batch
        wait the same amounts, so chaos tests can assert on schedules.
        """
        base = self.retry_backoff * (2 ** max(0, retry_number - 1))
        jitter = random.Random(f"{job_id}:{retry_number}").uniform(0.0, 0.5)
        return base * (1.0 + jitter)

    @property
    def inline(self) -> bool:
        """True when jobs run sequentially in this process."""
        return self._mp_context is None

    # -- public API --------------------------------------------------

    def run(
        self,
        jobs: List[PlacementJob],
        events: Optional[EventLog] = None,
        stop_when: Optional[StopPredicate] = None,
    ) -> List[JobResult]:
        """Run all jobs; returns results in submission order."""
        jobs = list(jobs)
        events = events if events is not None else EventLog()
        for job in jobs:
            events.emit("queued", job.job_id, seed=job.effective_seed(),
                        placer=job.placer)
        if self.inline:
            return self._run_inline(jobs, events, stop_when)
        return self._run_processes(jobs, events, stop_when)

    # -- inline (degraded) mode --------------------------------------

    def _run_inline(
        self,
        jobs: List[PlacementJob],
        events: EventLog,
        stop_when: Optional[StopPredicate],
    ) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        stopped = False
        for index, job in enumerate(jobs):
            if stopped:
                results[index] = _cancelled(job, events)
                continue
            hit = self._cache_lookup(job, events)
            if hit is not None:
                results[index] = hit
                stopped = stopped or _matches(stop_when, hit)
                continue
            result = self._run_one_inline(job, events)
            if result.ok and self.cache is not None:
                self.cache.put(job, result)
            results[index] = result
            stopped = stopped or _matches(stop_when, result)
        return results  # type: ignore[return-value]

    def _run_one_inline(self, job: PlacementJob,
                        events: EventLog) -> JobResult:
        """One job in-process, with cooperative timeout retries.

        Crashes cannot be retried without a process boundary, but a
        cooperative timeout can: each retry resumes from the last
        spilled checkpoint (when a ``checkpoint_dir`` is armed), so the
        budget buys *progress*, not repetition.
        """
        attempt = 0
        while True:
            attempt += 1
            events.emit("started", job.job_id, mode="inline",
                        attempt=attempt)
            watchdogs: List[IterationCallback] = []
            if job.timeout is not None:
                watchdogs.append(
                    DeadlineCallback(time.perf_counter() + job.timeout,
                                     job.timeout)
                )
            start = time.perf_counter()
            try:
                result = execute_job(
                    job,
                    emit=events.put,
                    heartbeat_every=self.heartbeat_every,
                    callbacks=watchdogs,
                    checkpoint_dir=self.checkpoint_dir,
                    resume=self.resume or attempt > 1,
                )
            except JobTimeoutError as err:
                timeouts = attempt  # every inline retry is a timeout retry
                if timeouts <= job.timeout_retries:
                    events.emit(
                        "retry", job.job_id, reason="timeout",
                        attempt=attempt + 1, timeouts=timeouts,
                        resume=self.checkpoint_dir is not None,
                    )
                    continue
                message = (f"{err} — timeout budget exhausted "
                           f"({timeouts} timeout(s), "
                           f"{job.timeout_retries} retry(ies) allowed)")
                events.emit("failed", job.job_id, reason="timeout",
                            error=message, attempt=attempt,
                            timeouts=timeouts, crashes=0)
                result = _failure(job, "timeout", message, start,
                                  getattr(err, "flow_report", None))
            except Exception as err:  # noqa: BLE001 — surface, stay healthy
                message = f"{type(err).__name__}: {err}"
                events.emit("failed", job.job_id, reason="error",
                            error=message, attempt=attempt)
                result = _failure(job, "failed", message, start,
                                  getattr(err, "flow_report", None))
            else:
                events.emit("finished", job.job_id, hpwl=result.hpwl,
                            seconds=result.seconds, attempt=attempt,
                            kernel_seconds=_kernel_seconds(result))
            result.attempts = attempt
            return result

    # -- multiprocess mode -------------------------------------------

    def _run_processes(
        self,
        jobs: List[PlacementJob],
        events: EventLog,
        stop_when: Optional[StopPredicate],
    ) -> List[JobResult]:
        ctx = self._mp_context
        out_queue = ctx.Queue()
        # Pending entries: (index, job, attempt, not_before, resume).
        # ``not_before`` is the perf_counter instant the backoff allows
        # a relaunch; ``resume`` makes the worker pick the job up from
        # its last spilled checkpoint instead of iteration 0.
        pending: List[tuple] = [
            (i, job, 1, 0.0, self.resume) for i, job in enumerate(jobs)
        ]
        active: Dict[int, _Active] = {}
        received: Dict[int, Dict[str, Any]] = {}
        results: List[Optional[JobResult]] = [None] * len(jobs)
        crash_counts: Dict[int, int] = {}    # per-job crash retries used
        timeout_counts: Dict[int, int] = {}  # per-job timeout kills
        stopping = False

        def launch(index: int, job: PlacementJob, attempt: int,
                   resume: bool) -> None:
            process = ctx.Process(
                target=_worker_entry,
                args=(job.to_dict(), index, out_queue,
                      self.heartbeat_every, self.checkpoint_dir, resume),
                daemon=True,
            )
            process.start()
            now = time.perf_counter()
            active[index] = _Active(
                index=index,
                job=job,
                process=process,
                attempt=attempt,
                started=now,
                deadline=(now + job.timeout) if job.timeout else None,
            )
            events.emit("started", job.job_id, pid=process.pid,
                        attempt=attempt, resume=resume)

        def requeue(index: int, job: PlacementJob, attempt: int,
                    reason: str) -> None:
            """Schedule a retry with jittered exponential backoff."""
            backoff = self._backoff_delay(job.job_id, attempt - 1)
            events.emit(
                "retry", job.job_id, reason=reason, attempt=attempt,
                backoff=round(backoff, 4),
                resume=self.checkpoint_dir is not None,
                crashes=crash_counts.get(index, 0),
                timeouts=timeout_counts.get(index, 0),
            )
            pending.insert(0, (index, job, attempt,
                               time.perf_counter() + backoff, True))

        def drain(timeout: float = 0.0) -> None:
            deadline = time.perf_counter() + timeout
            while True:
                try:
                    message = out_queue.get(
                        timeout=max(0.0, deadline - time.perf_counter())
                        or 0.001
                    )
                except queue_mod.Empty:
                    return
                if message.get("event") == "_result":
                    received[message["index"]] = message
                else:
                    events.put(message)
                if time.perf_counter() >= deadline:
                    return

        def finalize(index: int, result: JobResult) -> None:
            results[index] = result
            record = active.pop(index, None)
            if record is not None:
                record.process.join(timeout=5)

        while pending or active:
            deferred: List[tuple] = []
            while (pending and not stopping
                   and len(active) < self.max_workers):
                entry = pending.pop(0)
                index, job, attempt, not_before, resume = entry
                if not_before > time.perf_counter():
                    deferred.append(entry)  # backoff window still open
                    continue
                hit = self._cache_lookup(job, events) if attempt == 1 else None
                if hit is not None:
                    results[index] = hit
                    if _matches(stop_when, hit):
                        stopping = True
                    continue
                launch(index, job, attempt, resume)
            pending[:0] = deferred

            # Sleep while anything is running *or* backing off — an
            # all-deferred queue must not busy-spin the dispatch loop.
            drain(timeout=0.05 if (active or pending) else 0.0)

            now = time.perf_counter()
            for index in list(active):
                record = active[index]
                job = record.job
                if index in received:
                    message = received.pop(index)
                    result = self._assemble(job, message, record)
                    if result.ok:
                        events.emit("finished", job.job_id,
                                    hpwl=result.hpwl,
                                    seconds=result.seconds,
                                    attempt=record.attempt,
                                    kernel_seconds=_kernel_seconds(result))
                        if self.cache is not None:
                            self.cache.put(job, result)
                    else:
                        events.emit("failed", job.job_id, reason="error",
                                    error=result.error,
                                    attempt=record.attempt)
                    finalize(index, result)
                elif record.deadline is not None and now > record.deadline:
                    record.process.terminate()
                    record.process.join(timeout=5)
                    del active[index]
                    timeout_counts[index] = timeout_counts.get(index, 0) + 1
                    if timeout_counts[index] <= job.timeout_retries:
                        requeue(index, job, record.attempt + 1, "timeout")
                    else:
                        message = (
                            f"timeout after {job.timeout:g}s (killed); "
                            f"budget exhausted "
                            f"({timeout_counts[index]} timeout(s), "
                            f"{job.timeout_retries} retry(ies) allowed)"
                        )
                        events.emit(
                            "failed", job.job_id, reason="timeout",
                            error=message, attempt=record.attempt,
                            crashes=crash_counts.get(index, 0),
                            timeouts=timeout_counts[index],
                        )
                        results[index] = JobResult(
                            job_id=job.job_id,
                            status="timeout",
                            seed=job.effective_seed(),
                            seconds=now - record.started,
                            error=message,
                            attempts=record.attempt,
                        )
                elif not record.process.is_alive():
                    # The result may still be in the queue's buffer:
                    # give it one generous drain before declaring death.
                    drain(timeout=0.2)
                    if index in received:
                        continue  # handled on the next sweep
                    exitcode = record.process.exitcode
                    record.process.join(timeout=5)
                    del active[index]
                    crash_counts[index] = crash_counts.get(index, 0) + 1
                    if crash_counts[index] <= job.retries:
                        requeue(index, job, record.attempt + 1, "crash")
                    else:
                        message = (
                            f"worker crashed (exitcode {exitcode}); "
                            f"budget exhausted "
                            f"({crash_counts[index]} crash(es), "
                            f"{job.retries} retry(ies) allowed)"
                        )
                        events.emit(
                            "failed", job.job_id, reason="crash",
                            error=message, attempt=record.attempt,
                            crashes=crash_counts[index],
                            timeouts=timeout_counts.get(index, 0),
                        )
                        results[index] = JobResult(
                            job_id=job.job_id,
                            status="failed",
                            seed=job.effective_seed(),
                            seconds=now - record.started,
                            error=message,
                            attempts=record.attempt,
                        )
                result_now = results[index]
                if result_now is not None and _matches(stop_when, result_now):
                    stopping = True

            if stopping:
                for index in list(active):
                    record = active.pop(index)
                    record.process.terminate()
                    record.process.join(timeout=5)
                    results[index] = _cancelled(record.job, events)
                while pending:
                    index, job = pending.pop(0)[:2]
                    results[index] = _cancelled(job, events)

        drain(timeout=0.05)  # tail events (loop_stop racing the result)
        return results  # type: ignore[return-value]

    # -- helpers -----------------------------------------------------

    def _cache_lookup(self, job: PlacementJob,
                      events: EventLog) -> Optional[JobResult]:
        if self.cache is None:
            return None
        hit = self.cache.get(
            job,
            on_evict=lambda key, reason: events.emit(
                "cache-evicted", job.job_id, key=key, reason=reason
            ),
        )
        if hit is not None:
            events.emit("cached", job.job_id, hpwl=hit.hpwl,
                        key=job.content_hash())
        return hit

    def _assemble(self, job: PlacementJob, message: Dict[str, Any],
                  record: _Active) -> JobResult:
        """Rebuild a JobResult from a worker's terminal message."""
        if message["status"] == "done":
            result = JobResult.from_dict(message["result"])
            result.x = message.get("x")
            result.y = message.get("y")
        else:
            report = message.get("report")
            result = JobResult(
                job_id=message["job_id"],
                status="failed",
                seed=message.get("seed", job.effective_seed()),
                seconds=time.perf_counter() - record.started,
                error=message.get("error"),
                report=FlowReport.from_dict(report) if report else None,
            )
        result.attempts = record.attempt
        return result


def _resolve_context(start_method: Optional[str]):
    """A usable multiprocessing context, or None (→ inline mode)."""
    methods = mp.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            return None
        return mp.get_context(start_method)
    for method in ("fork", "spawn"):
        if method in methods:
            return mp.get_context(method)
    return None


def _matches(stop_when: Optional[StopPredicate],
             result: JobResult) -> bool:
    return stop_when is not None and bool(stop_when(result))


def _kernel_seconds(result: JobResult) -> Optional[float]:
    """Total in-kernel wall time from the job's runtime stage metrics.

    ``None`` when the worker ran without a timed profiler (or the job
    failed before producing a report) — the event payload stays honest
    instead of reporting 0.0 for "not measured".
    """
    if result.report is None:
        return None
    for stage in result.report.stages:
        if stage.name == "runtime":
            value = stage.metrics.get("kernel_seconds_total")
            return float(value) if value is not None else None
    return None


def _failure(
    job: PlacementJob,
    status: str,
    message: str,
    start: float,
    report: Optional[FlowReport],
) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        status=status,
        seed=job.effective_seed(),
        seconds=time.perf_counter() - start,
        error=message,
        report=report,
    )


def _cancelled(job: PlacementJob, events: EventLog) -> JobResult:
    events.emit("cancelled", job.job_id)
    return JobResult(
        job_id=job.job_id,
        status="cancelled",
        seed=job.effective_seed(),
        error="cancelled: race already decided",
        attempts=0,
    )
