"""Multi-seed racing and parameter sweeps over the worker pool.

Analytical GP is a non-convex descent: different seeds (initial
positions) land in different local optima, and "Escaping Local Optima
in Global Placement"-style quality comes from running *many* placements
and keeping the best.  :func:`race_seeds` launches N seed variants of
one job and selects a winner; :func:`sweep_params` does the same over
explicit :class:`~repro.core.params.PlacementParams` overrides.

Two selection modes:

``best``   (default) run every contender to completion, pick the
           minimum final HPWL — the quality play.
``first``  first-past-the-post: the first contender to finish wins and
           every still-running/pending contender is cancelled
           (terminated) — the latency play, useful when any legal
           placement will do.

The winner's :class:`~repro.pipeline.context.FlowReport` gains a
synthetic ``race`` stage whose metrics list **all** contenders (seed,
status, HPWL, runtime, cache hit), so a stored report is a complete
account of the race, not just its winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.pipeline import StageReport
from repro.runtime.events import EventLog
from repro.runtime.job import JobResult, PlacementJob
from repro.runtime.pool import WorkerPool


@dataclass
class RaceResult:
    """Winner + full field of one race or sweep."""

    winner: JobResult
    results: List[JobResult]
    mode: str
    variant_of: str = "seed"            # "seed" or "params"

    @property
    def reclaimed_core_seconds(self) -> float:
        """Partial runtime of cancelled losers (first-past-the-post).

        This is compute the early cancel *saved* relative to letting
        every contender run to completion — cancelled entries carry the
        seconds they consumed before being stopped.
        """
        return sum(r.seconds for r in self.results
                   if r.status == "cancelled")

    @property
    def contenders(self) -> List[Dict[str, Any]]:
        return [
            {
                "job_id": r.job_id,
                "seed": r.seed,
                "status": r.status,
                "hpwl": r.hpwl,
                "seconds": r.seconds,
                "cached": r.cached,
            }
            for r in self.results
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "variant_of": self.variant_of,
            "winner": self.winner.to_dict(),
            "contenders": self.contenders,
            "reclaimed_core_seconds": self.reclaimed_core_seconds,
        }

    def summary(self) -> str:
        lines = [f"race[{self.variant_of}/{self.mode}] "
                 f"winner seed={self.winner.seed} "
                 f"hpwl={self.winner.hpwl:.6g}"]
        reclaimed = self.reclaimed_core_seconds
        if reclaimed > 0:
            lines[0] += f" reclaimed={reclaimed:.2f}s"
        for entry in self.contenders:
            hpwl = entry["hpwl"]
            lines.append(
                f"  seed={entry['seed']:<6d} {entry['status']:<9s} "
                f"hpwl={'-' if hpwl is None else format(hpwl, '.6g')} "
                f"{entry['seconds']:.2f}s"
                + (" (cached)" if entry["cached"] else "")
            )
        return "\n".join(lines)


def race_seeds(
    job: PlacementJob,
    n: int = 4,
    seeds: Optional[Sequence[int]] = None,
    mode: str = "best",
    max_workers: Optional[int] = None,
    cache=None,
    events: Optional[EventLog] = None,
    pool: Optional[WorkerPool] = None,
) -> RaceResult:
    """Race ``n`` seed variants of ``job``; return the selected winner.

    ``seeds`` defaults to ``base, base+1, …, base+n-1`` from the job's
    effective seed.  ``pool`` overrides the default pool (which uses
    ``max_workers`` or one process per contender, capped at 8).
    """
    if seeds is None:
        base = job.effective_seed()
        seeds = [base + i for i in range(n)]
    variants = [job.with_seed(seed) for seed in seeds]
    return _race(variants, mode=mode, max_workers=max_workers, cache=cache,
                 events=events, pool=pool, variant_of="seed")


def sweep_params(
    job: PlacementJob,
    variants: Sequence[Dict[str, Any]],
    mode: str = "best",
    max_workers: Optional[int] = None,
    cache=None,
    events: Optional[EventLog] = None,
    pool: Optional[WorkerPool] = None,
) -> RaceResult:
    """Race explicit params-override variants of ``job``.

    ``variants`` is a sequence of ``PlacementParams`` field overrides,
    e.g. ``[{"target_density": 0.8}, {"target_density": 0.95}]``.
    """
    jobs = [job.with_params(**overrides) for overrides in variants]
    return _race(jobs, mode=mode, max_workers=max_workers, cache=cache,
                 events=events, pool=pool, variant_of="params")


def _race(
    variants: List[PlacementJob],
    mode: str,
    max_workers: Optional[int],
    cache,
    events: Optional[EventLog],
    pool: Optional[WorkerPool],
    variant_of: str,
) -> RaceResult:
    if mode not in ("best", "first"):
        raise ValueError(f"unknown race mode {mode!r}")
    if not variants:
        raise ValueError("a race needs at least one contender")
    if pool is None:
        workers = max_workers if max_workers else min(len(variants), 8)
        pool = WorkerPool(max_workers=workers, cache=cache)
    stop_when = (lambda r: r.ok) if mode == "first" else None
    results = pool.run(variants, events=events, stop_when=stop_when)
    finishers = [r for r in results if r.ok and r.hpwl is not None]
    if not finishers:
        raise RuntimeError(
            "race produced no successful placement: "
            + "; ".join(f"{r.job_id}: {r.status} ({r.error})"
                        for r in results)
        )
    winner = min(finishers, key=lambda r: r.hpwl)
    race = RaceResult(winner=winner, results=results, mode=mode,
                      variant_of=variant_of)
    if winner.report is not None:
        winner.report.stages.append(
            StageReport(
                name="race",
                seconds=0.0,
                metrics={
                    "mode": mode,
                    "variant_of": variant_of,
                    "winner_job_id": winner.job_id,
                    "winner_seed": winner.seed,
                    "contenders": race.contenders,
                    "reclaimed_core_seconds": race.reclaimed_core_seconds,
                },
            )
        )
    return race
