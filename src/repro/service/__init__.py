"""repro.service — placement-as-a-service on top of the batch runtime.

The batch runtime (:mod:`repro.runtime`) runs a fixed list of jobs and
exits; this package turns the same building blocks into a long-running
service.  Three layers:

:mod:`repro.service.scheduler`
    The job-lifecycle core every executor leases work from: a
    thread-safe priority queue with per-tenant quotas, job states
    (queued → running → done / failed / cancelled), cancellation,
    retry requeueing with backoff gates, and dedupe — both against the
    content-addressed :class:`~repro.runtime.cache.ResultCache` and
    against identical in-flight submissions.
    :class:`~repro.runtime.pool.WorkerPool` is one executor of this
    core (the batch face); the daemon's warm pool is another.

:mod:`repro.service.warm`
    Warm workers: persistent processes that keep loaded designs
    resident keyed by design hash and share the big netlist arrays via
    ``multiprocessing.shared_memory``, so a repeat-design job skips
    design generation/parsing entirely.  :mod:`repro.service.bench`
    measures the submit-to-first-iteration latency win.

:mod:`repro.service.daemon`
    ``repro serve``: an HTTP daemon (stdlib ``http.server``) exposing
    submit / list / query / cancel plus a live per-job JSONL event
    stream, with a journal + GP checkpoints under a state directory so
    a killed daemon resumes its in-flight jobs on restart.
    :mod:`repro.service.client` is the matching stdlib-only client.

:mod:`repro.service.journal`
    The daemon's write-ahead journal as a standalone component: fsync
    durability, a breaker-guarded degraded (buffered) mode with a
    bounded loss window, and corruption-tolerant replay parsing.

The daemon is self-healing via :mod:`repro.supervision`: heartbeat
liveness with early preemption of hung workers, per-worker health
quarantine with canary probes, circuit breakers over cache / shared
memory / journal, and brownout admission control.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import PlacementService, make_server, serve
from repro.service.journal import Journal, JournalReplay, read_journal
from repro.service.scheduler import (
    JOB_STATES,
    TERMINAL_STATES,
    QueueFull,
    ScheduledJob,
    Scheduler,
)
from repro.service.warm import WarmPool

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Journal",
    "JournalReplay",
    "PlacementService",
    "QueueFull",
    "ScheduledJob",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "WarmPool",
    "make_server",
    "read_journal",
    "serve",
]
