"""Submit-to-first-iteration latency bench: cold vs warm workers.

The number the warm-worker layer exists for: how long after submitting
a job does its GP loop actually start?  A cold executor pays process
spawn + interpreter/numpy import (fork amortizes most of that) + design
generation/parsing + CSR building on *every* job; a warm worker with
the design resident pays only the task-message hop.

``cold`` here reproduces the batch pool's cost model — a fresh
single-worker :class:`~repro.service.warm.WarmPool` per job, so every
submission spawns a process and loads the design.  ``warm`` submits the
same stream of jobs to one persistent pool: the first job attaches the
shared-memory design (reported separately as ``attach``), the rest find
it resident.  Latency is measured submit → ``loop_start`` arrival at
the parent, the same observation point in both modes.

Run it via ``repro bench --warm`` (writes ``BENCH_service.json``).
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Any, Dict, List, Optional

from repro.runtime.job import PlacementJob
from repro.service.warm import WarmPool


def _await_loop_start(pool: WarmPool, submitted: float,
                      timeout: float = 120.0) -> Dict[str, float]:
    """Poll until loop_start (latency) and _result (total) arrive."""
    deadline = time.perf_counter() + timeout
    latency = None
    while time.perf_counter() < deadline:
        for message in pool.poll(0.02):
            now = time.perf_counter()
            if message.get("event") == "loop_start" and latency is None:
                latency = now - submitted
            if message.get("event") == "_result":
                if message.get("status") != "done":
                    raise RuntimeError(
                        f"bench job failed: {message.get('error')}"
                    )
                if latency is None:
                    # Degenerate pipeline without a GP loop: fall back
                    # to completion time so the bench still reports.
                    latency = now - submitted
                return {"latency": latency, "total": now - submitted}
    raise RuntimeError("bench job timed out")


def warm_latency_bench(
    design: str = "fft_1",
    cells: int = 120,
    repeats: int = 5,
    max_iterations: int = 20,
    start_method: Optional[str] = None,
) -> Dict[str, Any]:
    """Measure cold vs warm submit→first-iteration latency.

    Returns a JSON-able report; ``repeats`` is the number of *measured*
    samples per mode (the warm mode runs one extra unmeasured job that
    pays the shared-memory attach, reported as ``attach_latency_s``).
    """
    def job_for(seed: int) -> PlacementJob:
        return PlacementJob(
            design=design, cells=cells, seed=seed,
            params={"max_iterations": max_iterations},
        )

    cold_samples: List[float] = []
    for i in range(repeats):
        pool = WarmPool(workers=1, start_method=start_method)
        try:
            submitted = time.perf_counter()
            pool.submit(f"cold-{i}", job_for(seed=i))
            sample = _await_loop_start(pool, submitted)
            cold_samples.append(sample["latency"])
        finally:
            pool.shutdown()

    warm_samples: List[float] = []
    pool = WarmPool(workers=1, start_method=start_method)
    try:
        submitted = time.perf_counter()
        pool.submit("attach", job_for(seed=1000))
        attach_latency = _await_loop_start(pool, submitted)["latency"]
        for i in range(repeats):
            submitted = time.perf_counter()
            pool.submit(f"warm-{i}", job_for(seed=2000 + i))
            warm_samples.append(
                _await_loop_start(pool, submitted)["latency"]
            )
        inline = pool.inline
    finally:
        pool.shutdown()

    cold_median = statistics.median(cold_samples)
    warm_median = statistics.median(warm_samples)
    return {
        "bench": "service-warm-latency",
        "design": design,
        "cells": cells,
        "max_iterations": max_iterations,
        "repeats": repeats,
        "inline_fallback": inline,
        "cold_latency_s": {
            "median": cold_median,
            "min": min(cold_samples),
            "samples": cold_samples,
        },
        "warm_latency_s": {
            "median": warm_median,
            "min": min(warm_samples),
            "samples": warm_samples,
        },
        "attach_latency_s": attach_latency,
        "speedup_median": (cold_median / warm_median
                           if warm_median > 0 else float("inf")),
    }


def format_warm_report(report: Dict[str, Any]) -> str:
    lines = [
        f"service warm-worker latency bench "
        f"({report['design']}, {report['cells']} cells, "
        f"{report['repeats']} repeats)",
        f"  cold  (fresh worker per job) : "
        f"{report['cold_latency_s']['median'] * 1e3:8.1f} ms median "
        f"({report['cold_latency_s']['min'] * 1e3:.1f} ms min)",
        f"  warm  (design resident)      : "
        f"{report['warm_latency_s']['median'] * 1e3:8.1f} ms median "
        f"({report['warm_latency_s']['min'] * 1e3:.1f} ms min)",
        f"  attach (first warm job)      : "
        f"{report['attach_latency_s'] * 1e3:8.1f} ms",
        f"  submit-to-first-iteration speedup: "
        f"{report['speedup_median']:.1f}x",
    ]
    if report.get("inline_fallback"):
        lines.append("  (thread fallback — no process isolation; "
                     "numbers understate the warm win)")
    return "\n".join(lines)


def write_warm_report(report: Dict[str, Any],
                      path: str = "BENCH_service.json") -> str:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
