"""Stdlib HTTP client for the ``repro serve`` daemon.

:class:`ServiceClient` wraps the daemon's JSON API (see
:mod:`repro.service.daemon` for the route table) over ``http.client``,
so tests and scripts can drive a live daemon without any third-party
dependency::

    client = ServiceClient("127.0.0.1", 8787)
    entry = client.submit({"design": "fft_1", "cells": 80, "seed": 1})
    final = client.wait(entry["ticket"], timeout=60)
    report = client.report(entry["ticket"])
    for event in client.stream_events(entry["ticket"]):
        print(event["kind"], event.get("iteration"))

Every method opens a fresh connection — the daemon is threaded, and
streams hold their connection until the job is terminal, so sharing a
connection across calls would serialize them.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional


class ServiceError(RuntimeError):
    """A non-2xx daemon response; carries ``status`` and ``body``.

    ``retry_after`` is the parsed ``Retry-After`` header (seconds) when
    the daemon sent one — 429 backpressure rejections do — else None.
    """

    def __init__(self, status: int, body: Any,
                 retry_after: Optional[float] = None) -> None:
        message = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body
        self.retry_after = retry_after


class ServiceClient:
    """Thin JSON client for one daemon at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode() or "null")
            except ValueError:
                data = raw.decode(errors="replace")
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    response.status, data,
                    retry_after=(float(retry_after)
                                 if retry_after is not None else None),
                )
            return data
        finally:
            conn.close()

    # -- the API ------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, spec: Dict[str, Any], priority: int = 0,
               tenant: Optional[str] = None,
               group: Optional[str] = None) -> Dict[str, Any]:
        """Submit a job spec; returns the lifecycle entry (``ticket``,
        ``state``, ...).  ``spec`` is the manifest job schema; priority,
        tenant and group ride along in the service wrapper."""
        if priority or tenant is not None or group is not None:
            spec = {"job": spec, "priority": priority,
                    "tenant": tenant or "default", "group": group}
        return self._request("POST", "/jobs", body=spec)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, ticket: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{ticket}")

    def report(self, ticket: str) -> Dict[str, Any]:
        """The full entry *with* the FlowReport of a done job."""
        return self._request("GET", f"/jobs/{ticket}/report")

    def cancel(self, ticket: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{ticket}/cancel")

    def cancel_group(self, group: str) -> Dict[str, Any]:
        """Cancel every non-terminal job of a submission group."""
        return self._request("POST", f"/groups/{group}/cancel")

    def wait(self, ticket: str, timeout: float = 60.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the ticket is terminal; returns the final entry."""
        deadline = time.monotonic() + timeout
        while True:
            entry = self.job(ticket)
            if entry.get("terminal"):
                return entry
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"ticket {ticket!r} still {entry.get('state')!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll)

    def events(self, ticket: str) -> List[Dict[str, Any]]:
        """The job's event stream so far (non-blocking snapshot)."""
        return list(self.stream_events(ticket, follow=False))

    def stream_events(self, ticket: str,
                      follow: bool = True,
                      timeout: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """Yield the job's JSONL events; with ``follow`` the stream
        stays live until the job is terminal (the daemon closes it)."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            suffix = "?follow=1" if follow else ""
            conn.request("GET", f"/jobs/{ticket}/events{suffix}")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    data = json.loads(raw.decode() or "null")
                except ValueError:
                    data = raw.decode(errors="replace")
                raise ServiceError(response.status, data)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()
