"""``repro serve``: the placement daemon and its HTTP API.

:class:`PlacementService` glues the service layers together — a
:class:`~repro.service.scheduler.Scheduler` (dedupe on, per-tenant
quotas), a :class:`~repro.service.warm.WarmPool` of warm workers, an
:class:`EventRouter` that fans runtime events out to streaming clients,
a shared :class:`~repro.runtime.cache.ResultCache`, and a write-ahead
*journal* that makes the daemon restartable: every submission and every
terminal transition is appended to ``<state>/journal.jsonl`` (flush +
fsync), so a killed daemon replays the journal on start and resubmits
every in-flight ticket with ``resume=True`` — the GP loop picks each
job up from its spilled checkpoint under ``<state>/checkpoints``.

The HTTP face is stdlib-only (``http.server.ThreadingHTTPServer``):

====== ============================== ===================================
POST   ``/jobs``                      submit a job spec → lifecycle entry
GET    ``/jobs``                      list entries (submission order)
GET    ``/jobs/<ticket>``             one entry (state, attempts, result)
GET    ``/jobs/<ticket>/report``      the full FlowReport of a done job
GET    ``/jobs/<ticket>/events``      the job's JSONL event stream;
                                      ``?follow=1`` keeps the connection
                                      open and streams live events until
                                      the job is terminal
POST   ``/jobs/<ticket>/cancel``      cancel (queued: immediate;
                                      running: worker killed)
POST   ``/groups/<group>/cancel``     cancel every non-terminal job of a
                                      submission group (cohort scope)
GET    ``/stats``                     scheduler + cache + worker counts,
                                      per-tenant queue depths and limits
GET    ``/healthz``                   liveness probe
====== ============================== ===================================

Job specs are the ``repro batch`` manifest schema (see
:meth:`~repro.runtime.job.PlacementJob.from_dict`), optionally wrapped
as ``{"job": {...}, "priority": 3, "tenant": "ci", "group": "cohort-1"}``.
A resubmission of an identical spec dedupes onto the in-flight run
(shared execution, own ticket); a spec already in the result cache
resolves instantly with ``cached=True`` and HPWL/metrics identical to a
``repro place`` of the same spec.

Backpressure: with ``max_queue_depth`` set, a tenant whose *queued*
backlog (running jobs don't count) is at the cap gets HTTP 429 with a
``Retry-After`` header estimated from recent job durations.  Dedupe
followers are exempt — they cost nothing to queue — as are the
daemon's internal retries.

Supervision (see :mod:`repro.supervision`): a
:class:`~repro.supervision.supervisor.Supervisor` watches the fleet —
hung jobs (no heartbeat within the hang timeout while iterations
stopped advancing) are preempted early and resumed from their
checkpoint instead of waiting out the wall-clock deadline; flapping
workers (crash/hang/timeout EWMA below threshold) are quarantined out
of rotation, probed with a canary job and restored or replaced; the
ResultCache, the shared-memory DesignStore and the journal fsync path
sit behind circuit breakers whose open states select degraded modes
(cache-bypass, cold-attach, buffered journaling with a bounded loss
window).  While any breaker is open or a worker quarantined the
service is *degraded*: ``/healthz`` says so and the brownout
controller sheds low-priority submits with HTTP 503 + ``Retry-After``.
A draining daemon answers 503 on ``/healthz`` so load balancers fail
over before the socket goes away.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.pipeline import FlowReport
from repro.runtime.cache import ResultCache
from repro.runtime.events import EventLog, RuntimeEvent
from repro.runtime.job import JobResult, PlacementJob
from repro.runtime.pool import backoff_delay
from repro.service.journal import Journal, read_journal
from repro.service.scheduler import QueueFull, ScheduledJob, Scheduler
from repro.service.warm import WarmPool
from repro.supervision.breakers import GuardedResultCache
from repro.supervision.brownout import BrownoutShed
from repro.supervision.supervisor import SupervisionConfig, Supervisor


class EventRouter(EventLog):
    """An :class:`EventLog` that also indexes events per job for
    streaming: followers block on :meth:`wait_job_events` and wake on
    every append to their job's stream."""

    def __init__(self, path: Optional[str] = None) -> None:
        super().__init__(path=path)
        self._stream_cond = threading.Condition()
        self._per_job: Dict[str, List[RuntimeEvent]] = {}

    def emit(self, kind: str, job_id: str, **payload: Any) -> RuntimeEvent:
        event = super().emit(kind, job_id, **payload)
        with self._stream_cond:
            self._per_job.setdefault(job_id, []).append(event)
            self._stream_cond.notify_all()
        return event

    def job_events(self, job_id: str, start: int = 0) -> List[RuntimeEvent]:
        with self._stream_cond:
            return list(self._per_job.get(job_id, ())[start:])

    def wait_job_events(self, job_id: str, start: int,
                        timeout: float = 0.5) -> List[RuntimeEvent]:
        """Events past ``start``, blocking up to ``timeout`` for one."""
        deadline = time.monotonic() + timeout
        with self._stream_cond:
            while True:
                stream = self._per_job.get(job_id, ())
                if len(stream) > start:
                    return list(stream[start:])
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._stream_cond.wait(timeout=remaining)


@dataclass
class _ActiveJob:
    """One ticket currently leased to a warm worker."""

    entry: ScheduledJob
    worker: int
    started: float
    deadline: Optional[float]
    pid: Optional[int] = None
    picked: bool = False


class PlacementService:
    """The daemon core (usable in-process, without HTTP, for tests).

    ``state_dir`` is the daemon's durable root::

        <state_dir>/journal.jsonl   # submissions + terminal transitions
        <state_dir>/events.jsonl    # the full runtime event mirror
        <state_dir>/cache/          # shared ResultCache
        <state_dir>/checkpoints/    # GP checkpoint spills (crash resume)

    Call :meth:`start` to begin executing (journal replay happens
    there), :meth:`stop` for a graceful drain.  All public methods are
    thread-safe — the HTTP handlers call straight into them.
    """

    def __init__(
        self,
        state_dir: str,
        workers: int = 2,
        start_method: Optional[str] = None,
        heartbeat_every: int = 25,
        retry_backoff: float = 0.25,
        retry_backoff_max: float = 30.0,
        quotas: Optional[Dict[str, int]] = None,
        default_quota: Optional[int] = None,
        max_resident: int = 8,
        max_queue_depth: Optional[int] = None,
        queue_limits: Optional[Dict[str, int]] = None,
        supervision: Optional[SupervisionConfig] = None,
        fault_plan=None,
    ) -> None:
        self.state_dir = os.path.abspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.checkpoint_dir = os.path.join(self.state_dir, "checkpoints")
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.events = EventRouter(
            path=os.path.join(self.state_dir, "events.jsonl")
        )
        self.supervision = supervision or SupervisionConfig()
        self.fault_plan = fault_plan     # chaos harness seams (or None)
        self.supervisor = Supervisor(self.supervision,
                                     on_event=self.events.emit)
        self.cache = GuardedResultCache(
            ResultCache(os.path.join(self.state_dir, "cache")),
            breaker=self.supervisor.breakers["cache"],
            slow_op_seconds=self.supervision.slow_op_seconds,
            fault_hook=(fault_plan.io_hook("cache-get", "cache-put")
                        if fault_plan is not None else None),
        )
        self.scheduler = Scheduler(cache=self.cache, events=self.events,
                                   quotas=quotas,
                                   default_quota=default_quota,
                                   dedupe=True,
                                   max_queue_depth=max_queue_depth,
                                   queue_limits=queue_limits)
        self.workers = max(1, int(workers))
        self.start_method = start_method
        self.heartbeat_every = heartbeat_every
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_max = float(retry_backoff_max)
        self.max_resident = max_resident
        self.started_ts = time.time()
        self.pool: Optional[WarmPool] = None
        self._journal_path = os.path.join(self.state_dir, "journal.jsonl")
        self.journal = Journal(
            self._journal_path,
            breaker=self.supervisor.breakers["journal"],
            fault_hook=(fault_plan.io_hook("journal-append")
                        if fault_plan is not None else None),
            slow_op_seconds=self.supervision.slow_op_seconds,
            max_buffered=self.supervision.journal_buffer,
        )
        self._journal_lock = threading.Lock()
        self._journaled_terminal: set = set()
        self._active: Dict[str, _ActiveJob] = {}
        self._crash_counts: Dict[str, int] = {}
        self._timeout_counts: Dict[str, int] = {}
        self._preempt_counts: Dict[str, int] = {}
        self._stop = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self.recovered: List[str] = []       # tickets resumed on start
        self.journal_dropped = 0             # unreadable journal records
        self.journal_duplicates = 0          # duplicated terminal records

    # -- journal ------------------------------------------------------

    def _journal(self, record: Dict[str, Any]) -> None:
        self.journal.append(record)

    def _journal_terminals(self) -> None:
        """Append a ``terminal`` op for every newly-terminal ticket
        (followers resolve through their leader, so sweep them all).

        The whole sweep holds ``_journal_lock``: it runs from the drive
        loop *and* from HTTP cancel threads, and the seen-set test and
        the append must be one atomic step or two sweeps racing on the
        same ticket both journal it.  (The :class:`Journal` has its own
        leaf lock; ``_journal_lock`` guards the seen-set.)
        """
        with self._journal_lock:
            for entry in self.scheduler.entries():
                if entry.terminal \
                        and entry.ticket not in self._journaled_terminal:
                    self._journaled_terminal.add(entry.ticket)
                    self.journal.append(
                        {"op": "terminal", "ticket": entry.ticket,
                         "state": entry.state,
                         "job_id": entry.job.job_id})

    def _replay_journal(self) -> None:
        """Resubmit every ticket the previous life left in flight.

        Parsing (:func:`~repro.service.journal.read_journal`) survives
        torn tail lines, interleaved partial records and duplicated
        terminal records — all fold into one consistent ticket table.
        """
        replay = read_journal(self._journal_path)
        self.journal_dropped += replay.dropped
        self.journal_duplicates += replay.duplicate_terminals
        with self._journal_lock:
            self._journaled_terminal.update(
                ticket for ticket in replay.submitted
                if ticket in replay.finished)
        for ticket in replay.pending():
            record = replay.submitted[ticket]
            try:
                job = PlacementJob.from_dict(record["job"])
            except (ValueError, TypeError):  # spec no longer parses
                self.journal_dropped += 1
                continue
            entry = self.scheduler.submit(
                job,
                priority=int(record.get("priority", 0)),
                tenant=record.get("tenant", "default"),
                ticket=ticket,
                resume=True,
                group=record.get("group"),
                enforce_limit=False,
            )
            self.recovered.append(entry.ticket)
            self.events.emit("recovery", job.job_id,
                             action="resubmitted", ticket=entry.ticket,
                             resume=True)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "PlacementService":
        """Replay the journal, spawn the warm pool and the drive loop."""
        self._replay_journal()
        self.pool = WarmPool(
            workers=self.workers,
            start_method=self.start_method,
            heartbeat_every=self.heartbeat_every,
            checkpoint_dir=self.checkpoint_dir,
            max_resident=self.max_resident,
        )
        if self.pool.store is not None:
            # Shared-memory publishes degrade to cold-attach when the
            # design-store breaker is open.
            self.pool.store_guard = self.supervisor.breakers["design-store"]
        self._loop_thread = threading.Thread(
            target=self._loop, daemon=True, name="placement-service-loop"
        )
        self._loop_thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop: the loop exits, workers shut down, unfinished
        tickets stay un-journaled so the next start resumes them.

        Draining starts immediately: new submissions are refused and
        ``/healthz`` answers 503 so a load balancer can fail over
        before the socket disappears."""
        self.supervisor.drain()
        self._stop.set()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=timeout)
        if self.pool is not None:
            self.pool.shutdown()
        self.scheduler.close()
        self.events.flush()
        self.journal.flush()     # drain any buffered (degraded) records

    # -- client surface ------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> ScheduledJob:
        """Submit one job spec (manifest schema, optionally wrapped in
        ``{"job": ..., "priority": ..., "tenant": ..., "group": ...}``).

        Raises :class:`~repro.service.scheduler.QueueFull` when the
        tenant's queued backlog is at its depth limit, and
        :class:`~repro.supervision.brownout.BrownoutShed` when the
        brownout controller refuses the submission (degraded service
        shedding low priorities, or draining) — nothing is journaled
        for a rejected submission.
        """
        priority = 0
        tenant = "default"
        group = None
        if "job" in spec and isinstance(spec["job"], dict):
            priority = int(spec.get("priority", 0))
            tenant = str(spec.get("tenant", "default"))
            group = spec.get("group")
            spec = spec["job"]
        job = PlacementJob.from_dict(spec)
        self.supervisor.admit(priority, job_id=job.job_id, tenant=tenant)
        entry = self.scheduler.submit(job, priority=priority, tenant=tenant,
                                      group=group)
        self._journal({"op": "submit", "ticket": entry.ticket,
                       "job": job.to_dict(), "priority": priority,
                       "tenant": tenant, "group": group})
        return entry

    def cancel(self, ticket: str) -> Optional[str]:
        outcome = self.scheduler.cancel(ticket)
        if outcome == "cancelled":
            self._journal_terminals()
        return outcome

    def cancel_group(self, group: str) -> Dict[str, int]:
        """Cancel every non-terminal entry of a submission group.

        Queued entries resolve immediately; running ones are killed by
        the drive loop on its next sweep (it polls
        ``cancel_requested``).
        """
        counts = self.scheduler.cancel_group(group)
        if counts["cancelled"]:
            self._journal_terminals()
        return counts

    def get(self, ticket: str) -> Optional[ScheduledJob]:
        return self.scheduler.get(ticket)

    def entries(self) -> List[ScheduledJob]:
        return self.scheduler.entries()

    def stats(self) -> Dict[str, Any]:
        stats = self.scheduler.stats()
        stats["cache"] = self.cache.stats()
        stats["uptime_s"] = time.time() - self.started_ts
        stats["recovered"] = list(self.recovered)
        stats["journal_dropped"] = self.journal_dropped
        stats["journal_duplicates"] = self.journal_duplicates
        stats["journal"] = self.journal.stats()
        stats["supervisor"] = self.supervisor.snapshot()
        if self.pool is not None:
            stats["workers"] = {
                "total": len(self.pool.workers),
                "idle": len(self.pool.idle_workers()),
                "quarantined": self.pool.quarantined(),
                "inline": self.pool.inline,
            }
        return stats

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """The ``/healthz`` answer: ``(http_status, payload)``.

        ``ok`` while everything is closed and in rotation; ``degraded``
        (still 200 — the instance serves, just worse) while a breaker
        is open or a worker quarantined; ``draining`` answers 503 so
        load balancers pull the instance before shutdown completes.
        """
        snapshot = self.supervisor.snapshot()
        state = snapshot["state"]
        journal = self.journal.stats()
        journal.pop("breaker", None)   # already under breakers
        payload = {
            "ok": state == "ok",
            "status": state,
            "uptime_s": time.time() - self.started_ts,
            "breakers": {name: info["state"]
                         for name, info in snapshot["breakers"].items()},
            "quarantined": snapshot["quarantined"],
            "journal": journal,
            "counters": snapshot["counters"],
        }
        return (503 if state == "draining" else 200), payload

    def wait(self, tickets: Optional[List[str]] = None,
             timeout: Optional[float] = None) -> bool:
        return self.scheduler.wait(tickets, timeout=timeout)

    # -- the drive loop ------------------------------------------------

    def _loop(self) -> None:
        pool = self.pool
        while not self._stop.is_set():
            self._dispatch(pool)
            for message in pool.poll(0.05):
                self._handle_message(message)
            self._police_active(pool)
        # Graceful drain: kill running workers; their tickets stay
        # non-terminal in the journal, so the next start resumes them
        # from checkpoints.
        for ticket, active in list(self._active.items()):
            pool.kill_worker(active.worker, respawn=False)
            self.events.emit("interrupted", active.entry.job.job_id,
                             ticket=ticket, resumable=True)
        self._active.clear()

    def _dispatch(self, pool: WarmPool) -> None:
        while pool.idle_workers():
            entry = self.scheduler.lease(timeout=0.0)
            if entry is None:
                return
            if entry.cancel_requested:
                self.scheduler.mark_cancelled(entry)
                self._journal_terminals()
                continue
            if entry.attempts == 1:
                hit = self.scheduler.cache_lookup(entry)
                if hit is not None:
                    self._journal_terminals()
                    continue
            chaos = None
            if self.fault_plan is not None:
                chaos = self.fault_plan.dispatch_chaos(
                    entry.job.job_id, entry.attempts)
                if chaos is not None:
                    self.events.emit("chaos", entry.job.job_id,
                                     fault="crash-on-attach",
                                     ticket=entry.ticket,
                                     attempt=entry.attempts)
            worker = pool.submit(entry.ticket, entry.job,
                                 resume=entry.resume, chaos=chaos)
            timeout = entry.job.timeout
            now = time.perf_counter()
            self._active[entry.ticket] = _ActiveJob(
                entry=entry, worker=worker, started=now,
                deadline=(now + timeout) if timeout else None,
            )
            self.supervisor.liveness.track(entry.ticket,
                                           entry.job.job_id, worker)

    def _handle_message(self, message: Dict[str, Any]) -> None:
        kind = message.get("event")
        if kind == "_picked":
            ticket = message["ticket"]
            self.supervisor.liveness.touch(ticket)
            active = self._active.get(ticket)
            if active is not None:
                active.pid = message.get("pid")
                active.picked = True
                self.events.emit("started", message["job_id"],
                                 pid=active.pid,
                                 attempt=active.entry.attempts,
                                 resume=active.entry.resume,
                                 ticket=ticket)
            return
        if kind == "_result":
            ticket = message.get("ticket")
            if ticket is not None \
                    and self.supervisor.canary_worker(ticket) is not None:
                self._resolve_canary(ticket, message)
                return
            self._finish(message)
            return
        self.supervisor.liveness.observe(message)
        self.events.put(message)         # loop_start / heartbeat / ...

    def _finish(self, message: Dict[str, Any]) -> None:
        ticket = message.get("ticket")
        active = self._active.pop(ticket, None)
        if ticket is not None:
            self.supervisor.liveness.forget(ticket)
        if active is None:
            return                       # late result after kill/cancel
        entry = active.entry
        job = entry.job
        elapsed = time.perf_counter() - active.started
        status = message.get("status")
        self._note_attach(active.worker, ticket, message)
        # done / cancelled / failed all mean the worker itself worked;
        # only crashes, timeouts and preemptions count against health.
        self._note_worker(self.pool, active.worker, True)
        if status == "done":
            result = JobResult.from_dict(message["result"])
            result.x = message.get("x")
            result.y = message.get("y")
            result.attempts = entry.attempts
            preemptions = self._preempt_counts.pop(ticket, 0)
            if preemptions and result.report is not None:
                for stage in result.report.stages:
                    if stage.name == "runtime":
                        stage.metrics["preemptions"] = preemptions
            self.events.emit("finished", job.job_id, hpwl=result.hpwl,
                             seconds=result.seconds,
                             attempt=entry.attempts,
                             ticket=ticket, **{
                                 "cache_hits": self.cache.hits,
                                 "cache_misses": self.cache.misses,
                                 "cache_evictions": self.cache.evictions,
                             })
            self.scheduler.finish(entry, result)
        elif status == "cancelled":
            self.scheduler.mark_cancelled(entry, seconds=elapsed)
        else:
            error = message.get("error", "worker failure")
            crashes = self._crash_counts.get(ticket, 0)
            self.events.emit("failed", job.job_id, reason="error",
                             error=error, attempt=entry.attempts,
                             ticket=ticket)
            report = message.get("report")
            self.scheduler.finish(entry, JobResult(
                job_id=job.job_id, status="failed",
                seed=message.get("seed", job.effective_seed()),
                seconds=elapsed, error=error, attempts=entry.attempts,
                report=FlowReport.from_dict(report) if report else None,
            ))
            self._crash_counts.pop(ticket, None)
        self._journal_terminals()

    # -- supervision helpers -------------------------------------------

    def _note_worker(self, pool: WarmPool, worker: Optional[int],
                     ok: bool) -> None:
        """Fold one worker outcome into its health EWMA; quarantine on
        flapping (two consecutive failures at the default alpha)."""
        if worker is None:
            return
        if self.supervisor.note_outcome(worker, ok):
            pool.quarantine(worker)
            self.supervisor.begin_quarantine(worker)

    def _note_attach(self, worker: Optional[int], ticket: str,
                     message: Dict[str, Any]) -> None:
        """Design-store breaker feedback: a cold load despite a shm
        manifest means the worker failed to attach (unlinked segment).
        """
        sent = self.pool.consume_manifest_flag(ticket)
        report = message.get("report") or (
            message.get("result", {}) or {}).get("report")
        warm = None
        if isinstance(report, dict):
            for stage in report.get("stages", []):
                if stage.get("name") == "runtime":
                    warm = stage.get("metrics", {}).get("warm")
        breaker = self.supervisor.breakers["design-store"]
        if sent and warm == "cold":
            breaker.record_failure()
        elif warm in ("attached", "resident"):
            breaker.record_success()

    def _preempt(self, pool: WarmPool, ticket: str) -> None:
        """Kill a hung worker early and requeue with checkpoint resume
        (or fail the job once the preemption budget is spent)."""
        active = self._active.pop(ticket)
        entry = active.entry
        job = entry.job
        snap = self.supervisor.liveness.snapshot().get(ticket, {})
        idle = snap.get("idle_s")
        iteration = snap.get("iteration", -1)
        self.supervisor.liveness.forget(ticket)
        pool.kill_worker(active.worker)
        pool.consume_manifest_flag(ticket)
        count = self._preempt_counts.get(ticket, 0) + 1
        self._preempt_counts[ticket] = count
        entry.preemptions = count
        self.supervisor.note_preemption()
        self.events.emit(
            "preempted", job.job_id, ticket=ticket,
            worker=active.worker, attempt=entry.attempts,
            idle_s=round(idle, 3) if idle is not None else None,
            iteration=iteration, preemptions=count,
        )
        self._note_worker(pool, active.worker, False)
        if count <= self.supervision.preempt_retries:
            self._retry(entry, "hung", ticket)
        else:
            message = (
                f"worker hung (no progress for "
                f"{self.supervision.hang_timeout:g}s); preemption "
                f"budget exhausted ({count} preemption(s), "
                f"{self.supervision.preempt_retries} retry(ies) allowed)"
            )
            self.events.emit("failed", job.job_id, reason="hung",
                             error=message, attempt=entry.attempts,
                             preemptions=count, ticket=ticket)
            self.scheduler.finish(entry, JobResult(
                job_id=job.job_id, status="failed",
                seed=job.effective_seed(),
                seconds=time.perf_counter() - active.started,
                error=message, attempts=entry.attempts,
            ))
            self._preempt_counts.pop(ticket, None)
            self._journal_terminals()

    def _canary_job(self, worker: int) -> PlacementJob:
        """A tiny deterministic probe job for a quarantined worker."""
        return PlacementJob(
            design="fft_1", cells=48, seed=1 + worker,
            params={"max_iterations": 4, "min_iterations": 2},
            tag="canary",
        )

    def _resolve_canary(self, ticket: str, message: Dict[str, Any],
                        dead: bool = False) -> None:
        """Judge a canary probe: restore the worker or replace it."""
        worker = self.supervisor.canary_worker(ticket)
        if worker is None:
            return
        self.pool.consume_manifest_flag(ticket)
        healthy = (not dead) and message.get("status") == "done"
        if healthy:
            self.pool.unquarantine(worker)
        else:
            self.pool.kill_worker(worker, respawn=True)
            self.pool.unquarantine(worker)
        self.supervisor.end_quarantine(ticket, worker, healthy)

    def _dispatch_probes(self, pool: WarmPool) -> None:
        """Send canary probes to quarantined workers whose cool-down
        elapsed.  A dead quarantined worker skips the probe and goes
        straight to replacement."""
        for worker in self.supervisor.probe_due():
            if not pool.worker_alive(worker):
                pool.kill_worker(worker, respawn=True)
                pool.unquarantine(worker)
                self.supervisor.end_quarantine(None, worker,
                                               healthy=False)
                continue
            if pool.worker_busy(worker) is not None:
                continue                 # probe next sweep
            ordinal = self.supervisor.next_canary_ordinal()
            ticket = f"canary:{worker}:{ordinal}"
            self.supervisor.begin_probe(ticket, worker)
            pool.submit(ticket, self._canary_job(worker),
                        worker_id=worker)

    def _police_active(self, pool: WarmPool) -> None:
        """Cancellations, hangs, timeouts and crashed workers."""
        now = time.perf_counter()
        hung = {ledger.ticket
                for ledger in self.supervisor.liveness.hung()}
        for ticket in list(self._active):
            active = self._active[ticket]
            entry = active.entry
            job = entry.job
            if entry.cancel_requested:
                del self._active[ticket]
                self.supervisor.liveness.forget(ticket)
                pool.kill_worker(active.worker)
                pool.consume_manifest_flag(ticket)
                self.scheduler.mark_cancelled(
                    entry, seconds=now - active.started)
                self._journal_terminals()
            elif ticket in hung:
                # A hung worker is preempted as soon as its heartbeat
                # goes silent — strictly earlier than the wall-clock
                # deadline would catch it.
                self._preempt(pool, ticket)
            elif active.deadline is not None and now > active.deadline:
                del self._active[ticket]
                self.supervisor.liveness.forget(ticket)
                pool.kill_worker(active.worker)
                pool.consume_manifest_flag(ticket)
                self._note_worker(pool, active.worker, False)
                count = self._timeout_counts.get(ticket, 0) + 1
                self._timeout_counts[ticket] = count
                if count <= job.timeout_retries:
                    self._retry(entry, "timeout", ticket)
                else:
                    message = (
                        f"timeout after {job.timeout:g}s (killed); "
                        f"budget exhausted ({count} timeout(s), "
                        f"{job.timeout_retries} retry(ies) allowed)"
                    )
                    self.events.emit(
                        "failed", job.job_id, reason="timeout",
                        error=message, attempt=entry.attempts,
                        crashes=self._crash_counts.get(ticket, 0),
                        timeouts=count, ticket=ticket,
                    )
                    self.scheduler.finish(entry, JobResult(
                        job_id=job.job_id, status="timeout",
                        seed=job.effective_seed(),
                        seconds=now - active.started,
                        error=message, attempts=entry.attempts,
                    ))
                    self._journal_terminals()
            elif not pool.worker_alive(active.worker):
                # Crashed worker: one generous drain for a result that
                # beat the crash into the queue, then retry policy.
                late = pool.poll(0.2)
                for message in late:
                    self._handle_message(message)
                if ticket not in self._active:
                    continue             # the drain finished it
                del self._active[ticket]
                self.supervisor.liveness.forget(ticket)
                pool.consume_manifest_flag(ticket)
                pool.respawn_dead()
                self._note_worker(pool, active.worker, False)
                count = self._crash_counts.get(ticket, 0) + 1
                self._crash_counts[ticket] = count
                if count <= job.retries:
                    self._retry(entry, "crash", ticket)
                else:
                    message = (
                        f"worker crashed; budget exhausted "
                        f"({count} crash(es), "
                        f"{job.retries} retry(ies) allowed)"
                    )
                    self.events.emit(
                        "failed", job.job_id, reason="crash",
                        error=message, attempt=entry.attempts,
                        crashes=count,
                        timeouts=self._timeout_counts.get(ticket, 0),
                        ticket=ticket,
                    )
                    self.scheduler.finish(entry, JobResult(
                        job_id=job.job_id, status="failed",
                        seed=job.effective_seed(),
                        seconds=now - active.started,
                        error=message, attempts=entry.attempts,
                    ))
                    self._journal_terminals()
        # Canary probes whose worker died mid-probe: replace outright.
        canaries = self.supervisor.outstanding_canaries()
        for ticket, worker in list(canaries.items()):
            if not pool.worker_alive(worker):
                self._resolve_canary(ticket, {}, dead=True)
        self._dispatch_probes(pool)

    def _retry(self, entry: ScheduledJob, reason: str,
               ticket: str) -> None:
        delay = backoff_delay(entry.job.job_id, entry.attempts,
                              self.retry_backoff,
                              max_delay=self.retry_backoff_max)
        self.events.emit(
            "retry", entry.job.job_id, reason=reason,
            attempt=entry.attempts + 1, backoff=round(delay, 4),
            max_backoff=self.retry_backoff_max, resume=True,
            crashes=self._crash_counts.get(ticket, 0),
            timeouts=self._timeout_counts.get(ticket, 0),
            ticket=ticket,
        )
        self.scheduler.requeue(entry, delay=delay, resume=True)


# -- HTTP layer --------------------------------------------------------

class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the shared :class:`PlacementService`."""

    service: PlacementService = None     # installed by make_server
    protocol_version = "HTTP/1.1"

    # Silence per-request stderr logging (the event log is the record).
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- helpers ------------------------------------------------------

    def _json(self, status: int, payload: Dict[str, Any],
              headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            data = json.loads(raw.decode() or "{}")
        except (ValueError, OSError):
            return None
        return data if isinstance(data, dict) else None

    def _route(self) -> Tuple[str, List[str], Dict[str, List[str]]]:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        return parsed.path, parts, parse_qs(parsed.query)

    # -- verbs --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        _, parts, query = self._route()
        service = self.service
        if parts == ["healthz"]:
            status, payload = service.health()
            self._json(status, payload)
        elif parts == ["stats"]:
            self._json(200, service.stats())
        elif parts == ["jobs"]:
            self._json(200, {"jobs": [e.to_dict()
                                      for e in service.entries()]})
        elif len(parts) == 2 and parts[0] == "jobs":
            entry = service.get(parts[1])
            if entry is None:
                self._error(404, f"unknown ticket {parts[1]!r}")
            else:
                self._json(200, entry.to_dict())
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "report":
            entry = service.get(parts[1])
            if entry is None:
                self._error(404, f"unknown ticket {parts[1]!r}")
            elif entry.result is None or entry.result.report is None:
                self._error(404, "no report (job not done yet?)")
            else:
                self._json(200, entry.to_dict(with_report=True))
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "events":
            self._stream_events(parts[1], query)
        else:
            self._error(404, f"no route for {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        _, parts, _ = self._route()
        service = self.service
        if parts == ["jobs"]:
            spec = self._read_body()
            if spec is None:
                self._error(400, "body must be a JSON object")
                return
            try:
                entry = service.submit(spec)
            except BrownoutShed as err:
                # Brownout: the service is degraded (shedding
                # low-priority work) or draining (shedding everything).
                retry_after = max(1, int(round(err.retry_after)))
                self._json(
                    503,
                    {"error": str(err), "state": err.state,
                     "priority": err.priority,
                     "retry_after_s": err.retry_after},
                    headers={"Retry-After": str(retry_after)},
                )
                return
            except QueueFull as err:
                # Backpressure: the tenant's queued backlog is at its
                # cap.  Retry-After is the scheduler's estimate of when
                # a slot frees up, from recent job durations.
                retry_after = max(1, int(round(err.retry_after)))
                self._json(
                    429,
                    {"error": str(err), "tenant": err.tenant,
                     "queue_depth": err.depth, "queue_limit": err.limit,
                     "retry_after_s": err.retry_after},
                    headers={"Retry-After": str(retry_after)},
                )
                return
            except (ValueError, TypeError) as err:
                self._error(400, f"bad job spec: {err}")
                return
            self._json(201, entry.to_dict())
        elif len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "cancel":
            outcome = service.cancel(parts[1])
            if outcome is None:
                self._error(409, "unknown ticket or already terminal")
            else:
                self._json(200, {"ticket": parts[1], "cancel": outcome})
        elif len(parts) == 3 and parts[0] == "groups" \
                and parts[2] == "cancel":
            counts = service.cancel_group(parts[1])
            self._json(200, {"group": parts[1], **counts})
        else:
            self._error(404, f"no route for {self.path!r}")

    # -- event streaming ----------------------------------------------

    def _stream_events(self, ticket: str,
                       query: Dict[str, List[str]]) -> None:
        service = self.service
        entry = service.get(ticket)
        if entry is None:
            self._error(404, f"unknown ticket {ticket!r}")
            return
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        job_id = entry.job.job_id
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        # Stream length is unknown: close the connection to delimit.
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        try:
            while True:
                events = service.events.job_events(job_id, start=sent)
                if not events and follow and not entry.terminal:
                    events = service.events.wait_job_events(
                        job_id, start=sent, timeout=0.5
                    )
                for event in events:
                    line = json.dumps(
                        {"ticket": ticket, **event.to_dict()},
                        sort_keys=True,
                    )
                    self.wfile.write(line.encode() + b"\n")
                sent += len(events)
                self.wfile.flush()
                if not follow:
                    break
                if entry.terminal and not service.events.job_events(
                        job_id, start=sent):
                    break
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away mid-stream
        self.close_connection = True


def make_server(service: PlacementService, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 = ephemeral) serving
    the given service.  Call ``serve_forever()`` to run."""
    handler = type("BoundServiceHandler", (_ServiceHandler,),
                   {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    state_dir: str,
    host: str = "127.0.0.1",
    port: int = 8787,
    workers: int = 2,
    start_method: Optional[str] = None,
    heartbeat_every: int = 25,
    default_quota: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    announce=print,
) -> int:
    """Run the daemon until SIGINT/SIGTERM (the ``repro serve`` body)."""
    import signal

    service = PlacementService(
        state_dir=state_dir,
        workers=workers,
        start_method=start_method,
        heartbeat_every=heartbeat_every,
        default_quota=default_quota,
        max_queue_depth=max_queue_depth,
    ).start()
    server = make_server(service, host=host, port=port)
    actual_host, actual_port = server.server_address[:2]
    announce(f"repro serve: listening on http://{actual_host}:{actual_port} "
             f"(state: {service.state_dir}, workers: {workers}"
             f"{', recovered: ' + str(len(service.recovered)) + ' job(s)' if service.recovered else ''})",
             flush=True)

    stop_requested = threading.Event()

    def _signal_handler(signum, frame):  # noqa: ARG001 — signal API
        stop_requested.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(ValueError, OSError):  # platform-dependent
            previous[sig] = signal.signal(sig, _signal_handler)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for sig, old in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(sig, old)
        server.server_close()
        service.stop()
    announce("repro serve: stopped (unfinished jobs resume on restart)",
             flush=True)
    return 0
