"""The daemon's write-ahead journal, with a breaker-guarded fsync path.

Durability contract: :meth:`Journal.append` writes one JSON line,
flushes and fsyncs before returning True — a ticket whose ``submit``
record returned True survives ``kill -9``.  When the disk turns sick
(fsync raising ``OSError``, or — under chaos — fsync slower than
``slow_op_seconds``), the journal's :class:`CircuitBreaker` trips and
the journal degrades to *buffered* mode: records accumulate in a
bounded in-memory deque (the explicit loss window — a crash in this
mode loses at most ``max_buffered`` records, and ``dropped`` counts
any overflow beyond that).  Every append while the breaker is
half-open probes the real path again; the first success flushes the
whole backlog and closes the breaker.

Replay parsing lives here too (:func:`read_journal`) so corruption
recovery is testable without a daemon: torn tail lines, interleaved
partial records (valid JSON missing its keys) and duplicated terminal
records must all fold into one consistent ticket table.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set


class Journal:
    """Append-only JSONL journal with fsync durability and a breaker.

    ``fault_hook`` is the chaos seam: called as ``hook("journal-append")``
    inside the write path; it may sleep (slow-I/O fault) or raise
    ``OSError`` (failing disk).
    """

    def __init__(
        self,
        path: str,
        breaker=None,
        fault_hook: Optional[Callable[[str], None]] = None,
        slow_op_seconds: Optional[float] = None,
        max_buffered: int = 256,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = path
        self.breaker = breaker
        self.slow_op_seconds = slow_op_seconds
        self.max_buffered = max(1, int(max_buffered))
        self._fault_hook = fault_hook
        self._clock = clock
        self._lock = threading.Lock()
        self._buffered: "deque[str]" = deque()
        self._dropped = 0
        self._last_fsync: Optional[float] = None

    # -- appending ----------------------------------------------------

    def append(self, record: Dict[str, Any]) -> bool:
        """Durably append one record; returns True when it (and any
        buffered backlog) reached disk, False when it was buffered."""
        with self._lock:
            record = {"ts": self._clock(), **record}
            line = json.dumps(record, sort_keys=True)
            if self.breaker is not None and not self.breaker.allow():
                self._buffer_locked(line)
                return False
            backlog = list(self._buffered)
            try:
                elapsed = self._write_locked(backlog + [line])
            except OSError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                self._buffer_locked(line)
                return False
            self._buffered.clear()
            self._last_fsync = self._clock()
            if self.breaker is not None:
                if self.slow_op_seconds is not None \
                        and elapsed > self.slow_op_seconds:
                    # The write landed but the disk is pathologically
                    # slow — count it toward tripping into buffered
                    # mode without losing the record.
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
            return True

    def _write_locked(self, lines: List[str]) -> float:
        """Write + flush + fsync ``lines``; returns the elapsed wall."""
        started = time.perf_counter()
        if self._fault_hook is not None:
            self._fault_hook("journal-append")
        with open(self.path, "a") as fh:
            for line in lines:
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return time.perf_counter() - started

    def _buffer_locked(self, line: str) -> None:
        self._buffered.append(line)
        while len(self._buffered) > self.max_buffered:
            self._buffered.popleft()
            self._dropped += 1

    def flush(self) -> bool:
        """Best-effort drain of the buffered backlog (used at stop)."""
        with self._lock:
            if not self._buffered:
                return True
            try:
                self._write_locked(list(self._buffered))
            except OSError:
                return False
            self._buffered.clear()
            self._last_fsync = self._clock()
        return True

    # -- reporting ----------------------------------------------------

    @property
    def buffered(self) -> int:
        with self._lock:
            return len(self._buffered)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def last_fsync_age(self) -> Optional[float]:
        """Seconds since the last successful fsync (None before the
        first append)."""
        with self._lock:
            if self._last_fsync is None:
                return None
            return max(0.0, self._clock() - self._last_fsync)

    def stats(self) -> Dict[str, Any]:
        age = self.last_fsync_age()
        stats: Dict[str, Any] = {
            "buffered": self.buffered,
            "dropped": self.dropped,
            "last_fsync_age_s": round(age, 4) if age is not None else None,
        }
        if self.breaker is not None:
            stats["breaker"] = self.breaker.to_dict()
        return stats


# -- replay ------------------------------------------------------------

@dataclass
class JournalReplay:
    """The consistent ticket table folded out of one journal file."""

    submitted: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    finished: Set[str] = field(default_factory=set)
    dropped: int = 0                 # unreadable or partial records
    duplicate_terminals: int = 0     # terminal re-journaled for a ticket

    def pending(self) -> List[str]:
        """Tickets submitted but never journaled terminal, in
        submission order — the resume set."""
        return [ticket for ticket in self.submitted
                if ticket not in self.finished]


def read_journal(path: str) -> JournalReplay:
    """Parse a journal into a :class:`JournalReplay`, surviving every
    corruption class a crash can leave behind.

    * A torn tail (the crash interrupted the last write) fails JSON
      parsing and is dropped.
    * An interleaved partial record — a line that parses but is missing
      its op's required keys (``ticket``; ``job`` for submits) — is
      dropped rather than poisoning the table.
    * A duplicated terminal record (two sweeps raced before the
      seen-set existed, or a replayed buffer) folds idempotently;
      ``duplicate_terminals`` counts them for the report.

    Later records win for resubmission metadata, matching append order.
    """
    replay = JournalReplay()
    if not os.path.isfile(path):
        return replay
    with open(path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                replay.dropped += 1
                continue
            if not isinstance(record, dict):
                replay.dropped += 1
                continue
            op = record.get("op")
            ticket = record.get("ticket")
            if op == "submit":
                if not ticket or not isinstance(record.get("job"), dict):
                    replay.dropped += 1
                    continue
                replay.submitted[ticket] = record
            elif op == "terminal":
                if not ticket:
                    replay.dropped += 1
                    continue
                if ticket in replay.finished:
                    replay.duplicate_terminals += 1
                else:
                    replay.finished.add(ticket)
            else:
                replay.dropped += 1
    return replay
