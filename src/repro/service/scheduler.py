"""The scheduler core: job lifecycle management for every executor.

This module owns what :class:`~repro.runtime.pool.WorkerPool` used to
mix in with process management — which job runs next, and what state
each job is in.  Executors (the batch pool, the daemon's warm pool)
*lease* runnable entries, run them however they like, and report the
outcome back; everything queue-shaped lives here:

* a priority queue (higher ``priority`` first, FIFO within a priority,
  retries jump to the front like the old pool's ``pending.insert(0)``),
* per-tenant quotas on concurrently *running* jobs,
* job states: ``queued → running → done | failed | cancelled``,
* cancellation (immediate for queued entries, a cooperative flag the
  executor observes for running ones),
* backoff gates (``not_before``) for retry scheduling, and
* dedupe — against the content-addressed
  :class:`~repro.runtime.cache.ResultCache` via :meth:`cache_lookup`,
  and against identical in-flight submissions (same
  :meth:`~repro.runtime.job.PlacementJob.content_hash`): a duplicate
  submit becomes a *follower* that resolves with the leader's result
  without running anything.

The scheduler emits the queue-side runtime events (``queued``,
``cached``, ``cache-evicted``, ``deduped``, ``cancelled``); executors
emit the execution-side ones (``started``, ``finished``, ``failed``,
``retry``, ``interrupted``) so event payloads stay exactly what the
batch runtime produced before the split.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.events import EventLog
from repro.runtime.job import JobResult, PlacementJob

#: The five job states of the service layer.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))


class QueueFull(RuntimeError):
    """A tenant's submit was rejected: its queued backlog is at the cap.

    ``retry_after`` is a best-effort hint (seconds) derived from recent
    job durations — the HTTP layer surfaces it as a ``Retry-After``
    header with a 429 status.
    """

    def __init__(self, tenant: str, depth: int, limit: int,
                 retry_after: float) -> None:
        super().__init__(
            f"queue full for tenant {tenant!r}: {depth} queued >= "
            f"limit {limit}"
        )
        self.tenant = tenant
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after

#: JobResult.status → terminal scheduler state.
_STATUS_STATE = {
    "done": DONE,
    "failed": FAILED,
    "timeout": FAILED,
    "cancelled": CANCELLED,
    "interrupted": FAILED,
}


@dataclass
class ScheduledJob:
    """One submission's lifecycle record (the scheduler's unit of work).

    A *ticket* identifies the submission (two submissions of the same
    spec get two tickets but may share one execution via dedupe);
    ``job.job_id`` identifies the content.  ``not_before`` gates
    leasing (retry backoff); ``resume`` tells the executor to start the
    attempt from the job's spilled checkpoint.  ``cancel_requested``
    is the cooperative cancel flag for running entries — the executor
    that holds the lease observes it and calls :meth:`Scheduler.finish`
    with a cancelled result.
    """

    ticket: str
    job: PlacementJob
    priority: int = 0
    tenant: str = "default"
    group: Optional[str] = None          # cohort label (cancel_group)
    state: str = QUEUED
    attempts: int = 0
    submitted_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    not_before: float = 0.0              # perf_counter gate for leasing
    resume: bool = False
    preemptions: int = 0                 # hung-worker early kills
    cancel_requested: bool = False
    deduped_onto: Optional[str] = None   # leader ticket, for followers
    result: Optional[JobResult] = None
    queued_counted: bool = field(default=False, repr=False)  # depth flag

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, with_report: bool = False) -> Dict[str, Any]:
        """JSON view for the HTTP API and the journal."""
        data: Dict[str, Any] = {
            "ticket": self.ticket,
            "job_id": self.job.job_id,
            "content_hash": self.job.content_hash(),
            "state": self.state,
            "terminal": self.terminal,
            "priority": self.priority,
            "tenant": self.tenant,
            "group": self.group,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "cancel_requested": self.cancel_requested,
            "deduped_onto": self.deduped_onto,
        }
        if self.result is not None:
            data["result"] = {
                "status": self.result.status,
                "hpwl": self.result.hpwl,
                "seconds": self.result.seconds,
                "cached": self.result.cached,
                "attempts": self.result.attempts,
                "error": self.result.error,
            }
            if with_report and self.result.report is not None:
                data["result"]["report"] = self.result.report.to_dict()
        return data


class Scheduler:
    """Async-friendly job queue + lifecycle tracker.

    Thread-safe: submitters, executors and HTTP handlers may call in
    concurrently; :meth:`lease` and :meth:`wait` block on an internal
    condition.  ``quotas`` maps tenant → max concurrently running
    entries (``default_quota`` applies to unlisted tenants; ``None``
    means unbounded).  ``dedupe=False`` (the batch pool) disables
    in-flight coalescing so a manifest behaves exactly as before the
    layer split; the cache path is always available but only consulted
    when an executor calls :meth:`cache_lookup`.
    """

    def __init__(
        self,
        cache=None,
        events: Optional[EventLog] = None,
        quotas: Optional[Dict[str, int]] = None,
        default_quota: Optional[int] = None,
        dedupe: bool = True,
        max_queue_depth: Optional[int] = None,
        queue_limits: Optional[Dict[str, int]] = None,
    ) -> None:
        self.cache = cache
        self.events = events if events is not None else EventLog()
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.dedupe = dedupe
        self.max_queue_depth = max_queue_depth
        self.queue_limits = dict(queue_limits or {})
        self._cond = threading.Condition()
        self._entries: Dict[str, ScheduledJob] = {}
        self._order: List[str] = []          # submission order (results)
        self._heap: List[tuple] = []         # (-priority, seq, ticket)
        self._seq = itertools.count(1)
        self._front = itertools.count(0, -1)  # retries jump the queue
        self._running_per_tenant: Dict[str, int] = {}
        self._queued_per_tenant: Dict[str, int] = {}
        self._recent_seconds: List[float] = []  # retry_after estimator
        self._inflight: Dict[str, str] = {}  # content_hash → leader ticket
        self._ticket_seq = itertools.count(1)
        self._closed = False

    # -- submission ---------------------------------------------------

    def submit(
        self,
        job: PlacementJob,
        priority: int = 0,
        tenant: str = "default",
        ticket: Optional[str] = None,
        resume: bool = False,
        group: Optional[str] = None,
        enforce_limit: bool = True,
    ) -> ScheduledJob:
        """Queue one job; returns its lifecycle entry.

        Emits ``queued``.  With dedupe on, a submission whose content
        hash is already in flight becomes a follower of the in-flight
        leader (emits ``deduped``) and never reaches the queue.

        ``group`` labels the entry for :meth:`cancel_group` (cohort
        cancellation).  When a queue-depth limit applies to the tenant
        (``queue_limits``/``max_queue_depth``) and its queued backlog is
        at the cap, raises :class:`QueueFull` — dedupe followers are
        exempt (they cost nothing to queue), as are internal requeues
        (retries must never be dropped by backpressure) and
        ``enforce_limit=False`` submissions (journal replay: already-
        accepted work must not be dropped on restart).
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if ticket is None:
                ticket = f"t{next(self._ticket_seq):04d}-" \
                         f"{job.content_hash()[:8]}"
            if ticket in self._entries:
                raise ValueError(f"duplicate ticket {ticket!r}")
            key = job.content_hash()
            leader = self._inflight.get(key) if self.dedupe else None
            is_follower = (leader is not None
                           and not self._entries[leader].terminal)
            if not is_follower and enforce_limit:
                limit = self.queue_limits.get(tenant, self.max_queue_depth)
                depth = self._queued_per_tenant.get(tenant, 0)
                if limit is not None and depth >= limit:
                    raise QueueFull(tenant, depth, limit,
                                    self._retry_after_hint())
            entry = ScheduledJob(ticket=ticket, job=job, priority=priority,
                                 tenant=tenant, group=group, resume=resume)
            self._entries[ticket] = entry
            self._order.append(ticket)
            self.events.emit("queued", job.job_id,
                             seed=job.effective_seed(), placer=job.placer)
            if is_follower:
                entry.deduped_onto = leader
                self.events.emit("deduped", job.job_id, ticket=ticket,
                                 leader=leader, key=key)
            else:
                self._inflight[key] = ticket
                heapq.heappush(self._heap,
                               (-priority, next(self._seq), ticket))
                self._count_queued(entry)
            self._cond.notify_all()
            return entry

    def _count_queued(self, entry: ScheduledJob) -> None:
        entry.queued_counted = True
        self._queued_per_tenant[entry.tenant] = (
            self._queued_per_tenant.get(entry.tenant, 0) + 1
        )

    def _uncount_queued(self, entry: ScheduledJob) -> None:
        if not entry.queued_counted:
            return
        entry.queued_counted = False
        count = self._queued_per_tenant.get(entry.tenant, 0) - 1
        if count > 0:
            self._queued_per_tenant[entry.tenant] = count
        else:
            self._queued_per_tenant.pop(entry.tenant, None)

    def _retry_after_hint(self) -> float:
        """Seconds until a queue slot plausibly frees up."""
        if not self._recent_seconds:
            return 5.0
        mean = sum(self._recent_seconds) / len(self._recent_seconds)
        return max(1.0, round(mean, 1))

    # -- executor side ------------------------------------------------

    def lease(self, timeout: Optional[float] = 0.0) -> Optional[ScheduledJob]:
        """Claim the next runnable entry, or None.

        Runnable = queued, past its ``not_before`` gate, tenant under
        quota, not a dedupe follower, not cancel-requested.  ``timeout``
        is how long to block waiting for one (0 = poll, None = forever
        — returns None once the scheduler is closed and drained).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                entry = self._pop_runnable()
                if entry is not None:
                    self._uncount_queued(entry)
                    entry.state = RUNNING
                    entry.attempts += 1
                    entry.started_ts = entry.started_ts or time.time()
                    tenant = entry.tenant
                    self._running_per_tenant[tenant] = (
                        self._running_per_tenant.get(tenant, 0) + 1
                    )
                    return entry
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait(timeout=0.1)
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(timeout=min(remaining, 0.1))

    def _pop_runnable(self) -> Optional[ScheduledJob]:
        """Highest-priority runnable entry; skipped entries stay queued."""
        now = time.perf_counter()
        skipped: List[tuple] = []
        found = None
        while self._heap:
            item = heapq.heappop(self._heap)
            entry = self._entries.get(item[2])
            if entry is None or entry.state != QUEUED:
                continue                      # cancelled / resolved entry
            if entry.not_before > now or self._at_quota(entry.tenant):
                skipped.append(item)
                continue
            found = entry
            break
        for item in skipped:
            heapq.heappush(self._heap, item)
        return found

    def _at_quota(self, tenant: str) -> bool:
        quota = self.quotas.get(tenant, self.default_quota)
        if quota is None:
            return False
        return self._running_per_tenant.get(tenant, 0) >= quota

    def cache_lookup(self, entry: ScheduledJob) -> Optional[JobResult]:
        """Short-circuit a leased entry through the result cache.

        Called by executors at dispatch time (first attempt only, like
        the pre-split pool).  On a hit the entry resolves ``done`` with
        the cached result and ``cached``/``cache-evicted`` events fire;
        on a miss the executor proceeds to run the lease.
        """
        if self.cache is None:
            return None
        job = entry.job
        hit = self.cache.get(
            job,
            on_evict=lambda key, reason: self.events.emit(
                "cache-evicted", job.job_id, key=key, reason=reason
            ),
        )
        if hit is not None:
            self.events.emit("cached", job.job_id, hpwl=hit.hpwl,
                             key=job.content_hash())
            self.finish(entry, hit, store=False)
        return hit

    def finish(self, entry: ScheduledJob, result: JobResult,
               store: bool = True) -> None:
        """Resolve an entry with its terminal result.

        ``result.status`` maps to the terminal state (``timeout`` and
        ``interrupted`` count as failed).  Successful fresh results are
        stored in the cache when ``store``; followers deduped onto this
        entry resolve with the same result.
        """
        if store and result.ok and not result.cached \
                and self.cache is not None:
            self.cache.put(entry.job, result)
        with self._cond:
            self._resolve(entry, result)
            self._cond.notify_all()

    def requeue(self, entry: ScheduledJob, delay: float = 0.0,
                resume: bool = True) -> None:
        """Put a running entry back in the queue (retry with backoff).

        The entry re-enters at the *front* of its priority class —
        matching the old pool's retry-first dispatch — gated by
        ``not_before = now + delay``.
        """
        with self._cond:
            self._release_running(entry)
            entry.state = QUEUED
            entry.not_before = time.perf_counter() + max(0.0, delay)
            entry.resume = resume
            heapq.heappush(self._heap,
                           (-entry.priority, next(self._front), entry.ticket))
            self._count_queued(entry)
            self._cond.notify_all()

    # -- cancellation -------------------------------------------------

    def cancel(self, ticket: str,
               reason: str = "cancelled by request") -> Optional[str]:
        """Cancel a submission.

        Returns ``"cancelled"`` (it was queued: resolved immediately),
        ``"requested"`` (it is running: the executor holding the lease
        must observe ``cancel_requested`` and finish it), or ``None``
        (unknown ticket or already terminal).
        """
        with self._cond:
            entry = self._entries.get(ticket)
            if entry is None or entry.terminal:
                return None
            if entry.state == QUEUED:
                self._resolve(entry, cancelled_result(entry.job, reason))
                self.events.emit("cancelled", entry.job.job_id)
                self._cond.notify_all()
                return "cancelled"
            entry.cancel_requested = True
            self._cond.notify_all()
            return "requested"

    def cancel_group(self, group: str,
                     reason: str = "group cancelled") -> Dict[str, int]:
        """Cancel every non-terminal entry labelled ``group``.

        Queued entries resolve immediately; running ones get the
        cooperative ``cancel_requested`` flag (their executor finishes
        them).  Returns ``{"cancelled": n, "requested": m}``.
        """
        counts = {"cancelled": 0, "requested": 0}
        with self._cond:
            for ticket in self._order:
                entry = self._entries[ticket]
                if entry.group != group or entry.terminal:
                    continue
                if entry.state == QUEUED:
                    self._resolve(entry, cancelled_result(entry.job, reason))
                    self.events.emit("cancelled", entry.job.job_id)
                    counts["cancelled"] += 1
                else:
                    entry.cancel_requested = True
                    counts["requested"] += 1
            self._cond.notify_all()
        return counts

    def mark_cancelled(self, entry: ScheduledJob,
                       reason: str = "cancelled by request",
                       emit: bool = True,
                       seconds: float = 0.0) -> None:
        """Resolve a (terminated) running entry as cancelled.

        ``seconds`` records the partial runtime the cancelled attempt
        consumed before it was stopped — the batch summary counts it as
        *reclaimed* core-seconds (what running to completion would have
        wasted).
        """
        with self._cond:
            if entry.terminal:
                return
            self._resolve(entry,
                          cancelled_result(entry.job, reason, seconds))
            if emit:
                self.events.emit("cancelled", entry.job.job_id)
            self._cond.notify_all()

    # -- bookkeeping --------------------------------------------------

    def _release_running(self, entry: ScheduledJob) -> None:
        if entry.state == RUNNING:
            tenant = entry.tenant
            count = self._running_per_tenant.get(tenant, 0) - 1
            if count > 0:
                self._running_per_tenant[tenant] = count
            else:
                self._running_per_tenant.pop(tenant, None)

    def _resolve(self, entry: ScheduledJob, result: JobResult) -> None:
        """Terminal transition + follower fan-out (lock held)."""
        self._release_running(entry)
        self._uncount_queued(entry)
        if result.status == "done" and result.seconds > 0 \
                and not result.cached:
            self._recent_seconds.append(result.seconds)
            del self._recent_seconds[:-32]
        entry.result = result
        entry.state = _STATUS_STATE.get(result.status, FAILED)
        entry.finished_ts = time.time()
        key = entry.job.content_hash()
        if self._inflight.get(key) == entry.ticket:
            del self._inflight[key]
        for other in self._entries.values():
            if other.deduped_onto == entry.ticket and not other.terminal:
                other.result = result
                other.state = entry.state
                other.finished_ts = entry.finished_ts

    # -- querying -----------------------------------------------------

    def get(self, ticket: str) -> Optional[ScheduledJob]:
        with self._cond:
            return self._entries.get(ticket)

    def entries(self) -> List[ScheduledJob]:
        """All entries, in submission order."""
        with self._cond:
            return [self._entries[t] for t in self._order]

    def results(self) -> List[Optional[JobResult]]:
        """Results aligned with submission order (None = unresolved)."""
        with self._cond:
            return [self._entries[t].result for t in self._order]

    def pending(self) -> List[ScheduledJob]:
        """Non-terminal entries, in submission order."""
        with self._cond:
            return [self._entries[t] for t in self._order
                    if not self._entries[t].terminal]

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            by_state: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for entry in self._entries.values():
                by_state[entry.state] += 1
            return {
                "jobs": len(self._entries),
                "states": by_state,
                "running_per_tenant": dict(self._running_per_tenant),
                "queue_depth": by_state[QUEUED],
                "queued_per_tenant": dict(self._queued_per_tenant),
                "queue_limits": {
                    "default": self.max_queue_depth,
                    **self.queue_limits,
                },
            }

    def wait(self, tickets: Optional[List[str]] = None,
             timeout: Optional[float] = None) -> bool:
        """Block until the given tickets (default: all) are terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                watch = tickets if tickets is not None else list(self._order)
                if all(self._entries[t].terminal for t in watch
                       if t in self._entries):
                    return True
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(timeout=min(remaining, 0.1))
                else:
                    self._cond.wait(timeout=0.1)

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Stop accepting submissions and wake every blocked lease."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed


def cancelled_result(job: PlacementJob,
                     reason: str = "cancelled by request",
                     seconds: float = 0.0) -> JobResult:
    """The terminal result of a job that never (fully) ran.

    ``seconds`` is the partial runtime a terminated attempt consumed —
    zero for jobs cancelled while still queued.
    """
    return JobResult(
        job_id=job.job_id,
        status="cancelled",
        seed=job.effective_seed(),
        seconds=seconds,
        error=f"cancelled: {reason}",
        attempts=0,
    )


def interrupted_result(job: PlacementJob, resumable: bool,
                       seconds: float = 0.0,
                       attempts: int = 0) -> JobResult:
    """The terminal result of a job stopped by a shutdown signal."""
    hint = ("resumable from checkpoint" if resumable
            else "not resumable (no checkpoint dir)")
    return JobResult(
        job_id=job.job_id,
        status="interrupted",
        seed=job.effective_seed(),
        seconds=seconds,
        error=f"interrupted: shutdown requested — {hint}",
        attempts=attempts,
    )
